//! # contrastive-quant
//!
//! Facade crate for the reproduction of *"Contrastive Quant: Quantization
//! Makes Stronger Contrastive Learning"* (DAC 2022). Re-exports every
//! sub-crate under a short alias so examples and downstream users can
//! depend on a single crate.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use cq_core as core;
pub use cq_data as data;
pub use cq_detect as detect;
pub use cq_eval as eval;
pub use cq_models as models;
pub use cq_nn as nn;
pub use cq_quant as quant;
pub use cq_tensor as tensor;
