#!/bin/bash
# Regenerates every table/figure of the paper (quick scale by default).
# Order exploits the encoder cache: tables sharing pretrained encoders run
# consecutively.
set -u
cd "$(dirname "$0")"
SCALE="${CQ_SCALE:-quick}"
mkdir -p results
for exp in table1 table2 table3 table4 table5 table7 figure2 precision_sweep table6 table8; do
  echo "=== $exp (scale: $SCALE) ==="
  t0=$SECONDS; ./target/release/$exp --scale "$SCALE" > results/$exp.md 2> results/$exp.log; echo "elapsed: $((SECONDS-t0)) s" >> results/$exp.log
  echo "--- done: $exp"
done
mv -f table*.csv figure2*.csv precision_sweep.csv results/ 2>/dev/null
echo ALL_EXPERIMENTS_DONE
