#!/usr/bin/env python3
"""Splices measured result tables from results/*.md into EXPERIMENTS.md.

Each `<!-- measured:NAME -->` marker is replaced by the contents of
results/NAME.md (markers are kept so the script is idempotent)."""
import pathlib
import re

root = pathlib.Path(__file__).parent
doc = (root / "EXPERIMENTS.md").read_text()

def splice(m):
    name = m.group(1)
    f = root / "results" / f"{name}.md"
    body = f.read_text().strip() if f.exists() else "*(not yet generated)*"
    return f"<!-- measured:{name} -->\n\n{body}\n\n<!-- /measured:{name} -->"

# remove previous splices, then re-splice
doc = re.sub(r"<!-- measured:(\w+) -->.*?<!-- /measured:\1 -->", lambda m: f"<!-- measured:{m.group(1)} -->", doc, flags=re.S)
doc = re.sub(r"<!-- measured:(\w+) -->", splice, doc)
(root / "EXPERIMENTS.md").write_text(doc)
print("EXPERIMENTS.md assembled")
