//! Cross-crate integration tests: the full pipeline from synthetic data
//! through SSL pre-training to every evaluation setting.

use contrastive_quant::core::{ByolTrainer, Pipeline, PretrainConfig, SimclrTrainer};
use contrastive_quant::data::{Dataset, DatasetConfig};
use contrastive_quant::detect::{train_detector, DetDataset, DetectionConfig, DetectorConfig};
use contrastive_quant::eval::{finetune, linear_eval, FinetuneConfig, LinearEvalConfig};
use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::quant::{Precision, PrecisionSet};

fn tiny_data() -> (Dataset, Dataset) {
    Dataset::generate(&DatasetConfig::cifarlike().with_sizes(64, 32))
}

fn tiny_encoder(seed: u64) -> Encoder {
    Encoder::new(
        &EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8),
        seed,
    )
    .unwrap()
}

fn tiny_cfg(pipeline: Pipeline) -> PretrainConfig {
    PretrainConfig {
        pipeline,
        precision_set: pipeline
            .needs_precisions()
            .then(|| PrecisionSet::range(6, 16).unwrap()),
        epochs: 1,
        batch_size: 16,
        lr: 0.05,
        ..Default::default()
    }
}

#[test]
fn pretrain_finetune_linear_eval_roundtrip() {
    let (train, test) = tiny_data();
    let mut trainer = SimclrTrainer::new(tiny_encoder(1), tiny_cfg(Pipeline::CqC)).unwrap();
    trainer.train(&train).unwrap();
    let encoder = trainer.into_encoder();

    let ft = finetune(
        &encoder,
        &train,
        &test,
        &FinetuneConfig {
            label_fraction: 0.5,
            epochs: 2,
            batch_size: 16,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(ft.test_acc.is_finite() && (0.0..=100.0).contains(&ft.test_acc));

    let mut enc = encoder;
    let lin = linear_eval(
        &mut enc,
        &train,
        &test,
        &LinearEvalConfig {
            epochs: 3,
            ..Default::default()
        },
    )
    .unwrap();
    assert!((0.0..=100.0).contains(&lin));
}

#[test]
fn byol_encoder_supports_downstream_evaluation() {
    // regression: the online encoder must shed its predictor so that
    // duplicate()/finetune() see the pure encoder architecture
    let (train, test) = tiny_data();
    let online = Encoder::new(
        &EncoderConfig::new(Arch::ResNet18, 2).with_byol_proj(16, 8),
        2,
    )
    .unwrap();
    let mut trainer = ByolTrainer::new(online, tiny_cfg(Pipeline::CqC)).unwrap();
    trainer.train(&train).unwrap();
    let encoder = trainer.into_encoder();
    let dup = encoder.duplicate().unwrap();
    assert_eq!(dup.params().len(), encoder.params().len());
    let ft = finetune(
        &encoder,
        &train,
        &test,
        &FinetuneConfig {
            label_fraction: 0.5,
            epochs: 1,
            batch_size: 16,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(ft.test_acc.is_finite());
}

#[test]
fn byol_encoder_save_load_roundtrip() {
    let (train, _) = tiny_data();
    let online = Encoder::new(
        &EncoderConfig::new(Arch::ResNet18, 2).with_byol_proj(16, 8),
        3,
    )
    .unwrap();
    let mut trainer = ByolTrainer::new(online, tiny_cfg(Pipeline::Baseline)).unwrap();
    trainer.train(&train).unwrap();
    let encoder = trainer.into_encoder();
    let mut buf = Vec::new();
    encoder.save(&mut buf).unwrap();
    let back = Encoder::load(buf.as_slice()).unwrap();
    assert_eq!(back.config(), encoder.config());
}

#[test]
fn detection_transfer_runs_on_pretrained_encoder() {
    let (train, _) = tiny_data();
    let mut trainer = SimclrTrainer::new(tiny_encoder(4), tiny_cfg(Pipeline::CqA)).unwrap();
    trainer.train(&train).unwrap();
    let encoder = trainer.into_encoder();

    let (dtr, dte) = DetDataset::generate(&DetectionConfig::default().with_sizes(16, 8));
    let m = train_detector(
        &encoder,
        &dtr,
        &dte,
        &DetectorConfig {
            epochs: 1,
            batch_size: 8,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(m.ap.is_finite() && m.ap50.is_finite() && m.ap75.is_finite());
}

#[test]
fn four_bit_finetune_of_cq_pretrained_encoder() {
    let (train, test) = tiny_data();
    let mut trainer = SimclrTrainer::new(tiny_encoder(5), tiny_cfg(Pipeline::CqQuant)).unwrap();
    trainer.train(&train).unwrap();
    let encoder = trainer.into_encoder();
    let ft = finetune(
        &encoder,
        &train,
        &test,
        &FinetuneConfig {
            label_fraction: 0.5,
            precision: Precision::Bits(4),
            epochs: 1,
            batch_size: 16,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(ft.test_acc.is_finite());
}

#[test]
fn all_six_architectures_run_the_ssl_step() {
    let (train, _) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(32, 16));
    for arch in Arch::all() {
        let enc = Encoder::new(&EncoderConfig::new(arch, 2).with_proj(8, 8), 6).unwrap();
        let mut trainer = SimclrTrainer::new(enc, tiny_cfg(Pipeline::CqC)).unwrap();
        trainer.train(&train).unwrap();
        assert!(
            trainer.history().final_loss().unwrap().is_finite(),
            "{arch}"
        );
    }
}
