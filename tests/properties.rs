//! Property-based tests (proptest) on the core invariants the paper's
//! method relies on.

use contrastive_quant::core::nt_xent;
use contrastive_quant::data::{AugmentConfig, AugmentPipeline};
use contrastive_quant::detect::{iou, BBox};
use contrastive_quant::quant::{fake_quant, quant_mse, Precision, QuantMode};
use contrastive_quant::tensor::{Shape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Quantizer invariants (Eq. 10)
    // ------------------------------------------------------------------

    #[test]
    fn quantized_values_stay_in_dynamic_range(data in finite_vec(64), bits in 2u8..=16) {
        let t = Tensor::from_slice(&data);
        let q = fake_quant(&t, Precision::Bits(bits), QuantMode::Round);
        let (lo, hi) = (t.min(), t.max());
        let step = (hi - lo) / ((1u32 << bits) - 1) as f32;
        for &v in q.as_slice() {
            // rounding can land at most half a step outside [lo, hi]
            prop_assert!(v >= lo - step * 0.51 && v <= hi + step * 0.51);
        }
    }

    #[test]
    fn quant_error_bounded_by_half_step(data in finite_vec(64), bits in 2u8..=16) {
        let t = Tensor::from_slice(&data);
        let q = fake_quant(&t, Precision::Bits(bits), QuantMode::Round);
        let range = t.max() - t.min();
        if range > 0.0 {
            let step = range / ((1u32 << bits) - 1) as f32;
            for (&a, &b) in t.as_slice().iter().zip(q.as_slice()) {
                prop_assert!((a - b).abs() <= step * 0.5 + step * 1e-3);
            }
        }
    }

    #[test]
    fn more_bits_never_more_mse(data in finite_vec(128)) {
        let t = Tensor::from_slice(&data);
        let e4 = quant_mse(&t, Precision::Bits(4), QuantMode::Round);
        let e8 = quant_mse(&t, Precision::Bits(8), QuantMode::Round);
        let e12 = quant_mse(&t, Precision::Bits(12), QuantMode::Round);
        prop_assert!(e8 <= e4 + 1e-9);
        prop_assert!(e12 <= e8 + 1e-9);
    }

    // ------------------------------------------------------------------
    // Tensor algebra invariants
    // ------------------------------------------------------------------

    #[test]
    fn matmul_distributes_over_addition(a in finite_vec(12), b in finite_vec(12), c in finite_vec(12)) {
        let a = Tensor::from_vec(a, &[3, 4]).unwrap();
        let b = Tensor::from_vec(b, &[4, 3]).unwrap();
        let c = Tensor::from_vec(c, &[4, 3]).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn transpose_is_involution(data in finite_vec(20)) {
        let t = Tensor::from_vec(data, &[4, 5]).unwrap();
        prop_assert_eq!(t.transpose().unwrap().transpose().unwrap(), t);
    }

    #[test]
    fn broadcast_shapes_commute(d1 in 1usize..4, d2 in 1usize..4) {
        let a = Shape::new(&[d1, 1]);
        let b = Shape::new(&[1, d2]);
        prop_assert_eq!(a.broadcast(&b).unwrap(), b.broadcast(&a).unwrap());
    }

    #[test]
    fn softmax_rows_are_distributions(data in finite_vec(24)) {
        let t = Tensor::from_vec(data, &[4, 6]).unwrap();
        let s = t.softmax_rows().unwrap();
        for i in 0..4 {
            let row = &s.as_slice()[i * 6..(i + 1) * 6];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    // ------------------------------------------------------------------
    // Contrastive loss invariants
    // ------------------------------------------------------------------

    #[test]
    fn nt_xent_is_symmetric_in_pair_swap(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[4, 8], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 8], 0.0, 1.0, &mut rng);
        let ab = nt_xent(&a, &b, 0.5).unwrap();
        let ba = nt_xent(&b, &a, 0.5).unwrap();
        prop_assert!((ab.loss - ba.loss).abs() < 1e-4);
        for (x, y) in ab.grad_a.as_slice().iter().zip(ba.grad_b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_xent_positive_and_finite(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[6, 8], 0.0, 2.0, &mut rng);
        let b = Tensor::randn(&[6, 8], 0.0, 2.0, &mut rng);
        let out = nt_xent(&a, &b, 0.5).unwrap();
        prop_assert!(out.loss.is_finite() && out.loss > 0.0);
        prop_assert!(out.grad_a.is_finite() && out.grad_b.is_finite());
    }

    // ------------------------------------------------------------------
    // Augmentation invariants
    // ------------------------------------------------------------------

    #[test]
    fn augmentation_preserves_shape_and_range(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = Tensor::rand_uniform(&[3, 12, 12], 0.0, 1.0, &mut rng);
        let pipe = AugmentPipeline::new(AugmentConfig::simclr());
        let out = pipe.apply(&img, &mut rng);
        prop_assert_eq!(out.dims(), img.dims());
        prop_assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    // ------------------------------------------------------------------
    // Detection-geometry invariants
    // ------------------------------------------------------------------

    #[test]
    fn iou_is_symmetric_and_bounded(
        ax in 0.1f32..0.9, ay in 0.1f32..0.9, aw in 0.05f32..0.5, ah in 0.05f32..0.5,
        bx in 0.1f32..0.9, by in 0.1f32..0.9, bw in 0.05f32..0.5, bh in 0.05f32..0.5,
    ) {
        let a = BBox::new(ax, ay, aw, ah);
        let b = BBox::new(bx, by, bw, bh);
        let i1 = iou(&a, &b);
        let i2 = iou(&b, &a);
        prop_assert!((i1 - i2).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&i1));
        // f32 cancellation in corner arithmetic leaves ~1e-5 slack
        prop_assert!((iou(&a, &a) - 1.0).abs() < 1e-4);
    }
}
