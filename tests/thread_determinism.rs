//! Thread-count independence (ISSUE satellite): the parallel runtime must
//! produce bitwise-identical results no matter how many threads execute
//! the work. The chunk grid is derived from the problem size alone and
//! reduced partials are combined in chunk order, so `CQ_THREADS` may only
//! change wall-clock — never a single bit of output.
//!
//! `CQ_THREADS` itself is parsed once per process, so this test varies the
//! executor count through `par::with_thread_limit`, which caps how many
//! pool threads may claim chunks of a dispatch — the same degrees of
//! freedom a different `CQ_THREADS` value would exercise. (CI additionally
//! runs the golden trace and pilot at `CQ_THREADS=1` and `4` across
//! processes.)
//!
//! Single `#[test]`: the cq-obs sink used for the trainer loss trace is
//! process-global, and the thread limit is per-thread state.

use std::sync::Arc;

use contrastive_quant::core::{Pipeline, PretrainConfig, SimclrTrainer};
use contrastive_quant::data::{Dataset, DatasetConfig};
use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::nn::{Conv2d, ForwardCtx, Layer, ParamSet};
use contrastive_quant::quant::PrecisionSet;
use contrastive_quant::tensor::par::with_thread_limit;
use contrastive_quant::tensor::{Conv2dSpec, Tensor};
use cq_obs::sink::MemorySink;
use cq_obs::Event;
use rand::rngs::StdRng;
use rand::SeedableRng;

const LIMITS: [usize; 4] = [1, 2, 5, 8];

fn bits_of(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn matmul_bits(limit: usize) -> Vec<u32> {
    with_thread_limit(limit, || {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn(&[96, 64], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[64, 80], 0.0, 1.0, &mut rng);
        let mut out = bits_of(&a.matmul(&b).expect("matmul"));
        out.extend(bits_of(&a.matmul_nt(&a).expect("matmul_nt")));
        out.extend(bits_of(&a.matmul_tn(&a).expect("matmul_tn")));
        out
    })
}

/// Deliberately tile-unaligned (prime) shapes so the packed-panel kernels
/// exercise edge tiles (`mr < MR`, `nr < NR`) and the small-size fast
/// path, not just full register tiles.
fn matmul_unaligned_bits(limit: usize) -> Vec<u32> {
    with_thread_limit(limit, || {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Tensor::randn(&[97, 53], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[53, 61], 0.0, 1.0, &mut rng);
        let bt = Tensor::randn(&[61, 53], 0.0, 1.0, &mut rng);
        let at = Tensor::randn(&[53, 97], 0.0, 1.0, &mut rng);
        let mut out = bits_of(&a.matmul(&b).expect("matmul"));
        out.extend(bits_of(&a.matmul_nt(&bt).expect("matmul_nt")));
        out.extend(bits_of(&at.matmul_tn(&b).expect("matmul_tn")));
        let t = Tensor::randn(&[1, 1], 0.0, 1.0, &mut rng);
        out.extend(bits_of(&t.matmul(&t).expect("1x1 matmul")));
        out
    })
}

fn conv_grad_bits(limit: usize) -> Vec<u32> {
    with_thread_limit(limit, || {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(12);
        let mut conv = Conv2d::new(&mut ps, "c", 3, 8, Conv2dSpec::new(3, 1, 1), true, &mut rng);
        let wid = conv.weight_id();
        let x = Tensor::randn(&[6, 3, 10, 10], 0.0, 1.0, &mut rng);
        let ctx = ForwardCtx::train();
        let (y, cache) = conv.forward(&ps, &x, &ctx).expect("forward");
        let dy = Tensor::randn(&[6, 8, 10, 10], 0.0, 0.5, &mut rng);
        assert_eq!(y.dims(), dy.dims());
        let mut gs = ps.zero_grads();
        let dx = conv.backward(&ps, &cache, &dy, &mut gs).expect("backward");
        let mut out = bits_of(gs.get(wid));
        out.extend(bits_of(&dx));
        out
    })
}

/// Golden workload counters for the 2-step CQ-A pilot below, captured
/// with the pre-rewrite scalar kernels. The packed/blocked kernels must
/// issue exactly the same matmul calls (and therefore FLOPs): the rewrite
/// changes how each product is computed, never which products happen.
const MATMUL_CALLS_GOLDEN: u64 = 32;
const MATMUL_FLOPS_GOLDEN: u64 = 102_400;

fn trainer_loss_trace(limit: usize) -> (Vec<u64>, u64, u64) {
    with_thread_limit(limit, || {
        let sink = Arc::new(MemorySink::new());
        cq_obs::reset();
        cq_obs::install(sink.clone());
        let encoder = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 7)
            .expect("encoder");
        let cfg = PretrainConfig {
            pipeline: Pipeline::CqA,
            precision_set: Some(PrecisionSet::range(6, 16).expect("valid range")),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            seed: 7,
            ..Default::default()
        };
        // 16 train images / batch 8 = exactly 2 steps.
        let (train, _) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(16, 8));
        let mut trainer = SimclrTrainer::new(encoder, cfg).expect("trainer");
        trainer.train(&train).expect("2-step pretrain");
        // Counters are emitted as totals on flush, not per increment.
        cq_obs::flush();
        cq_obs::uninstall();
        let events = sink.take();
        let losses: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Metric { name, step, value } if *name == "train.loss" => {
                    // Compare the raw f64 bits: "identical" means identical.
                    Some(value.to_bits() ^ *step)
                }
                _ => None,
            })
            .collect();
        assert_eq!(losses.len(), 2, "expected one train.loss per step");
        let counter = |want: &str| -> u64 {
            events
                .iter()
                .filter_map(|e| match e {
                    Event::Counter { name, total } if *name == want => Some(*total),
                    _ => None,
                })
                .next_back()
                .unwrap_or_else(|| panic!("counter {want} missing from trace"))
        };
        (
            losses,
            counter("tensor.matmul.calls"),
            counter("tensor.matmul.flops"),
        )
    })
}

#[test]
fn results_are_bitwise_identical_at_any_thread_count() {
    let matmul_base = matmul_bits(LIMITS[0]);
    let unaligned_base = matmul_unaligned_bits(LIMITS[0]);
    let conv_base = conv_grad_bits(LIMITS[0]);
    let (trace_base, calls_base, flops_base) = trainer_loss_trace(LIMITS[0]);
    assert_eq!(
        (calls_base, flops_base),
        (MATMUL_CALLS_GOLDEN, MATMUL_FLOPS_GOLDEN),
        "tensor.matmul.{{calls,flops}} drifted from the pre-rewrite golden"
    );
    for &limit in &LIMITS[1..] {
        assert_eq!(
            matmul_bits(limit),
            matmul_base,
            "matmul drifted at thread limit {limit}"
        );
        assert_eq!(
            matmul_unaligned_bits(limit),
            unaligned_base,
            "tile-unaligned matmul drifted at thread limit {limit}"
        );
        assert_eq!(
            conv_grad_bits(limit),
            conv_base,
            "conv gradients drifted at thread limit {limit}"
        );
        assert_eq!(
            trainer_loss_trace(limit),
            (trace_base.clone(), calls_base, flops_base),
            "trainer loss trace drifted at thread limit {limit}"
        );
    }
}
