//! Thread-count independence of the i8 inference GEMM (ISSUE 9
//! satellite), mirroring `tests/thread_determinism.rs` for the f32
//! kernels: `par_gemm_i8` must produce bitwise-identical `i32` output at
//! every thread limit, and that output must equal the scalar reference
//! oracle bit for bit.
//!
//! For the integer kernels this is a *stronger* claim than for f32 —
//! integer addition is associative, so as long as accumulators cannot
//! overflow (the quantflow headroom proof), any tiling or thread split
//! is exact. These proptests drive the claim through adversarial
//! shapes: degenerate dims (1), `K = 0`, primes, and the register-tile
//! edges `MR±1`/`NR±1` where the packed kernels take their `mr < MR`,
//! `nr < NR` remainder paths.
//!
//! The thread limit is varied with `par::with_thread_limit` (same
//! degrees of freedom as `CQ_THREADS`, but testable in-process); the
//! values exercised match the f32 test: 1, 2, 5 and 8.

use contrastive_quant::tensor::gemm::int8::{
    gemm_i8, gemm_i8_nn_ref, gemm_i8_nt_ref, par_gemm_i8, IntKind,
};
use contrastive_quant::tensor::par::with_thread_limit;
use proptest::prelude::*;

const LIMITS: [usize; 4] = [1, 2, 5, 8];

/// Adversarial size values: degenerate, prime, and straddling the 8-wide
/// register tile (`MR = NR = 8`) so edge tiles and the small-size
/// reference fast path both fire.
const ADVERSARIAL_DIMS: [usize; 8] = [1, 2, 5, 7, 8, 9, 13, 17];

/// Full-range i8 operands, including the `-128` asymmetric endpoint;
/// sized for the largest adversarial shape and truncated per case. Sizes
/// are bounded so `K·128² ≪ i32::MAX` (headroom by construction).
fn full_range(cells: usize) -> impl Strategy<Value = Vec<i8>> {
    collection::vec(-128i8..=127, cells)
}

fn run_all_limits(kind: IntKind, a: &[i8], b: &[i8], m: usize, n: usize, k: usize) -> Vec<i32> {
    let mut oracle = vec![0i32; m * n];
    match kind {
        IntKind::Nn => gemm_i8_nn_ref(a, m, k, b, n, &mut oracle),
        IntKind::Nt => gemm_i8_nt_ref(a, m, k, b, n, &mut oracle),
    }
    // Sequential blocked kernel first: blocked == oracle.
    let mut seq = vec![0i32; m * n];
    gemm_i8(kind, a, b, m, n, k, &mut seq);
    assert_eq!(seq, oracle, "{kind:?} {m}x{n}x{k}: blocked != reference");
    // Then every thread limit: parallel == oracle, bit for bit.
    for &limit in &LIMITS {
        let par = with_thread_limit(limit, || {
            let mut out = vec![0i32; m * n];
            par_gemm_i8(kind, a, b, m, n, k, &mut out);
            out
        });
        assert_eq!(
            par, oracle,
            "{kind:?} {m}x{n}x{k}: drift at thread limit {limit}"
        );
    }
    oracle
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_gemm_i8_nn_is_thread_count_independent(
        mi in 0usize..8, ni in 0usize..8, ki in 0usize..8,
        a in full_range(17 * 17), b in full_range(17 * 17),
    ) {
        let (m, n, k) = (ADVERSARIAL_DIMS[mi], ADVERSARIAL_DIMS[ni], ADVERSARIAL_DIMS[ki]);
        run_all_limits(IntKind::Nn, &a[..m * k], &b[..k * n], m, n, k);
    }

    #[test]
    fn par_gemm_i8_nt_is_thread_count_independent(
        mi in 0usize..8, ni in 0usize..8, ki in 0usize..8,
        a in full_range(17 * 17), b in full_range(17 * 17),
    ) {
        let (m, n, k) = (ADVERSARIAL_DIMS[mi], ADVERSARIAL_DIMS[ni], ADVERSARIAL_DIMS[ki]);
        run_all_limits(IntKind::Nt, &a[..m * k], &b[..n * k], m, n, k);
    }
}

/// `K = 0` is an empty reduction: every output element is exactly zero at
/// every thread count (and the kernels must not read the empty operands).
#[test]
fn k_zero_yields_zero_bits_at_every_thread_count() {
    for kind in [IntKind::Nn, IntKind::Nt] {
        for (m, n) in [(1, 1), (7, 9), (8, 8), (17, 5)] {
            let out = run_all_limits(kind, &[], &[], m, n, 0);
            assert!(out.iter().all(|&v| v == 0), "{kind:?} {m}x{n}x0 nonzero");
        }
    }
}

/// The extreme-magnitude corner: all operands at the asymmetric i8
/// endpoints (`-128 · -128` products) with K at the adversarial maximum,
/// where any accumulator-width mistake would show first.
#[test]
fn saturated_operands_stay_exact_at_every_thread_count() {
    let (m, n, k) = (9, 17, 17);
    let a = vec![-128i8; m * k];
    let b = vec![127i8; k * n];
    let nn = run_all_limits(IntKind::Nn, &a, &b, m, n, k);
    assert!(nn.iter().all(|&v| v == -128 * 127 * k as i32));
    let b = vec![-128i8; n * k];
    let nt = run_all_limits(IntKind::Nt, &a, &b, m, n, k);
    assert!(nt.iter().all(|&v| v == 128 * 128 * k as i32));
}
