//! Integration tests of the quantization-as-augmentation mechanism across
//! the whole stack: the noise injected by quantized forwards must behave
//! like a controllable augmentation (monotone in bit-width, zero at FP,
//! distinct across precisions) — the premise of the paper.

use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::nn::ForwardCtx;
use contrastive_quant::quant::{Precision, QuantConfig};
use contrastive_quant::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn encoder_and_input() -> (Encoder, Tensor) {
    let enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4).with_proj(32, 16), 7).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::rand_uniform(&[4, 3, 16, 16], 0.0, 1.0, &mut rng);
    (enc, x)
}

fn drift(enc: &mut Encoder, x: &Tensor, p: Precision) -> f32 {
    let fp = enc.forward(x, &ForwardCtx::eval()).unwrap().projection;
    let ctx = ForwardCtx::eval().with_quant(QuantConfig::uniform(p));
    let q = enc.forward(x, &ctx).unwrap().projection;
    q.sub(&fp).unwrap().norm() / fp.norm().max(1e-9)
}

#[test]
fn feature_drift_is_monotone_in_bit_width() {
    let (mut enc, x) = encoder_and_input();
    let d4 = drift(&mut enc, &x, Precision::Bits(4));
    let d8 = drift(&mut enc, &x, Precision::Bits(8));
    let d16 = drift(&mut enc, &x, Precision::Bits(16));
    assert!(d4 > d8, "4-bit drift {d4} must exceed 8-bit {d8}");
    assert!(d8 > d16, "8-bit drift {d8} must exceed 16-bit {d16}");
    assert!(d16 > 0.0, "16-bit still perturbs");
}

#[test]
fn fp_forward_has_zero_drift() {
    let (mut enc, x) = encoder_and_input();
    assert_eq!(drift(&mut enc, &x, Precision::Fp), 0.0);
}

#[test]
fn different_precisions_make_different_views() {
    // the pair (q1, q2) must produce genuinely different "views" of the
    // same input — otherwise the consistency loss would be degenerate
    let (mut enc, x) = encoder_and_input();
    let c6 = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(6)));
    let c12 = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(12)));
    let z6 = enc.forward(&x, &c6).unwrap().projection;
    let z12 = enc.forward(&x, &c12).unwrap().projection;
    assert!(z6.sub(&z12).unwrap().norm() > 1e-5);
}

#[test]
fn quantized_views_stay_correlated_with_fp() {
    // the augmentation must perturb, not destroy: cosine similarity of
    // quantized and FP projections stays high even at 4 bits
    let (mut enc, x) = encoder_and_input();
    let fp = enc.forward(&x, &ForwardCtx::eval()).unwrap().projection;
    let ctx = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(4)));
    let q = enc.forward(&x, &ctx).unwrap().projection;
    let cos = fp.dot(&q).unwrap() / (fp.norm() * q.norm()).max(1e-9);
    assert!(cos > 0.5, "4-bit view should stay correlated: cos {cos}");
}

#[test]
fn weight_noise_behaves_like_quantization_noise() {
    // the Noise extension must share the key properties: monotone in
    // strength, deterministic per seed, distinct across seeds
    let (mut enc, x) = encoder_and_input();
    let fp = enc.forward(&x, &ForwardCtx::eval()).unwrap().projection;
    let d_small = {
        let ctx = ForwardCtx::eval().with_weight_noise(0.01, 5);
        enc.forward(&x, &ctx)
            .unwrap()
            .projection
            .sub(&fp)
            .unwrap()
            .norm()
    };
    let d_large = {
        let ctx = ForwardCtx::eval().with_weight_noise(0.2, 5);
        enc.forward(&x, &ctx)
            .unwrap()
            .projection
            .sub(&fp)
            .unwrap()
            .norm()
    };
    assert!(d_large > d_small * 2.0, "{d_large} vs {d_small}");

    let a = enc
        .forward(&x, &ForwardCtx::eval().with_weight_noise(0.1, 5))
        .unwrap()
        .projection;
    let b = enc
        .forward(&x, &ForwardCtx::eval().with_weight_noise(0.1, 5))
        .unwrap()
        .projection;
    let c = enc
        .forward(&x, &ForwardCtx::eval().with_weight_noise(0.1, 6))
        .unwrap()
        .projection;
    assert_eq!(a, b, "same seed, same view");
    assert_ne!(a, c, "different seed, different view");
}
