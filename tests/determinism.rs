//! Reproducibility guarantees: identical seeds give bit-identical runs,
//! different methods genuinely differ.

use contrastive_quant::core::{Pipeline, PretrainConfig, SimclrTrainer};
use contrastive_quant::data::{Dataset, DatasetConfig};
use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::nn::ForwardCtx;
use contrastive_quant::quant::PrecisionSet;
use contrastive_quant::tensor::Tensor;

fn run(pipeline: Pipeline, seed: u64) -> Encoder {
    let (train, _) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(64, 16));
    let enc = Encoder::new(
        &EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8),
        seed,
    )
    .unwrap();
    let cfg = PretrainConfig {
        pipeline,
        precision_set: pipeline
            .needs_precisions()
            .then(|| PrecisionSet::range(6, 16).unwrap()),
        epochs: 1,
        batch_size: 16,
        lr: 0.05,
        seed,
        ..Default::default()
    };
    let mut t = SimclrTrainer::new(enc, cfg).unwrap();
    t.train(&train).unwrap();
    t.into_encoder()
}

fn probe(enc: &mut Encoder) -> Tensor {
    let x = Tensor::full(&[2, 3, 16, 16], 0.25);
    enc.forward(&x, &ForwardCtx::eval()).unwrap().projection
}

#[test]
fn identical_seeds_identical_models() {
    let mut a = run(Pipeline::CqC, 9);
    let mut b = run(Pipeline::CqC, 9);
    assert_eq!(probe(&mut a), probe(&mut b));
}

#[test]
fn different_seeds_differ() {
    let mut a = run(Pipeline::CqC, 9);
    let mut b = run(Pipeline::CqC, 10);
    assert_ne!(probe(&mut a), probe(&mut b));
}

#[test]
fn different_pipelines_learn_different_models() {
    let mut base = run(Pipeline::Baseline, 9);
    let mut cqa = run(Pipeline::CqA, 9);
    let mut cqc = run(Pipeline::CqC, 9);
    let pb = probe(&mut base);
    let pa = probe(&mut cqa);
    let pc = probe(&mut cqc);
    assert_ne!(pb, pa);
    assert_ne!(pb, pc);
    assert_ne!(pa, pc);
}

#[test]
fn dataset_generation_is_stable_across_calls() {
    let (a, _) = Dataset::generate(&DatasetConfig::imagenetlike().with_sizes(16, 8));
    let (b, _) = Dataset::generate(&DatasetConfig::imagenetlike().with_sizes(16, 8));
    for i in 0..16 {
        assert_eq!(a.image(i), b.image(i));
        assert_eq!(a.label(i), b.label(i));
    }
}
