#!/bin/bash
# Runs the extension ablation binaries (after run_experiments.sh).
set -u
cd "$(dirname "$0")"
SCALE="${CQ_SCALE:-quick}"
mkdir -p results
for exp in ablations frameworks; do
  echo "=== $exp (scale: $SCALE) ==="
  t0=$SECONDS; ./target/release/$exp --scale "$SCALE" > results/$exp.md 2> results/$exp.log
  echo "elapsed: $((SECONDS-t0)) s" >> results/$exp.log
  echo "--- done: $exp"
done
mv -f frameworks.csv results/ 2>/dev/null
echo EXTENSIONS_DONE
