//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` macro, range and `collection::vec` strategies,
//! `ProptestConfig` and the `prop_assert*` macros. Cases are generated from
//! a deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs. Shrinking and regression-file persistence are not
//! implemented — a failing case panics with the generated inputs already
//! bound, and the fixed seed makes it repeatable.

/// Deterministic generator driving case generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Builds the deterministic RNG for a named test (used by `proptest!`).
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one case value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// A strategy producing a fixed constant (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A boxed generator arm of a [`Union`] (one `prop_oneof!` alternative).
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Weighted union over strategies with a common value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, UnionArm<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, generator)` arms.
    pub fn new(arms: Vec<(u32, UnionArm<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = ((rng.next_u64() as u128 * self.total as u128) >> 64) as u64;
        for (w, gen) in &self.arms {
            if pick < *w as u64 {
                return gen(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping out of range");
    }
}

/// Picks among strategies, optionally weighted (`w => strategy`);
/// mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, {
            let __s = $strat;
            Box::new(move |__rng: &mut $crate::TestRng| {
                $crate::Strategy::generate(&__s, __rng)
            }) as Box<dyn Fn(&mut $crate::TestRng) -> _>
        })),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a size range.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl IntoLen for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec<T>` built from an element strategy and a length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `len` (a `usize` or a range of `usize`).
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng, Union};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn vecf(len: usize) -> impl Strategy<Value = Vec<f32>> {
        collection::vec(-1.0f32..1.0, len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f32..5.0, n in 1usize..10, b in 2u8..=8) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((2..=8).contains(&b));
        }

        #[test]
        fn vec_has_requested_len(v in vecf(16)) {
            prop_assert_eq!(v.len(), 16);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn oneof_draws_only_listed_values(x in prop_oneof![1 => Just(3usize), 1 => Just(7usize), 2 => 10usize..12]) {
            prop_assert!([3usize, 7, 10, 11].contains(&x));
        }
    }

    #[test]
    fn weighted_oneof_reaches_every_arm() {
        let s = prop_oneof![1 => Just(0u8), 3 => Just(1u8)];
        let mut rng = crate::rng_for("weighted_oneof");
        let mut seen = [false; 2];
        for _ in 0..256 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::rng_for("y");
        let _ = c.next_u64();
    }
}
