//! Offline shim for the `parking_lot` lock API used by this workspace,
//! backed by `std::sync`. The signature difference that matters — `lock()`
//! returning the guard directly instead of a poisoning `Result` — is
//! preserved by recovering from poisoned std locks.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_directly() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.lock().len(), 4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
