//! Offline shim for the `criterion` API subset this workspace's benches
//! use. Runs each benchmark closure a small fixed number of iterations and
//! prints a mean wall-clock time — enough to keep `cargo bench` useful for
//! coarse comparisons without the statistical machinery (or the network
//! access) of real criterion.

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param` identifier.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    label: String,
}

impl Bencher {
    /// Runs `f` repeatedly, timing the batch.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // one warm-up call, then the timed batch
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_secs_f64() / self.iters as f64;
        println!(
            "bench {:<48} {:>12.3} µs/iter ({} iters)",
            self.label,
            per_iter * 1e6,
            self.iters
        );
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.sample_size, name.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.parent.sample_size, format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            self.parent.sample_size,
            format!("{}/{}", self.name, id),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(iters: usize, label: String, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: iters as u64,
        label,
    };
    f(&mut b);
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut hits = 0u32;
        c.bench_function("unit", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("p", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
