//! Offline shim for the `crossbeam::scope` API, backed by
//! `std::thread::scope` (the standard library absorbed scoped threads in
//! Rust 1.63, making the real dependency unnecessary for this workspace).

use std::any::Any;

/// Handle passed to scoped closures; spawns further scoped threads.
///
/// Unlike real crossbeam this is `Copy` and passed to `spawn` closures by
/// value — every call site in this workspace binds it as `|_|`, so the
/// difference is unobservable here.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread joined automatically when the scope ends.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let s = *self;
        self.inner.spawn(move || f(s))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all spawned threads are joined before `scope` returns. Returns `Err`
/// with the panic payload if any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(Scope<'_, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let r = super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            17
        })
        .unwrap();
        assert_eq!(r, 17);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn child_panic_reported_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
