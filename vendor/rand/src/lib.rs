//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, self-contained implementation: a xoshiro256++ `StdRng`
//! seeded via SplitMix64, the `SeedableRng`/`Rng` traits, `gen`,
//! `gen_range` and `gen_bool`. Stream values differ from upstream `rand`'s
//! ChaCha-based `StdRng`, but every consumer in this repo only relies on
//! determinism under a fixed seed, not on specific values.

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] from uniform bits.
pub trait Standard: Sized {
    /// Draws one value from the generator's "standard" distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A type with a uniform sampler over `[lo, hi)` ranges.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn uniform_sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire-style multiply-shift onto the span (no rejection;
                // bias is < 2^-64 for the span sizes used in this repo).
                let hi_bits = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + hi_bits as i128) as $t
            }
            fn uniform_sample_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let hi_bits = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + hi_bits as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::standard_sample(rng);
                lo + u * (hi - lo)
            }
            fn uniform_sample_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                Self::uniform_sample(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::uniform_sample(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::uniform_sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            seen.insert(v);
            let w = rng.gen_range(2u8..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n = rng.gen_range(-5i32..-1);
            assert!((-5..-1).contains(&n));
        }
        assert_eq!(seen.len(), 4, "all bucket values should be hit");
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "got {hits} hits for p=0.25");
    }
}
