//! Transfer a Contrastive-Quant-pretrained encoder to the detection
//! substrate (the paper's Table 3 protocol): fine-tune a YOLO-style grid
//! head + backbone on synthetic scenes and report AP / AP50 / AP75.
//!
//! ```text
//! cargo run --release --example detection_transfer
//! ```

use contrastive_quant::core::{Pipeline, PretrainConfig, SimclrTrainer};
use contrastive_quant::data::{Dataset, DatasetConfig};
use contrastive_quant::detect::{train_detector, DetDataset, DetectionConfig, DetectorConfig};
use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::quant::PrecisionSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SSL pre-training on the ImageNet-like config.
    let (ssl_train, _) = Dataset::generate(&DatasetConfig::imagenetlike().with_sizes(256, 64));
    let encoder = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4).with_proj(32, 16), 11)?;
    let cfg = PretrainConfig {
        pipeline: Pipeline::CqA,
        precision_set: Some(PrecisionSet::range(6, 16)?),
        epochs: 4,
        batch_size: 64,
        lr: 0.15,
        ..Default::default()
    };
    let mut trainer = SimclrTrainer::new(encoder, cfg)?;
    trainer.train(&ssl_train)?;
    let encoder = trainer.into_encoder();
    println!("pretrained CQ-A encoder ready");

    // Detection transfer.
    let (det_train, det_test) =
        DetDataset::generate(&DetectionConfig::default().with_sizes(128, 48));
    let metrics = train_detector(
        &encoder,
        &det_train,
        &det_test,
        &DetectorConfig {
            epochs: 6,
            batch_size: 16,
            ..Default::default()
        },
    )?;
    println!("detection transfer: {metrics}");

    // Against a from-scratch baseline.
    let fresh = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4), 12)?;
    let scratch = train_detector(
        &fresh,
        &det_train,
        &det_test,
        &DetectorConfig {
            epochs: 6,
            batch_size: 16,
            ..Default::default()
        },
    )?;
    println!("from-scratch baseline: {scratch}");
    Ok(())
}
