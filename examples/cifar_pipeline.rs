//! Head-to-head on the CIFAR-like config: vanilla SimCLR vs CQ-C, with
//! the paper's semi-supervised fine-tuning protocol (10% labels, FP and
//! 4-bit).
//!
//! ```text
//! cargo run --release --example cifar_pipeline
//! ```

use contrastive_quant::core::{Pipeline, PretrainConfig, SimclrTrainer};
use contrastive_quant::data::{Dataset, DatasetConfig};
use contrastive_quant::eval::{finetune, FinetuneConfig, Table};
use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::quant::{Precision, PrecisionSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(384, 128));
    let mut table = Table::new(
        "SimCLR vs CQ-C (CIFAR-like, fine-tuning with 10% labels)",
        &["Method", "FP 10%", "4-bit 10%"],
    );

    for (name, pipeline, pset) in [
        ("SimCLR", Pipeline::Baseline, None),
        ("CQ-C", Pipeline::CqC, Some(PrecisionSet::range(6, 16)?)),
    ] {
        let encoder = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 6).with_proj(48, 24), 7)?;
        let cfg = PretrainConfig {
            pipeline,
            precision_set: pset,
            epochs: 6,
            batch_size: 64,
            lr: 0.15,
            ..Default::default()
        };
        let mut trainer = SimclrTrainer::new(encoder, cfg)?;
        trainer.train(&train)?;
        println!(
            "{name}: final SSL loss {:?}",
            trainer.history().final_loss()
        );
        let encoder = trainer.into_encoder();

        let mut accs = Vec::new();
        for precision in [Precision::Fp, Precision::Bits(4)] {
            let res = finetune(
                &encoder,
                &train,
                &test,
                &FinetuneConfig {
                    label_fraction: 0.1,
                    precision,
                    epochs: 8,
                    batch_size: 32,
                    ..Default::default()
                },
            )?;
            accs.push(format!("{:.2}", res.test_acc));
        }
        table.row_owned(vec![name.to_string(), accs[0].clone(), accs[1].clone()]);
    }
    table.print();
    Ok(())
}
