//! Explore the quantization-as-augmentation mechanism directly: how much
//! noise each bit-width injects (SNR), and how far an encoder's features
//! drift when its weights/activations are quantized — the "augmentation
//! strength" knob Contrastive Quant turns.
//!
//! ```text
//! cargo run --release --example quantization_playground
//! ```

use contrastive_quant::eval::Table;
use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::nn::ForwardCtx;
use contrastive_quant::quant::{quant_snr_db, Precision, QuantConfig, QuantMode};
use contrastive_quant::tensor::Tensor;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);

    // 1. Raw quantizer SNR on a Gaussian tensor (≈ 6 dB per bit).
    let t = Tensor::randn(&[16384], 0.0, 1.0, &mut rng);
    let mut snr = Table::new(
        "Quantizer SNR (Eq. 10, round-to-nearest)",
        &["Bits", "SNR (dB)"],
    );
    for bits in [4u8, 6, 8, 10, 12, 16] {
        snr.row_owned(vec![
            bits.to_string(),
            format!(
                "{:.1}",
                quant_snr_db(&t, Precision::Bits(bits), QuantMode::Round)
            ),
        ]);
    }
    snr.print();

    // 2. Feature drift of a whole encoder under quantized forwards —
    //    the actual "view" distance Contrastive Quant contrasts.
    let mut enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4).with_proj(32, 16), 5)?;
    let x = Tensor::rand_uniform(&[8, 3, 16, 16], 0.0, 1.0, &mut rng);
    let fp = enc.forward(&x, &ForwardCtx::eval())?.projection;
    let mut drift = Table::new(
        "Encoder projection drift vs full precision",
        &["Bits", "Relative L2 drift"],
    );
    for bits in [4u8, 6, 8, 12, 16] {
        let ctx = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(bits)));
        let q = enc.forward(&x, &ctx)?.projection;
        let rel = q.sub(&fp)?.norm() / fp.norm().max(1e-9);
        drift.row_owned(vec![bits.to_string(), format!("{rel:.4}")]);
    }
    drift.print();
    println!("Lower bit-widths act as stronger weight/activation augmentations —");
    println!("this is the knob the CQ pipelines sample from a precision set.");
    Ok(())
}
