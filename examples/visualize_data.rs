//! Dumps contact sheets of the synthetic datasets, the augmentation
//! pipeline and the detection scenes to PPM files (viewable with any
//! image tool), so the data substrate can be eyeballed.
//!
//! ```text
//! cargo run --release --example visualize_data
//! ```

use contrastive_quant::data::{
    contact_sheet, write_ppm, AugmentConfig, AugmentPipeline, Dataset, DatasetConfig,
};
use contrastive_quant::detect::{DetDataset, DetectionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("viz");
    std::fs::create_dir_all(out)?;

    // One row per class of the CIFAR-like config.
    let (train, _) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(400, 10));
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); train.num_classes()];
    for i in 0..train.len() {
        let l = train.label(i);
        if per_class[l].len() < 8 {
            per_class[l].push(i);
        }
    }
    let tiles: Vec<_> = per_class
        .iter()
        .flatten()
        .map(|&i| train.image(i))
        .collect();
    write_ppm(
        &contact_sheet(&tiles, 8),
        &out.join("cifarlike_classes.ppm"),
    )?;
    println!(
        "wrote viz/cifarlike_classes.ppm ({} classes x 8 samples)",
        train.num_classes()
    );

    // Augmented views of one image: SimCLR vs strong recipe.
    let pipe = AugmentPipeline::new(AugmentConfig::simclr());
    let strong = AugmentPipeline::new(AugmentConfig::strong());
    let mut rng = StdRng::seed_from_u64(1);
    let img = train.image(0);
    let mut views = vec![img.clone()];
    for _ in 0..7 {
        views.push(pipe.apply(img, &mut rng));
    }
    for _ in 0..8 {
        views.push(strong.apply(img, &mut rng));
    }
    let refs: Vec<_> = views.iter().collect();
    write_ppm(&contact_sheet(&refs, 8), &out.join("augmentations.ppm"))?;
    println!("wrote viz/augmentations.ppm (row 1: original + SimCLR; row 2: strong)");

    // Detection scenes.
    let (det, _) = DetDataset::generate(&DetectionConfig::default().with_sizes(16, 4));
    let tiles: Vec<_> = (0..16).map(|i| det.image(i)).collect();
    write_ppm(&contact_sheet(&tiles, 4), &out.join("detection_scenes.ppm"))?;
    println!("wrote viz/detection_scenes.ppm (16 scenes, 1-3 objects each)");
    Ok(())
}
