//! Contrastive Quant on BYOL: online/target networks, EMA target update,
//! stop-gradient and prediction head, with CQ-C's cross-precision
//! consistency terms (paper §3.4 / Table 6).
//!
//! ```text
//! cargo run --release --example byol_pipeline
//! ```

use contrastive_quant::core::{ByolTrainer, Pipeline, PretrainConfig};
use contrastive_quant::data::{Dataset, DatasetConfig};
use contrastive_quant::eval::{linear_eval, LinearEvalConfig};
use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::quant::PrecisionSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(256, 128));

    for (name, pipeline, pset) in [
        ("BYOL", Pipeline::Baseline, None),
        (
            "CQ-C on BYOL",
            Pipeline::CqC,
            Some(PrecisionSet::range(6, 16)?),
        ),
    ] {
        // BYOL uses a batch-normed projection head (and the trainer adds
        // the prediction head itself).
        let online = Encoder::new(
            &EncoderConfig::new(Arch::ResNet18, 4).with_byol_proj(32, 16),
            3,
        )?;
        let cfg = PretrainConfig {
            pipeline,
            precision_set: pset,
            epochs: 4,
            batch_size: 64,
            lr: 0.1,
            ema_tau: 0.99,
            ..Default::default()
        };
        let mut trainer = ByolTrainer::new(online, cfg)?;
        trainer.train(&train)?;
        println!(
            "{name}: loss per epoch {:?}",
            trainer
                .history()
                .epoch_losses
                .iter()
                .map(|l| format!("{l:.3}"))
                .collect::<Vec<_>>()
        );
        let mut encoder = trainer.into_encoder();
        let acc = linear_eval(
            &mut encoder,
            &train,
            &test,
            &LinearEvalConfig {
                epochs: 20,
                ..Default::default()
            },
        )?;
        println!("{name}: linear evaluation {acc:.2}%\n");
    }
    Ok(())
}
