//! Quickstart: pre-train a small encoder with Contrastive Quant (CQ-C)
//! and evaluate it with a linear probe.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use contrastive_quant::core::{Pipeline, PretrainConfig, SimclrTrainer};
use contrastive_quant::data::{Dataset, DatasetConfig};
use contrastive_quant::eval::{linear_eval, LinearEvalConfig};
use contrastive_quant::models::{Arch, Encoder, EncoderConfig};
use contrastive_quant::quant::PrecisionSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic dataset (CIFAR-100 stand-in).
    let (train, test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(256, 128));
    println!(
        "dataset: {} train / {} test, {} classes",
        train.len(),
        test.len(),
        train.num_classes()
    );

    // 2. A ResNet-18 encoder with a SimCLR projection head.
    let encoder = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4).with_proj(32, 16), 42)?;
    println!("encoder: {} parameters", encoder.num_params());

    // 3. Contrastive Quant pre-training: CQ-C with precision set 6-16.
    //    Every iteration samples two precisions (q1, q2) and enforces
    //    feature consistency across views AND across quantization levels.
    let cfg = PretrainConfig {
        pipeline: Pipeline::CqC,
        precision_set: Some(PrecisionSet::range(6, 16)?),
        epochs: 5,
        batch_size: 64,
        lr: 0.1,
        ..Default::default()
    };
    let mut trainer = SimclrTrainer::new(encoder, cfg)?;
    trainer.train(&train)?;
    for (e, loss) in trainer.history().epoch_losses.iter().enumerate() {
        println!("epoch {e}: CQ-C loss {loss:.4}");
    }

    // 4. Linear evaluation on frozen features.
    let mut encoder = trainer.into_encoder();
    let acc = linear_eval(
        &mut encoder,
        &train,
        &test,
        &LinearEvalConfig {
            epochs: 20,
            ..Default::default()
        },
    )?;
    println!("linear evaluation accuracy: {acc:.2}%");
    Ok(())
}
