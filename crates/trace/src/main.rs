//! `cq-trace` — offline analyzer for cq-obs JSONL traces.
//!
//! ```text
//! cq-trace summarize <trace.jsonl>
//! cq-trace check <trace.jsonl>
//! cq-trace diff <a.jsonl> <b.jsonl> [--fail-over <pct>] [--min-ms <ms>] [--exempt-prefix <p>]...
//! cq-trace merge <out.jsonl> <seg1.jsonl> <seg2.jsonl> [...]
//! cq-trace bench-check <bench.json>
//! cq-trace bench-diff <old.json> <new.json> [--fail-over <pct>] [--report-only]
//! cq-trace timeline <trace.jsonl> [--out <trace.json>]
//! cq-trace profile <trace.jsonl> [--require-pool]
//! ```
//!
//! `diff --exempt-prefix <p>` (repeatable) reports but never gates any
//! span/counter/metric/histogram whose name starts with `<p>` — used by
//! the fusion-matrix CI lane to diff `CQ_FUSION=on` vs `off` traces,
//! where the `graph.`/`fusion.` chain accounting legitimately differs.
//!
//! `bench-check` validates a `cq-bench kernels` artifact against the
//! `cq-bench-kernels/v1` schema. `bench-diff` gates new kernel
//! throughput against a committed artifact; artifacts from different
//! machines are reported but never fail the gate.
//!
//! `merge` stitches the traces of consecutive process segments of one
//! run (kill-and-resume) into a single trace: counter totals are summed
//! per name (last flush per segment), everything else is concatenated.
//!
//! `timeline` exports the per-thread intervals of a `CQ_PROF=1` trace
//! as Chrome trace event JSON (load in `chrome://tracing` or
//! <https://ui.perfetto.dev>). `profile` prints the self-time-ranked
//! span table with per-phase pool utilization; `--require-pool` makes
//! it fail when no positive pool utilization can be derived (the CI
//! profile smoke gate).
//!
//! Exit codes: 0 = pass, 1 = Critical verdict (`check`) or regression
//! (`diff`), 2 = usage or I/O/parse error.

use std::process::ExitCode;

use cq_obs::health::Verdict;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cq-trace summarize <trace.jsonl>\n  cq-trace check <trace.jsonl>\n  cq-trace diff <a.jsonl> <b.jsonl> [--fail-over <pct>] [--min-ms <ms>] [--exempt-prefix <p>]...\n  cq-trace merge <out.jsonl> <seg1.jsonl> <seg2.jsonl> [...]\n  cq-trace bench-check <bench.json>\n  cq-trace bench-diff <old.json> <new.json> [--fail-over <pct>] [--report-only]\n  cq-trace timeline <trace.jsonl> [--out <trace.json>]\n  cq-trace profile <trace.jsonl> [--require-pool]"
    );
    ExitCode::from(2)
}

fn load_bench(path: &str) -> Result<cq_trace::BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    cq_trace::parse_bench(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "summarize" => {
            let [_, path] = args.as_slice() else {
                return usage();
            };
            match cq_trace::load_trace(path) {
                Ok(records) => {
                    print!("{}", cq_trace::summarize(&records));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cq-trace: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "check" => {
            let [_, path] = args.as_slice() else {
                return usage();
            };
            match cq_trace::load_trace(path) {
                Ok(records) => {
                    let res = cq_trace::check(&records);
                    print!("{}", res.report);
                    if res.worst == Verdict::Critical {
                        eprintln!("cq-trace check: FAIL (critical verdict)");
                        ExitCode::FAILURE
                    } else {
                        println!("cq-trace check: PASS");
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("cq-trace: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "diff" => {
            if args.len() < 3 {
                return usage();
            }
            let (path_a, path_b) = (&args[1], &args[2]);
            let mut fail_over = 30.0f64;
            let mut min_ms = 10.0f64;
            let mut exempt_prefixes: Vec<String> = Vec::new();
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match (flag.as_str(), rest.next()) {
                    ("--fail-over", Some(v)) => match v.parse::<f64>() {
                        Ok(v) => fail_over = v,
                        Err(_) => return usage(),
                    },
                    ("--min-ms", Some(v)) => match v.parse::<f64>() {
                        Ok(v) => min_ms = v,
                        Err(_) => return usage(),
                    },
                    ("--exempt-prefix", Some(p)) => exempt_prefixes.push(p.clone()),
                    _ => return usage(),
                }
            }
            let (a, b) = match (cq_trace::load_trace(path_a), cq_trace::load_trace(path_b)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("cq-trace: {e}");
                    return ExitCode::from(2);
                }
            };
            let res = cq_trace::diff_with_exemptions(
                &a,
                &b,
                fail_over,
                (min_ms * 1e6) as u64,
                &exempt_prefixes,
            );
            print!("{}", res.report);
            if res.regressions.is_empty() {
                println!("cq-trace diff: PASS");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "cq-trace diff: FAIL ({} regressions)",
                    res.regressions.len()
                );
                ExitCode::FAILURE
            }
        }
        "merge" => {
            // out path + at least two segments to stitch.
            if args.len() < 4 {
                return usage();
            }
            let out_path = &args[1];
            let mut segments = Vec::new();
            for path in &args[2..] {
                match cq_trace::load_trace(path) {
                    Ok(records) => segments.push(records),
                    Err(e) => {
                        eprintln!("cq-trace: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            let merged = cq_trace::merge(&segments);
            let n = merged.len();
            match std::fs::write(out_path, cq_trace::render_trace(&merged)) {
                Ok(()) => {
                    println!(
                        "cq-trace merge: {} segment(s) -> {out_path} ({n} records)",
                        segments.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cq-trace: cannot write {out_path}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "bench-check" => {
            let [_, path] = args.as_slice() else {
                return usage();
            };
            match load_bench(path) {
                Ok(report) => {
                    let best_chain = report
                        .ew_chains
                        .iter()
                        .map(cq_trace::EwChainPoint::speedup)
                        .fold(0.0f64, f64::max);
                    let fusion = if best_chain > 0.0 {
                        format!(
                            ", {} ew chains (best {:.2}x fused)",
                            report.ew_chains.len(),
                            best_chain
                        )
                    } else {
                        String::new()
                    };
                    println!(
                        "cq-trace bench-check: PASS ({} grid points{fusion}, machine {})",
                        report.kernels.len(),
                        report.machine
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cq-trace bench-check: {e}");
                    // Schema violations are findings (1); unreadable files
                    // are I/O errors (2).
                    if e.contains("cannot read") {
                        ExitCode::from(2)
                    } else {
                        ExitCode::FAILURE
                    }
                }
            }
        }
        "bench-diff" => {
            if args.len() < 3 {
                return usage();
            }
            let (path_old, path_new) = (&args[1], &args[2]);
            let mut fail_over = 25.0f64;
            let mut report_only = false;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--report-only" => report_only = true,
                    "--fail-over" => match rest.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(v) => fail_over = v,
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let (old, new) = match (load_bench(path_old), load_bench(path_new)) {
                (Ok(old), Ok(new)) => (old, new),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("cq-trace: {e}");
                    return ExitCode::from(2);
                }
            };
            let res = cq_trace::diff_bench(&old, &new, fail_over);
            print!("{}", res.report);
            if res.regressions.is_empty() || report_only {
                if !res.regressions.is_empty() {
                    println!(
                        "cq-trace bench-diff: {} regression(s), report-only",
                        res.regressions.len()
                    );
                } else {
                    println!("cq-trace bench-diff: PASS");
                }
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "cq-trace bench-diff: FAIL ({} regressions)",
                    res.regressions.len()
                );
                ExitCode::FAILURE
            }
        }
        "timeline" => {
            if args.len() < 2 {
                return usage();
            }
            let path = &args[1];
            let mut out_path: Option<&String> = None;
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                match (flag.as_str(), rest.next()) {
                    ("--out", Some(v)) => out_path = Some(v),
                    _ => return usage(),
                }
            }
            let records = match cq_trace::load_trace(path) {
                Ok(records) => records,
                Err(e) => {
                    eprintln!("cq-trace: {e}");
                    return ExitCode::from(2);
                }
            };
            match cq_trace::export_chrome_trace(&records) {
                Ok(json) => match out_path {
                    Some(out) => match std::fs::write(out, &json) {
                        Ok(()) => {
                            println!("cq-trace timeline: {path} -> {out} ({} bytes)", json.len());
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("cq-trace: cannot write {out}: {e}");
                            ExitCode::from(2)
                        }
                    },
                    None => {
                        print!("{json}");
                        ExitCode::SUCCESS
                    }
                },
                Err(e) => {
                    eprintln!("cq-trace timeline: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "profile" => {
            if args.len() < 2 {
                return usage();
            }
            let path = &args[1];
            let mut require_pool = false;
            for flag in &args[2..] {
                match flag.as_str() {
                    "--require-pool" => require_pool = true,
                    _ => return usage(),
                }
            }
            let records = match cq_trace::load_trace(path) {
                Ok(records) => records,
                Err(e) => {
                    eprintln!("cq-trace: {e}");
                    return ExitCode::from(2);
                }
            };
            match cq_trace::profile(&records) {
                Ok(res) => {
                    print!("{}", res.report);
                    let pool_ok = res
                        .pool_utilization
                        .is_some_and(|u| u.is_finite() && u > 0.0);
                    if require_pool && !pool_ok {
                        eprintln!(
                            "cq-trace profile: FAIL (no positive pool utilization; got {:?})",
                            res.pool_utilization
                        );
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("cq-trace profile: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
