//! Parsing, validation and regression-diffing of `cq-bench kernels`
//! artifacts (`BENCH_<pr>.json`, schemas `cq-bench-kernels/v1`, `/v2`
//! and `/v3`).
//!
//! v2 extends v1 with a measured machine roofline (`peak_gflops`,
//! `stream_gbs`), per-point arithmetic intensity and %-of-roofline, and
//! a machine fingerprint that also carries the effective thread count
//! and SIMD dispatch level. Both schema versions parse; a v1-vs-v2 diff
//! compares throughput as usual but the fingerprints differ in format,
//! so the hard gate disarms exactly as it does across real hardware
//! changes.
//!
//! v3 extends v2 with the integer inference path: i8 GEMM grid points
//! (`matmul_i8*`, integer GOP/s under the shared `gflops` key) and a
//! required `int8_encoders` section — per-architecture imgs/sec of the
//! `cq-infer` i8 program vs the fake-quant f32 forward. The machine
//! fingerprint format is unchanged from v2, so v2-vs-v3 diffs on the
//! same machine still hard-gate the shared kernel grid; encoder points
//! diff like kernels when both sides carry them.
//!
//! Since PR 10 the v3 artifact may additionally carry two *optional*
//! sections measuring the graph executor's elementwise fusion:
//! `ew_chains` (fused vs. unfused chain throughput in GB/s of logical
//! chain traffic) and `fusion_pilots` (2-step pilot steps/sec per
//! pipeline under both fusion modes). The schema string is unchanged —
//! older artifacts simply lack the sections — but when present the
//! entries are validated and the *fused* throughput diffs like any other
//! grid point.
//!
//! The flat-line parser in [`crate::record`] cannot read these files —
//! they are one nested JSON document, not JSONL — so this module carries
//! its own minimal recursive-descent parser for the full JSON value
//! grammar (still no external dependency). On top of it:
//!
//! - [`parse_bench`] — parse + schema-validate into a [`BenchReport`].
//! - [`diff_bench`] — compare two reports grid-point by grid-point and
//!   flag throughput regressions beyond a noise threshold. Benchmarks
//!   from *different machines* are never hard-gated: the diff degrades to
//!   a report with a note, because GFLOP/s across CPUs is not a
//!   regression signal.

use std::collections::BTreeMap;
use std::fmt;

/// The original schema string.
pub const BENCH_SCHEMA: &str = "cq-bench-kernels/v1";

/// The roofline-aware schema string.
pub const BENCH_SCHEMA_V2: &str = "cq-bench-kernels/v2";

/// The integer-inference-aware schema string.
pub const BENCH_SCHEMA_V3: &str = "cq-bench-kernels/v3";

// ---------------------------------------------------------------------------
// Minimal JSON value parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (number precision: `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key order not preserved.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON syntax error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json offset {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => self.err(format!("unexpected byte `{}`", other as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Num(v)),
            _ => self.err(format!("bad number `{text}`")),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    match std::str::from_utf8(rest.get(..ch_len).unwrap_or_default()) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid utf-8 in string"),
                    }
                    self.pos += ch_len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_json(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Bench report schema
// ---------------------------------------------------------------------------

/// One measured kernel grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Kernel name (`matmul`, `matmul_nt`, `matmul_tn`, `conv2d`).
    pub kernel: String,
    /// Output rows of the (lowered) product.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Contraction length.
    pub k: usize,
    /// Blocked-kernel throughput.
    pub gflops: f64,
    /// Pre-rewrite scalar baseline throughput.
    pub ref_gflops: f64,
    /// Percent of the roofline-attainable throughput this point reaches
    /// (v2 artifacts; 0.0 in v1 artifacts, which carry no roofline).
    pub roofline_pct: f64,
}

impl KernelPoint {
    /// Identity of this grid point for cross-report matching.
    pub fn key(&self) -> (String, usize, usize, usize) {
        (self.kernel.clone(), self.m, self.n, self.k)
    }
}

/// One int8-vs-f32 encoder throughput measurement (v3 artifacts).
#[derive(Debug, Clone, PartialEq)]
pub struct Int8EncoderPoint {
    /// Architecture name (`ResNet18`, `MobileNetV2`, ...).
    pub arch: String,
    /// Batch size of the measurement.
    pub n: usize,
    /// Fake-quant f32 eval forward throughput, imgs/sec.
    pub f32_imgs_per_sec: f64,
    /// `cq-infer` i8 program throughput, imgs/sec.
    pub int8_imgs_per_sec: f64,
}

/// One fused-vs-unfused elementwise-chain throughput measurement
/// (optional `ew_chains` section, PR 10+ artifacts). Throughput counts
/// the chain's logical traffic — read input, read each residual
/// operand, write output — so the fused/unfused ratio isolates the
/// passes the fusion pass elides.
#[derive(Debug, Clone, PartialEq)]
pub struct EwChainPoint {
    /// Chain label (`bn_relu_q8`, `bn_add3_relu_q8`, ...).
    pub chain: String,
    /// Elements per tensor in the chain.
    pub elems: usize,
    /// Recorded elementwise groups (= unfused pass count).
    pub groups: usize,
    /// Fused-mode throughput, GB/s of logical chain traffic.
    pub fused_gbs: f64,
    /// Unfused-mode throughput over the same traffic.
    pub unfused_gbs: f64,
}

impl EwChainPoint {
    /// Fused-over-unfused speedup.
    pub fn speedup(&self) -> f64 {
        self.fused_gbs / self.unfused_gbs
    }
}

/// One per-pipeline training-pilot measurement under both fusion modes
/// (optional `fusion_pilots` section, PR 10+ artifacts).
#[derive(Debug, Clone, PartialEq)]
pub struct FusionPilotPoint {
    /// Pipeline label (`CqA`, `CqB`, `CqC`).
    pub pipeline: String,
    /// Steps per timed run.
    pub steps: usize,
    /// Steps/sec with fusion on.
    pub fused_steps_per_sec: f64,
    /// Steps/sec with fusion off.
    pub unfused_steps_per_sec: f64,
}

/// A parsed, schema-valid `BENCH_<pr>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// PR number the artifact belongs to.
    pub pr: u64,
    /// `quick` or `paper`.
    pub scale: String,
    /// `os/arch/cpu/threads` fingerprint, used to refuse cross-machine
    /// hard gating.
    pub machine: String,
    /// All measured grid points.
    pub kernels: Vec<KernelPoint>,
    /// Training-pilot throughput in steps/sec (0.0 if absent).
    pub pilot_steps_per_sec: f64,
    /// Measured machine ceilings `(peak_gflops, stream_gbs)`; `None` in
    /// v1 artifacts.
    pub roofline: Option<(f64, f64)>,
    /// Int8-vs-f32 encoder throughput points; empty before v3.
    pub int8_encoders: Vec<Int8EncoderPoint>,
    /// Fused-vs-unfused elementwise-chain points; empty before PR 10.
    pub ew_chains: Vec<EwChainPoint>,
    /// Per-pipeline fused-vs-unfused pilot points; empty before PR 10.
    pub fusion_pilots: Vec<FusionPilotPoint>,
}

fn req_str(v: &Value, key: &str, ctx: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing string field `{key}`"))
}

fn req_num(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric field `{key}`"))
}

/// Parses and schema-validates a bench artifact (v1, v2 or v3).
pub fn parse_bench(text: &str) -> Result<BenchReport, String> {
    let root = parse_json(text).map_err(|e| e.to_string())?;
    let schema = req_str(&root, "schema", "root")?;
    // v3 keeps every v2 rule (roofline, fingerprint format, per-point
    // ai/roofline_pct) and adds a required `int8_encoders` section.
    let v3 = schema == BENCH_SCHEMA_V3;
    let v2 = match schema.as_str() {
        s if s == BENCH_SCHEMA => false,
        s if s == BENCH_SCHEMA_V2 => true,
        s if s == BENCH_SCHEMA_V3 => true,
        _ => {
            return Err(format!(
                "unsupported schema `{schema}` (expected `{BENCH_SCHEMA}`, `{BENCH_SCHEMA_V2}` or `{BENCH_SCHEMA_V3}`)"
            ))
        }
    };
    let pr = req_num(&root, "pr", "root")? as u64;
    let scale = req_str(&root, "scale", "root")?;
    let mach = root.get("machine").ok_or("root: missing `machine`")?;
    // v2 fingerprints the *effective* execution environment: the thread
    // count the pool actually uses (post CQ_THREADS) and the SIMD
    // dispatch level, both of which change what GFLOP/s means.
    let machine = if v2 {
        format!(
            "{}/{}/{}/{}t/{}",
            req_str(mach, "os", "machine")?,
            req_str(mach, "arch", "machine")?,
            req_str(mach, "cpu", "machine")?,
            req_num(mach, "threads_effective", "machine")? as u64,
            req_str(mach, "simd", "machine")?,
        )
    } else {
        format!(
            "{}/{}/{}/{}t",
            req_str(mach, "os", "machine")?,
            req_str(mach, "arch", "machine")?,
            req_str(mach, "cpu", "machine")?,
            req_num(mach, "threads", "machine")? as u64,
        )
    };
    let roofline = if v2 {
        let r = root.get("roofline").ok_or("root: missing `roofline`")?;
        let peak = req_num(r, "peak_gflops", "roofline")?;
        let stream = req_num(r, "stream_gbs", "roofline")?;
        if !(peak.is_finite() && peak > 0.0 && stream.is_finite() && stream > 0.0) {
            return Err("roofline: non-positive or non-finite ceiling".into());
        }
        Some((peak, stream))
    } else {
        None
    };
    let mut kernels = Vec::new();
    let entries = root
        .get("kernels")
        .and_then(Value::as_arr)
        .ok_or("root: missing `kernels` array")?;
    if entries.is_empty() {
        return Err("`kernels` array is empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let ctx = format!("kernels[{i}]");
        let point = KernelPoint {
            kernel: req_str(entry, "kernel", &ctx)?,
            m: req_num(entry, "m", &ctx)? as usize,
            n: req_num(entry, "n", &ctx)? as usize,
            k: req_num(entry, "k", &ctx)? as usize,
            gflops: req_num(entry, "gflops", &ctx)?,
            ref_gflops: req_num(entry, "ref_gflops", &ctx)?,
            roofline_pct: if v2 {
                req_num(entry, "roofline_pct", &ctx)?
            } else {
                0.0
            },
        };
        if point.gflops <= 0.0 || point.ref_gflops <= 0.0 {
            return Err(format!("{ctx}: non-positive throughput"));
        }
        if v2 {
            let ai = req_num(entry, "ai", &ctx)?;
            if !(ai.is_finite() && ai > 0.0) {
                return Err(format!("{ctx}: non-positive arithmetic intensity"));
            }
            if !(point.roofline_pct.is_finite() && point.roofline_pct > 0.0) {
                return Err(format!("{ctx}: non-positive roofline_pct"));
            }
        }
        kernels.push(point);
    }
    let mut int8_encoders = Vec::new();
    if v3 {
        let entries = root
            .get("int8_encoders")
            .and_then(Value::as_arr)
            .ok_or("root: missing `int8_encoders` array (required by v3)")?;
        if entries.is_empty() {
            return Err("`int8_encoders` array is empty".into());
        }
        for (i, entry) in entries.iter().enumerate() {
            let ctx = format!("int8_encoders[{i}]");
            let point = Int8EncoderPoint {
                arch: req_str(entry, "arch", &ctx)?,
                n: req_num(entry, "n", &ctx)? as usize,
                f32_imgs_per_sec: req_num(entry, "f32_imgs_per_sec", &ctx)?,
                int8_imgs_per_sec: req_num(entry, "int8_imgs_per_sec", &ctx)?,
            };
            if !(point.f32_imgs_per_sec.is_finite()
                && point.f32_imgs_per_sec > 0.0
                && point.int8_imgs_per_sec.is_finite()
                && point.int8_imgs_per_sec > 0.0)
            {
                return Err(format!("{ctx}: non-positive throughput"));
            }
            int8_encoders.push(point);
        }
    }
    // Optional fusion sections (PR 10+). Absent in older artifacts;
    // when present every entry must be well-formed and positive.
    let mut ew_chains = Vec::new();
    if let Some(entries) = root.get("ew_chains").and_then(Value::as_arr) {
        for (i, entry) in entries.iter().enumerate() {
            let ctx = format!("ew_chains[{i}]");
            let point = EwChainPoint {
                chain: req_str(entry, "chain", &ctx)?,
                elems: req_num(entry, "elems", &ctx)? as usize,
                groups: req_num(entry, "groups", &ctx)? as usize,
                fused_gbs: req_num(entry, "fused_gbs", &ctx)?,
                unfused_gbs: req_num(entry, "unfused_gbs", &ctx)?,
            };
            if point.elems == 0 || point.groups == 0 {
                return Err(format!("{ctx}: zero elems or groups"));
            }
            if !(point.fused_gbs.is_finite()
                && point.fused_gbs > 0.0
                && point.unfused_gbs.is_finite()
                && point.unfused_gbs > 0.0)
            {
                return Err(format!("{ctx}: non-positive throughput"));
            }
            ew_chains.push(point);
        }
    }
    let mut fusion_pilots = Vec::new();
    if let Some(entries) = root.get("fusion_pilots").and_then(Value::as_arr) {
        for (i, entry) in entries.iter().enumerate() {
            let ctx = format!("fusion_pilots[{i}]");
            let point = FusionPilotPoint {
                pipeline: req_str(entry, "pipeline", &ctx)?,
                steps: req_num(entry, "steps", &ctx)? as usize,
                fused_steps_per_sec: req_num(entry, "fused_steps_per_sec", &ctx)?,
                unfused_steps_per_sec: req_num(entry, "unfused_steps_per_sec", &ctx)?,
            };
            if !(point.fused_steps_per_sec.is_finite()
                && point.fused_steps_per_sec > 0.0
                && point.unfused_steps_per_sec.is_finite()
                && point.unfused_steps_per_sec > 0.0)
            {
                return Err(format!("{ctx}: non-positive throughput"));
            }
            fusion_pilots.push(point);
        }
    }
    let pilot_steps_per_sec = root
        .get("pilot")
        .map(|p| req_num(p, "steps_per_sec", "pilot"))
        .transpose()?
        .unwrap_or(0.0);
    Ok(BenchReport {
        pr,
        scale,
        machine,
        kernels,
        pilot_steps_per_sec,
        roofline,
        int8_encoders,
        ew_chains,
        fusion_pilots,
    })
}

// ---------------------------------------------------------------------------
// Diff gate
// ---------------------------------------------------------------------------

/// Outcome of [`diff_bench`].
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// Human-readable table.
    pub report: String,
    /// Grid points slower than the threshold allows (empty on pass).
    pub regressions: Vec<String>,
    /// True when old/new ran on different machines (gate disarmed).
    pub machine_mismatch: bool,
}

/// Compares two bench reports. A grid point regresses when the new
/// blocked throughput is more than `fail_over_pct` percent below the old
/// one; points present on only one side are reported but never fail.
/// When the machine fingerprints differ the diff never fails (GFLOP/s
/// across CPUs is not comparable) — it reports with a note instead.
pub fn diff_bench(old: &BenchReport, new: &BenchReport, fail_over_pct: f64) -> BenchDiff {
    let mut report = String::new();
    let mut regressions = Vec::new();
    let machine_mismatch = old.machine != new.machine;
    report.push_str(&format!(
        "bench-diff: PR {} -> PR {} ({} threshold {:.0}%)\n",
        old.pr, new.pr, new.scale, fail_over_pct
    ));
    if machine_mismatch {
        report.push_str(&format!(
            "note: different machines (old `{}`, new `{}`): reporting only, gate disarmed\n",
            old.machine, new.machine
        ));
    }
    if let Some((peak, stream)) = new.roofline {
        report.push_str(&format!(
            "roofline (new machine): {peak:.1} GFLOP/s mul-add peak, {stream:.1} GB/s stream\n"
        ));
    }
    let old_by_key: BTreeMap<_, _> = old.kernels.iter().map(|p| (p.key(), p)).collect();
    for p in &new.kernels {
        let mut label = format!("{} {}x{}x{}", p.kernel, p.m, p.n, p.k);
        if p.roofline_pct > 0.0 {
            let _ = std::fmt::Write::write_fmt(
                &mut label,
                format_args!(" [{:.0}% roofline]", p.roofline_pct),
            );
        }
        match old_by_key.get(&p.key()) {
            None => report.push_str(&format!(
                "  new   {label}: {:.2} GFLOP/s (no old measurement)\n",
                p.gflops
            )),
            Some(o) => {
                let delta_pct = (p.gflops - o.gflops) / o.gflops * 100.0;
                let verdict = if delta_pct < -fail_over_pct && !machine_mismatch {
                    regressions.push(format!("{label}: {delta_pct:+.1}%"));
                    "REGRESSED"
                } else {
                    "ok"
                };
                report.push_str(&format!(
                    "  {verdict:>5} {label}: {:.2} -> {:.2} GFLOP/s ({delta_pct:+.1}%)\n",
                    o.gflops, p.gflops
                ));
            }
        }
    }
    for p in &old.kernels {
        if !new.kernels.iter().any(|q| q.key() == p.key()) {
            report.push_str(&format!(
                "  gone  {} {}x{}x{} (was {:.2} GFLOP/s)\n",
                p.kernel, p.m, p.n, p.k, p.gflops
            ));
        }
    }
    // Encoder points diff like kernel points. The int8/f32 *ratio* is
    // machine-relative, but the gate still keys on absolute imgs/sec of
    // the int8 path — that is what the integer inference work optimizes.
    let old_enc: BTreeMap<_, _> = old
        .int8_encoders
        .iter()
        .map(|p| ((p.arch.clone(), p.n), p))
        .collect();
    for p in &new.int8_encoders {
        let label = format!(
            "int8 {} n={} ({:.2}x of f32)",
            p.arch,
            p.n,
            p.int8_imgs_per_sec / p.f32_imgs_per_sec
        );
        match old_enc.get(&(p.arch.clone(), p.n)) {
            None => report.push_str(&format!(
                "  new   {label}: {:.1} imgs/sec (no old measurement)\n",
                p.int8_imgs_per_sec
            )),
            Some(o) => {
                let delta_pct =
                    (p.int8_imgs_per_sec - o.int8_imgs_per_sec) / o.int8_imgs_per_sec * 100.0;
                let verdict = if delta_pct < -fail_over_pct && !machine_mismatch {
                    regressions.push(format!("{label}: {delta_pct:+.1}%"));
                    "REGRESSED"
                } else {
                    "ok"
                };
                report.push_str(&format!(
                    "  {verdict:>5} {label}: {:.1} -> {:.1} imgs/sec ({delta_pct:+.1}%)\n",
                    o.int8_imgs_per_sec, p.int8_imgs_per_sec
                ));
            }
        }
    }
    // Elementwise-chain and fusion-pilot points gate on the *fused*
    // throughput — that is what the fusion work optimizes; the unfused
    // side rides along as the in-artifact baseline.
    let old_ch: BTreeMap<_, _> = old.ew_chains.iter().map(|p| (p.chain.clone(), p)).collect();
    for p in &new.ew_chains {
        let label = format!(
            "ew {} ({} groups, {:.2}x fused)",
            p.chain,
            p.groups,
            p.speedup()
        );
        match old_ch.get(&p.chain) {
            None => report.push_str(&format!(
                "  new   {label}: {:.2} GB/s (no old measurement)\n",
                p.fused_gbs
            )),
            Some(o) => {
                let delta_pct = (p.fused_gbs - o.fused_gbs) / o.fused_gbs * 100.0;
                let verdict = if delta_pct < -fail_over_pct && !machine_mismatch {
                    regressions.push(format!("{label}: {delta_pct:+.1}%"));
                    "REGRESSED"
                } else {
                    "ok"
                };
                report.push_str(&format!(
                    "  {verdict:>5} {label}: {:.2} -> {:.2} GB/s ({delta_pct:+.1}%)\n",
                    o.fused_gbs, p.fused_gbs
                ));
            }
        }
    }
    let old_fp: BTreeMap<_, _> = old
        .fusion_pilots
        .iter()
        .map(|p| (p.pipeline.clone(), p))
        .collect();
    for p in &new.fusion_pilots {
        let label = format!(
            "pilot {} ({:.2}x fused)",
            p.pipeline,
            p.fused_steps_per_sec / p.unfused_steps_per_sec
        );
        match old_fp.get(&p.pipeline) {
            None => report.push_str(&format!(
                "  new   {label}: {:.2} steps/sec (no old measurement)\n",
                p.fused_steps_per_sec
            )),
            Some(o) => {
                let delta_pct =
                    (p.fused_steps_per_sec - o.fused_steps_per_sec) / o.fused_steps_per_sec * 100.0;
                let verdict = if delta_pct < -fail_over_pct && !machine_mismatch {
                    regressions.push(format!("{label}: {delta_pct:+.1}%"));
                    "REGRESSED"
                } else {
                    "ok"
                };
                report.push_str(&format!(
                    "  {verdict:>5} {label}: {:.2} -> {:.2} steps/sec ({delta_pct:+.1}%)\n",
                    o.fused_steps_per_sec, p.fused_steps_per_sec
                ));
            }
        }
    }
    if old.pilot_steps_per_sec > 0.0 && new.pilot_steps_per_sec > 0.0 {
        let delta_pct =
            (new.pilot_steps_per_sec - old.pilot_steps_per_sec) / old.pilot_steps_per_sec * 100.0;
        let verdict = if delta_pct < -fail_over_pct && !machine_mismatch {
            regressions.push(format!("pilot steps/sec: {delta_pct:+.1}%"));
            "REGRESSED"
        } else {
            "ok"
        };
        report.push_str(&format!(
            "  {verdict:>5} pilot: {:.2} -> {:.2} steps/sec ({delta_pct:+.1}%)\n",
            old.pilot_steps_per_sec, new.pilot_steps_per_sec
        ));
    }
    BenchDiff {
        report,
        regressions,
        machine_mismatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(gflops_256: f64, cpu: &str) -> String {
        format!(
            r#"{{
  "schema": "cq-bench-kernels/v1",
  "pr": 7,
  "scale": "quick",
  "unix_secs": 1,
  "machine": {{"os": "linux", "arch": "x86_64", "cpu": "{cpu}", "threads": 4}},
  "kernels": [
    {{"kernel": "matmul", "m": 256, "n": 256, "k": 256, "iters": 9,
      "gflops": {gflops_256}, "ref_gflops": 15.0, "speedup": 2.4}},
    {{"kernel": "conv2d", "m": 16, "n": 1024, "k": 72, "iters": 40,
      "gflops": 20.0, "ref_gflops": 14.0, "speedup": 1.4}}
  ],
  "pilot": {{"steps": 2, "steps_per_sec": 150.0}}
}}"#
        )
    }

    #[test]
    fn json_parser_handles_nesting_escapes_and_numbers() {
        let v = parse_json(r#"{"a": [1, -2.5e1, "x\n\"yA"], "b": {"c": null, "d": true}}"#)
            .expect("parse");
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Value::Num(-25.0));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2],
            Value::Str("x\n\"yA".into())
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json(r#"{"a": 1e999}"#).is_err(), "non-finite number");
    }

    #[test]
    fn parse_bench_validates_schema() {
        let report = parse_bench(&sample(36.0, "TestCpu")).expect("valid report");
        assert_eq!(report.pr, 7);
        assert_eq!(report.kernels.len(), 2);
        assert_eq!(report.machine, "linux/x86_64/TestCpu/4t");
        assert!((report.pilot_steps_per_sec - 150.0).abs() < 1e-9);

        let wrong_schema = sample(36.0, "TestCpu").replace("cq-bench-kernels/v1", "bogus/v9");
        assert!(parse_bench(&wrong_schema).unwrap_err().contains("schema"));
        let no_kernels = sample(36.0, "TestCpu").replace("\"kernels\"", "\"kernelz\"");
        assert!(parse_bench(&no_kernels).unwrap_err().contains("kernels"));
    }

    #[test]
    fn diff_flags_regressions_beyond_threshold() {
        let old = parse_bench(&sample(36.0, "TestCpu")).unwrap();
        let ok = parse_bench(&sample(30.0, "TestCpu")).unwrap(); // -16.7%
        let bad = parse_bench(&sample(20.0, "TestCpu")).unwrap(); // -44.4%
        assert!(diff_bench(&old, &ok, 25.0).regressions.is_empty());
        let d = diff_bench(&old, &bad, 25.0);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].contains("matmul 256x256x256"));
    }

    fn sample_v2(gflops_256: f64, simd: &str) -> String {
        format!(
            r#"{{
  "schema": "cq-bench-kernels/v2",
  "pr": 8,
  "scale": "quick",
  "unix_secs": 1,
  "machine": {{"os": "linux", "arch": "x86_64", "cpu": "TestCpu", "threads": 8,
               "threads_effective": 4, "simd": "{simd}"}},
  "roofline": {{"peak_gflops": 120.0, "stream_gbs": 18.0}},
  "kernels": [
    {{"kernel": "matmul", "m": 256, "n": 256, "k": 256, "iters": 9,
      "gflops": {gflops_256}, "ref_gflops": 15.0, "speedup": 2.4,
      "ai": 42.7, "roofline_pct": 30.0}}
  ],
  "pilot": {{"steps": 2, "steps_per_sec": 150.0}}
}}"#
        )
    }

    #[test]
    fn parse_bench_accepts_v2_with_roofline() {
        let report = parse_bench(&sample_v2(36.0, "avx2")).expect("valid v2 report");
        assert_eq!(report.pr, 8);
        // Fingerprint carries the effective thread count and SIMD level.
        assert_eq!(report.machine, "linux/x86_64/TestCpu/4t/avx2");
        assert_eq!(report.roofline, Some((120.0, 18.0)));
        assert!((report.kernels[0].roofline_pct - 30.0).abs() < 1e-9);

        // v2 requires the roofline block and sane per-point fields.
        let no_roofline = sample_v2(36.0, "avx2").replace("\"roofline\"", "\"rooflinez\"");
        assert!(parse_bench(&no_roofline).unwrap_err().contains("roofline"));
        let bad_pct =
            sample_v2(36.0, "avx2").replace("\"roofline_pct\": 30.0", "\"roofline_pct\": 0.0");
        assert!(parse_bench(&bad_pct).unwrap_err().contains("roofline_pct"));
        let bad_peak =
            sample_v2(36.0, "avx2").replace("\"peak_gflops\": 120.0", "\"peak_gflops\": -1.0");
        assert!(parse_bench(&bad_peak).unwrap_err().contains("ceiling"));
    }

    #[test]
    fn v1_vs_v2_diff_reports_but_never_gates() {
        // The fingerprint format changed between schema versions, so a
        // v1-vs-v2 diff behaves like a machine change: report-only.
        let old = parse_bench(&sample(36.0, "TestCpu")).unwrap();
        let new = parse_bench(&sample_v2(10.0, "avx2")).unwrap();
        let d = diff_bench(&old, &new, 25.0);
        assert!(d.machine_mismatch);
        assert!(d.regressions.is_empty());
        assert!(d.report.contains("roofline (new machine)"), "{}", d.report);
        assert!(d.report.contains("% roofline]"), "{}", d.report);
    }

    fn sample_v3(int8_ips: f64, gflops_256: f64) -> String {
        format!(
            r#"{{
  "schema": "cq-bench-kernels/v3",
  "pr": 9,
  "scale": "quick",
  "unix_secs": 1,
  "machine": {{"os": "linux", "arch": "x86_64", "cpu": "TestCpu", "threads": 8,
               "threads_effective": 4, "simd": "avx2"}},
  "roofline": {{"peak_gflops": 120.0, "stream_gbs": 18.0}},
  "kernels": [
    {{"kernel": "matmul", "m": 256, "n": 256, "k": 256, "iters": 9,
      "gflops": {gflops_256}, "ref_gflops": 15.0, "speedup": 2.4,
      "ai": 42.7, "roofline_pct": 30.0}},
    {{"kernel": "matmul_i8", "m": 256, "n": 256, "k": 256, "iters": 9,
      "gflops": 80.0, "ref_gflops": 25.0, "speedup": 3.2,
      "ai": 63.0, "roofline_pct": 110.0}}
  ],
  "int8_encoders": [
    {{"arch": "ResNet18", "n": 128, "f32_imgs_per_sec": 1100.0,
      "int8_imgs_per_sec": {int8_ips}, "ratio": 0.6}}
  ],
  "pilot": {{"steps": 2, "steps_per_sec": 150.0}}
}}"#
        )
    }

    #[test]
    fn parse_bench_accepts_v3_and_requires_int8_encoders() {
        let report = parse_bench(&sample_v3(660.0, 36.0)).expect("valid v3 report");
        assert_eq!(report.pr, 9);
        // v3 keeps the v2 fingerprint format so same-machine v2-vs-v3
        // diffs still hard-gate.
        assert_eq!(report.machine, "linux/x86_64/TestCpu/4t/avx2");
        assert_eq!(report.int8_encoders.len(), 1);
        assert_eq!(report.int8_encoders[0].arch, "ResNet18");
        // i8 points may exceed 100% of the *FP* roofline; only > 0 is
        // required.
        assert!(report.kernels.iter().any(|p| p.kernel == "matmul_i8"));

        let missing = sample_v3(660.0, 36.0).replace("\"int8_encoders\"", "\"int8_encoderz\"");
        assert!(parse_bench(&missing).unwrap_err().contains("int8_encoders"));
        let bad_ips = sample_v3(-1.0, 36.0);
        assert!(parse_bench(&bad_ips).unwrap_err().contains("throughput"));
    }

    #[test]
    fn v2_vs_v3_same_machine_still_gates_shared_kernels() {
        // The fingerprint format did not change in v3, so the shared
        // kernel grid stays hard-gated across the schema bump.
        let old = parse_bench(&sample_v2(36.0, "avx2")).unwrap();
        let new = parse_bench(&sample_v3(660.0, 20.0)).unwrap(); // matmul -44.4%
        let d = diff_bench(&old, &new, 25.0);
        assert!(!d.machine_mismatch);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].contains("matmul 256x256x256"));
        // Encoder points are new-only here: reported, never failed.
        assert!(d.report.contains("int8 ResNet18 n=128"), "{}", d.report);
    }

    #[test]
    fn v3_vs_v3_gates_int8_encoder_throughput() {
        let old = parse_bench(&sample_v3(660.0, 36.0)).unwrap();
        let ok = parse_bench(&sample_v3(600.0, 36.0)).unwrap(); // -9.1%
        let bad = parse_bench(&sample_v3(300.0, 36.0)).unwrap(); // -54.5%
        assert!(diff_bench(&old, &ok, 25.0).regressions.is_empty());
        let d = diff_bench(&old, &bad, 25.0);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].contains("int8 ResNet18"), "{}", d.report);
    }

    /// v3 artifact with the optional PR-10 fusion sections attached.
    fn sample_v3_fusion(fused_gbs: f64, fused_sps: f64) -> String {
        let base = sample_v3(660.0, 36.0);
        let fusion = format!(
            r#"  "ew_chains": [
    {{"chain": "bn_add3_relu_q8", "elems": 4194304, "groups": 5, "iters": 3,
      "fused_gbs": {fused_gbs}, "unfused_gbs": 10.0, "speedup": 1.5}}
  ],
  "fusion_pilots": [
    {{"pipeline": "CqA", "steps": 2, "fused_steps_per_sec": {fused_sps},
      "unfused_steps_per_sec": 1.0}}
  ],
  "pilot""#
        );
        base.replace("  \"pilot\"", &fusion)
    }

    #[test]
    fn parse_bench_validates_optional_fusion_sections() {
        let report = parse_bench(&sample_v3_fusion(15.0, 1.2)).expect("valid report");
        assert_eq!(report.ew_chains.len(), 1);
        assert_eq!(report.ew_chains[0].groups, 5);
        assert!((report.ew_chains[0].speedup() - 1.5).abs() < 1e-9);
        assert_eq!(report.fusion_pilots.len(), 1);
        assert_eq!(report.fusion_pilots[0].pipeline, "CqA");

        // Sections are optional: the plain v3 sample still parses with
        // empty vectors.
        let plain = parse_bench(&sample_v3(660.0, 36.0)).expect("plain v3");
        assert!(plain.ew_chains.is_empty() && plain.fusion_pilots.is_empty());

        // But when present, entries must be well-formed and positive.
        assert!(parse_bench(&sample_v3_fusion(-1.0, 1.2))
            .unwrap_err()
            .contains("throughput"));
        assert!(parse_bench(&sample_v3_fusion(15.0, 0.0))
            .unwrap_err()
            .contains("throughput"));
        let bad_groups = sample_v3_fusion(15.0, 1.2).replace("\"groups\": 5", "\"groups\": 0");
        assert!(parse_bench(&bad_groups).unwrap_err().contains("groups"));
    }

    #[test]
    fn diff_gates_fused_chain_and_pilot_throughput() {
        let old = parse_bench(&sample_v3_fusion(15.0, 1.2)).unwrap();
        let ok = parse_bench(&sample_v3_fusion(13.0, 1.1)).unwrap(); // within 25%
        let bad = parse_bench(&sample_v3_fusion(7.0, 0.5)).unwrap(); // both > -50%
        assert!(diff_bench(&old, &ok, 25.0).regressions.is_empty());
        let d = diff_bench(&old, &bad, 25.0);
        assert_eq!(d.regressions.len(), 2, "{}", d.report);
        assert!(d
            .regressions
            .iter()
            .any(|r| r.contains("ew bn_add3_relu_q8")));
        assert!(d.regressions.iter().any(|r| r.contains("pilot CqA")));
        // New-only sections (old artifact predates PR 10) report, never gate.
        let pre = parse_bench(&sample_v3(660.0, 36.0)).unwrap();
        let d = diff_bench(&pre, &bad, 25.0);
        assert!(d.regressions.is_empty());
        assert!(d.report.contains("no old measurement"), "{}", d.report);
    }

    #[test]
    fn diff_never_fails_across_machines() {
        let old = parse_bench(&sample(36.0, "CpuA")).unwrap();
        let new = parse_bench(&sample(10.0, "CpuB")).unwrap();
        let d = diff_bench(&old, &new, 25.0);
        assert!(d.machine_mismatch);
        assert!(d.regressions.is_empty());
        assert!(d.report.contains("gate disarmed"));
    }
}
