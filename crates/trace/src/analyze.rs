//! The three cq-trace analyses: `summarize`, `check`, and `diff`.

use std::collections::BTreeMap;

use cq_obs::health::{HealthEngine, Verdict};

use crate::record::Record;
use crate::tree::{build_span_tree, render_span_tree};

fn fmt_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        format!("{n}")
    }
}

/// Renders the full offline summary: span tree with self/total time,
/// counter totals with FLOP-rate reconciliation, histogram and metric
/// tables, warnings, and any recorded health verdicts.
pub fn summarize(records: &[Record]) -> String {
    let mut out = String::new();

    let roots = build_span_tree(records);
    if !roots.is_empty() {
        out.push_str("== span tree (total / self / calls / share) ==\n");
        out.push_str(&render_span_tree(&roots));
    }

    // Counters: last total wins (flush emits cumulative totals).
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    for rec in records {
        if let Record::Counter { name, total } = rec {
            counters.insert(name, *total);
        }
    }
    if !counters.is_empty() {
        out.push_str("== counters ==\n");
        for (name, total) in &counters {
            out.push_str(&format!(
                "  {name:<36} {:>12} ({total})\n",
                fmt_count(*total)
            ));
        }
        // FLOP reconciliation: every *.flops counter against wall time of
        // the span forest, so a kernel regression shows up as a rate drop
        // even when per-span timings are noisy.
        let wall_ns: u64 = roots.iter().map(|r| r.total_ns).sum();
        let flops: u64 = counters
            .iter()
            .filter(|(n, _)| n.ends_with(".flops"))
            .map(|(_, t)| *t)
            .sum();
        if flops > 0 && wall_ns > 0 {
            out.push_str(&format!(
                "  flop reconciliation: {} FLOPs over {:.3}s wall -> {:.3} GFLOP/s\n",
                fmt_count(flops),
                wall_ns as f64 / 1e9,
                flops as f64 / wall_ns as f64,
            ));
        }
    }

    let hists = hist_buckets(records);
    for (name, buckets) in &hists {
        let total: u64 = buckets.values().sum();
        out.push_str(&format!("== histogram: {name} ({total} obs) ==\n"));
        let max = buckets.values().copied().max().unwrap_or(1).max(1);
        for (bucket, count) in buckets {
            let bar = "#".repeat(((count * 30) / max) as usize);
            out.push_str(&format!(
                "  {bucket:>6}  {count:>8}  {bar:<30} {:.1}%\n",
                100.0 * *count as f64 / total.max(1) as f64
            ));
        }
    }

    let metrics = metric_series(records);
    if !metrics.is_empty() {
        out.push_str("== metrics ==\n");
        for (name, values) in &metrics {
            let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
            let nonfinite = values.len() - finite.len();
            let (min, max, sum) = finite
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY, 0.0), |(lo, hi, s), v| {
                    (lo.min(*v), hi.max(*v), s + v)
                });
            let mean = if finite.is_empty() {
                f64::NAN
            } else {
                sum / finite.len() as f64
            };
            out.push_str(&format!(
                "  {name:<28} n={:<6} last={:<12.5} mean={mean:<12.5} min={min:<12.5} max={max:.5}",
                values.len(),
                values.last().copied().unwrap_or(f64::NAN),
            ));
            if nonfinite > 0 {
                out.push_str(&format!("  ({nonfinite} non-finite)"));
            }
            out.push('\n');
        }
    }

    let warnings: Vec<&str> = records
        .iter()
        .filter_map(|r| match r {
            Record::Warn { message } => Some(message.as_str()),
            _ => None,
        })
        .collect();
    if !warnings.is_empty() {
        out.push_str("== warnings ==\n");
        for w in warnings {
            out.push_str(&format!("  {w}\n"));
        }
    }

    out.push_str(&render_recorded_health(records));
    out
}

fn hist_buckets(records: &[Record]) -> BTreeMap<&str, BTreeMap<i64, u64>> {
    let mut hists: BTreeMap<&str, BTreeMap<i64, u64>> = BTreeMap::new();
    for rec in records {
        if let Record::Hist { name, value } = rec {
            let bucket = if value.is_finite() {
                value.round() as i64
            } else {
                i64::MIN
            };
            *hists.entry(name).or_default().entry(bucket).or_insert(0) += 1;
        }
    }
    hists
}

fn metric_series(records: &[Record]) -> BTreeMap<&str, Vec<f64>> {
    let mut metrics: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for rec in records {
        if let Record::Metric { name, value, .. } = rec {
            metrics.entry(name).or_default().push(*value);
        }
    }
    metrics
}

fn render_recorded_health(records: &[Record]) -> String {
    let mut out = String::new();
    let health: Vec<&Record> = records
        .iter()
        .filter(|r| matches!(r, Record::Health { .. }))
        .collect();
    if !health.is_empty() {
        out.push_str("== recorded health verdicts ==\n");
        for rec in health {
            if let Record::Health {
                detector,
                verdict,
                step,
                message,
                ..
            } = rec
            {
                out.push_str(&format!(
                    "  [{verdict:<8}] {detector:<16} step {step:<6} {message}\n"
                ));
            }
        }
    }
    out
}

/// Result of [`check`]: the rendered report and the worst verdict found.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Human-readable verdict report.
    pub report: String,
    /// Worst verdict across replayed rules and recorded online verdicts.
    pub worst: Verdict,
}

/// Re-runs the online health rules offline: every metric record is fed
/// through a fresh [`HealthEngine`] (default thresholds), and recorded
/// online verdicts are folded in, so `check` catches problems whether or
/// not the run had `CQ_OBS_HEALTH` enabled.
pub fn check(records: &[Record]) -> CheckResult {
    let mut engine = HealthEngine::default();
    for rec in records {
        if let Record::Metric { name, step, value } = rec {
            engine.observe(name, *step, *value);
        }
    }
    let mut worst = engine.worst();
    let mut report = String::new();
    if engine.log().is_empty() {
        report.push_str("offline replay: all health rules passed\n");
    } else {
        report.push_str("offline replay verdicts:\n");
        for ev in engine.log() {
            report.push_str(&format!(
                "  [{:<8}] {:<16} step {:<6} {}\n",
                ev.verdict, ev.detector, ev.step, ev.message
            ));
        }
    }
    for rec in records {
        if let Record::Health { verdict, .. } = rec {
            if let Some(v) = Verdict::parse(verdict) {
                worst = worst.max(v);
            }
        }
    }
    let recorded = render_recorded_health(records);
    if !recorded.is_empty() {
        report.push_str(&recorded);
    }
    report.push_str(&format!("worst verdict: {worst}\n"));
    CheckResult { report, worst }
}

/// Result of [`diff`]: rendered comparison plus the failing lines.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffResult {
    /// Human-readable comparison table.
    pub report: String,
    /// One line per regression beyond the threshold (empty = pass).
    pub regressions: Vec<String>,
}

/// The pool counters that describe the execution environment rather
/// than the workload: worker busy/park time and threads spawned
/// legitimately differ between runs at different `CQ_THREADS`, so
/// [`diff`] reports them without gating on them. The *workload* pool
/// counters — `pool.jobs` and `pool.chunks`, which the deterministic
/// runtime derives from problem sizes alone — are NOT in this list and
/// gate like any other workload counter: a drift there means the chunk
/// grid changed, which is exactly the determinism break the diff
/// exists to catch.
const SCHED_COUNTERS: [&str; 3] = ["pool.busy_ns", "pool.park_ns", "pool.workers_spawned"];

/// Counters that accumulate wall-clock time rather than workload: the
/// graph executor's elementwise-pass timing telemetry varies with
/// hardware, thread count, and fusion mode, so [`diff`] reports it
/// without gating. The workload counters from the same subsystem
/// (`graph.fused_chains`, `graph.unfused_fallbacks`,
/// `fusion.pass_elided_bytes`) are deterministic per mode and gate
/// normally — cross-mode comparisons exempt them explicitly via
/// [`diff_with_exemptions`].
const TIMING_COUNTERS: [&str; 1] = ["graph.ew_exec_ns"];

/// Metrics measuring wall-clock throughput rather than numerical state:
/// like span times they vary with hardware and thread count, so the
/// metric-series gate reports but does not fail on them (span timing
/// regressions are caught by the span section with its noise floor).
const TIMING_METRIC_SUFFIX: &str = "_per_sec";

/// Metric series derived from wall-clock or process-environment
/// measurements rather than the deterministic numerical state:
/// `pool.utilization` (busy time over wall time), `pool.chunk_imbalance`
/// (claim spread, a function of worker scheduling), and the `mem.*`
/// series (peak RSS and allocator call deltas, which depend on the
/// allocator, thread count, and what else the process has done). All
/// report without gating.
const TIMING_METRICS: [&str; 2] = ["pool.utilization", "pool.chunk_imbalance"];

/// Prefix for the process-memory metric series (see [`TIMING_METRICS`]).
const MEM_METRIC_PREFIX: &str = "mem.";

/// Checkpoint lifecycle telemetry (`ckpt.*` spans and counters) only
/// exists in runs that save or restore a checkpoint. An uninterrupted
/// reference trace has none of it, so a kill-and-resume trace diffed
/// against the reference would show an infinite delta on `ckpt.load` /
/// `ckpt.saved` no matter how exact the resume was. [`diff`] reports
/// these but never gates on them; the actual resume guarantees — loss
/// series, bit-width histograms, workload counters — stay strictly
/// gated.
const CKPT_PREFIX: &str = "ckpt.";

/// Compares two traces for CI gating. Span times regress when trace B is
/// slower than trace A by more than `fail_over_pct` percent (spans whose
/// larger total is under `min_ns` are ignored as timing noise; speedups
/// never fail). Counters fail on a relative change beyond the threshold
/// in either direction — except the scheduling telemetry listed in
/// [`SCHED_COUNTERS`], which is reported but never gated; `pool.jobs`
/// and `pool.chunks` are thread-count-invariant workload counters and
/// gate normally. Metric series (losses etc.) fail on length mismatch
/// or per-step relative drift beyond the threshold — with the
/// deterministic parallel runtime, same-seed runs must agree at any
/// thread count; throughput metrics (`*_per_sec`), the pool
/// utilization/imbalance series, and `mem.*` are timing/environment,
/// reported but not gated (see [`TIMING_METRICS`]). Histogram
/// distributions (e.g. sampled bit-widths) fail when the total-variation
/// distance between the bucket shares exceeds `fail_over_pct` percentage
/// points. Checkpoint lifecycle telemetry (`ckpt.*` spans and counters)
/// is reported but never gated in either section (see [`CKPT_PREFIX`]):
/// it only exists on the resumed side of a kill-and-resume comparison.
pub fn diff(a: &[Record], b: &[Record], fail_over_pct: f64, min_ns: u64) -> DiffResult {
    diff_with_exemptions(a, b, fail_over_pct, min_ns, &[])
}

/// [`diff`] with caller-supplied name-prefix exemptions: any span,
/// counter, metric series, or histogram whose name starts with one of
/// `exempt_prefixes` is reported but never gated. This is how CI diffs
/// traces across configurations that legitimately disagree on a known
/// telemetry family — e.g. a `CQ_FUSION=on` vs `off` comparison exempts
/// `graph.` and `fusion.` (chain accounting differs by construction)
/// while every numerical series still gates bitwise-tight. Exposed on
/// the CLI as repeatable `cq-trace diff --exempt-prefix <p>` flags.
pub fn diff_with_exemptions(
    a: &[Record],
    b: &[Record],
    fail_over_pct: f64,
    min_ns: u64,
    exempt_prefixes: &[String],
) -> DiffResult {
    let mut report = String::new();
    let mut regressions = Vec::new();
    let prefix_exempt = |name: &str| exempt_prefixes.iter().any(|p| name.starts_with(p.as_str()));

    // --- span times, flattened per name ---
    let totals = |records: &[Record]| -> BTreeMap<String, u64> {
        let mut m: BTreeMap<String, u64> = BTreeMap::new();
        for rec in records {
            if let Record::Span { name, ns, .. } = rec {
                *m.entry(name.clone()).or_insert(0) += ns;
            }
        }
        m
    };
    let (ta, tb) = (totals(a), totals(b));
    let mut span_names: Vec<&String> = ta.keys().chain(tb.keys()).collect();
    span_names.sort_unstable();
    span_names.dedup();
    report.push_str(&format!(
        "== span time diff (fail over +{fail_over_pct}%, noise floor {:.1}ms) ==\n",
        min_ns as f64 / 1e6
    ));
    for name in span_names {
        let (va, vb) = (
            ta.get(name).copied().unwrap_or(0),
            tb.get(name).copied().unwrap_or(0),
        );
        if va.max(vb) < min_ns {
            continue;
        }
        let delta_pct = if va > 0 {
            100.0 * (vb as f64 - va as f64) / va as f64
        } else {
            f64::INFINITY
        };
        let lifecycle = name.starts_with(CKPT_PREFIX);
        let exempted = prefix_exempt(name);
        let failed = !lifecycle && !exempted && delta_pct > fail_over_pct;
        let mark = if failed {
            " REGRESSION"
        } else if lifecycle {
            " (lifecycle, not gated)"
        } else if exempted {
            " (exempt, not gated)"
        } else {
            ""
        };
        report.push_str(&format!(
            "  {name:<36} {:>10.3}ms -> {:>10.3}ms  {delta_pct:>+8.1}%{mark}\n",
            va as f64 / 1e6,
            vb as f64 / 1e6
        ));
        if failed {
            regressions.push(format!("span {name}: {delta_pct:+.1}% time"));
        }
    }

    // --- counters (deterministic: same seed should match closely) ---
    let counters = |records: &[Record]| -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        for rec in records {
            if let Record::Counter { name, total } = rec {
                m.insert(name.clone(), *total);
            }
        }
        m
    };
    let (ca, cb) = (counters(a), counters(b));
    let mut counter_names: Vec<&String> = ca.keys().chain(cb.keys()).collect();
    counter_names.sort_unstable();
    counter_names.dedup();
    if !counter_names.is_empty() {
        report.push_str("== counter diff ==\n");
        for name in counter_names {
            let (va, vb) = (
                ca.get(name).copied().unwrap_or(0),
                cb.get(name).copied().unwrap_or(0),
            );
            let delta_pct = 100.0 * (vb as f64 - va as f64) / (va.max(1) as f64);
            let exempt_mark = if SCHED_COUNTERS.contains(&name.as_str()) {
                Some(" (sched, not gated)")
            } else if TIMING_COUNTERS.contains(&name.as_str()) {
                Some(" (timing, not gated)")
            } else if name.starts_with(CKPT_PREFIX) {
                Some(" (lifecycle, not gated)")
            } else if prefix_exempt(name) {
                Some(" (exempt, not gated)")
            } else {
                None
            };
            let failed = exempt_mark.is_none() && delta_pct.abs() > fail_over_pct;
            let mark = if failed {
                " REGRESSION"
            } else {
                exempt_mark.unwrap_or("")
            };
            report.push_str(&format!(
                "  {name:<36} {va:>14} -> {vb:>14}  {delta_pct:>+8.1}%{mark}\n"
            ));
            if failed {
                regressions.push(format!("counter {name}: {delta_pct:+.1}%"));
            }
        }
    }

    // --- metric series (losses etc.): deterministic runs must agree ---
    let (ma, mb) = (metric_series(a), metric_series(b));
    let mut metric_names: Vec<&str> = ma.keys().chain(mb.keys()).copied().collect();
    metric_names.sort_unstable();
    metric_names.dedup();
    if !metric_names.is_empty() {
        report.push_str("== metric series diff (max per-step drift) ==\n");
        let empty: Vec<f64> = Vec::new();
        for name in metric_names {
            let (sa, sb) = (
                ma.get(name).unwrap_or(&empty),
                mb.get(name).unwrap_or(&empty),
            );
            let timing = name.ends_with(TIMING_METRIC_SUFFIX)
                || TIMING_METRICS.contains(&name)
                || name.starts_with(MEM_METRIC_PREFIX);
            let exempted = prefix_exempt(name);
            if sa.len() != sb.len() {
                // A missing step is structural, not timing noise: gate it
                // even for throughput metrics. Explicit prefix exemptions
                // are stronger — the caller declared the whole family may
                // differ, and an exempted series can exist in one trace
                // only (like ckpt.* does).
                if exempted {
                    report.push_str(&format!(
                        "  {name:<36} length {} -> {}  (exempt, not gated)\n",
                        sa.len(),
                        sb.len()
                    ));
                    continue;
                }
                report.push_str(&format!(
                    "  {name:<36} length {} -> {}  REGRESSION\n",
                    sa.len(),
                    sb.len()
                ));
                regressions.push(format!(
                    "metric {name}: series length {} vs {}",
                    sa.len(),
                    sb.len()
                ));
                continue;
            }
            let drift_pct = sa
                .iter()
                .zip(sb)
                .map(|(va, vb)| match (va.is_finite(), vb.is_finite()) {
                    (true, true) => 100.0 * (vb - va).abs() / va.abs().max(1e-12),
                    // Matching non-finite values (NaN == NaN here) drift 0;
                    // a finite/non-finite mismatch is an unconditional fail.
                    (false, false) => 0.0,
                    _ => f64::INFINITY,
                })
                .fold(0.0f64, f64::max);
            let failed = !timing && !exempted && drift_pct > fail_over_pct;
            let mark = if failed {
                " REGRESSION"
            } else if timing {
                " (timing, not gated)"
            } else if exempted {
                " (exempt, not gated)"
            } else {
                ""
            };
            report.push_str(&format!(
                "  {name:<36} n={:<6} max drift {drift_pct:.4}%{mark}\n",
                sa.len()
            ));
            if failed {
                regressions.push(format!("metric {name}: {drift_pct:.4}% drift"));
            }
        }
    }

    // --- histogram distributions (bit-width shares) ---
    let (ha, hb) = (hist_buckets(a), hist_buckets(b));
    let mut hist_names: Vec<&str> = ha.keys().chain(hb.keys()).copied().collect();
    hist_names.sort_unstable();
    hist_names.dedup();
    if !hist_names.is_empty() {
        report.push_str("== histogram distribution diff (total variation) ==\n");
        let empty = BTreeMap::new();
        for name in hist_names {
            let (da, db) = (
                ha.get(name).unwrap_or(&empty),
                hb.get(name).unwrap_or(&empty),
            );
            let (na, nb) = (
                da.values().sum::<u64>().max(1) as f64,
                db.values().sum::<u64>().max(1) as f64,
            );
            let mut buckets: Vec<&i64> = da.keys().chain(db.keys()).collect();
            buckets.sort_unstable();
            buckets.dedup();
            let tv_pct: f64 = 50.0
                * buckets
                    .iter()
                    .map(|bkt| {
                        let pa = da.get(bkt).copied().unwrap_or(0) as f64 / na;
                        let pb = db.get(bkt).copied().unwrap_or(0) as f64 / nb;
                        (pa - pb).abs()
                    })
                    .sum::<f64>();
            let exempted = prefix_exempt(name);
            let failed = !exempted && tv_pct > fail_over_pct;
            let mark = if failed {
                " REGRESSION"
            } else if exempted {
                " (exempt, not gated)"
            } else {
                ""
            };
            report.push_str(&format!("  {name:<36} TV distance {tv_pct:.2}pp{mark}\n"));
            if failed {
                regressions.push(format!("histogram {name}: TV {tv_pct:.2}pp"));
            }
        }
    }

    if regressions.is_empty() {
        report.push_str("diff: no regressions\n");
    } else {
        report.push_str(&format!("diff: {} regression(s)\n", regressions.len()));
    }
    DiffResult {
        report,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::parse_trace;

    fn metric(name: &str, step: u64, v: f64) -> Record {
        Record::Metric {
            name: name.to_string(),
            step,
            value: v,
        }
    }

    #[test]
    fn summarize_covers_all_sections() {
        let text = concat!(
            "{\"t\":\"span\",\"name\":\"forward\",\"depth\":1,\"ns\":750000}\n",
            "{\"t\":\"span\",\"name\":\"step\",\"depth\":0,\"ns\":1000000}\n",
            "{\"t\":\"counter\",\"name\":\"tensor.matmul.flops\",\"total\":5000000}\n",
            "{\"t\":\"hist\",\"name\":\"quant.bits\",\"v\":4}\n",
            "{\"t\":\"hist\",\"name\":\"quant.bits\",\"v\":8}\n",
            "{\"t\":\"metric\",\"name\":\"train.loss\",\"step\":0,\"v\":2.5}\n",
            "{\"t\":\"metric\",\"name\":\"train.loss\",\"step\":1,\"v\":null}\n",
            "{\"t\":\"warn\",\"msg\":\"odd\"}\n",
            "{\"t\":\"health\",\"detector\":\"nan_sentinel\",\"verdict\":\"critical\",\"step\":1,\"v\":null,\"msg\":\"loss is NaN\"}\n",
        );
        let records = parse_trace(text).expect("valid");
        let out = summarize(&records);
        assert!(out.contains("span tree"), "{out}");
        assert!(out.contains("step"), "{out}");
        assert!(out.contains("flop reconciliation"), "{out}");
        assert!(out.contains("GFLOP/s"), "{out}");
        assert!(out.contains("quant.bits"), "{out}");
        assert!(out.contains("train.loss"), "{out}");
        assert!(out.contains("(1 non-finite)"), "{out}");
        assert!(out.contains("odd"), "{out}");
        assert!(out.contains("recorded health"), "{out}");
    }

    #[test]
    fn check_replays_rules_offline() {
        let healthy: Vec<Record> = (0..10)
            .map(|i| metric(cq_obs::names::TRAIN_LOSS, i, 2.0 - 0.1 * i as f64))
            .collect();
        let res = check(&healthy);
        assert_eq!(res.worst, Verdict::Ok);
        assert!(
            res.report.contains("all health rules passed"),
            "{}",
            res.report
        );

        let mut sick = healthy.clone();
        sick.push(metric(cq_obs::names::TRAIN_LOSS, 10, f64::NAN));
        let res = check(&sick);
        assert_eq!(res.worst, Verdict::Critical);
        assert!(res.report.contains("nan_sentinel"), "{}", res.report);
    }

    #[test]
    fn check_folds_in_recorded_verdicts() {
        let records = vec![Record::Health {
            detector: "collapse_probe".to_string(),
            verdict: "critical".to_string(),
            step: 5,
            value: 0.0,
            message: "collapsed".to_string(),
        }];
        let res = check(&records);
        assert_eq!(res.worst, Verdict::Critical);
    }

    fn span(name: &str, ns: u64) -> Record {
        Record::Span {
            name: name.to_string(),
            depth: 0,
            ns,
        }
    }

    fn counter(name: &str, total: u64) -> Record {
        Record::Counter {
            name: name.to_string(),
            total,
        }
    }

    fn hist(name: &str, v: f64) -> Record {
        Record::Hist {
            name: name.to_string(),
            value: v,
        }
    }

    #[test]
    fn diff_passes_identical_traces_and_flags_regressions() {
        let a = vec![
            span("step", 100_000_000),
            counter("flops", 1000),
            hist("quant.bits", 4.0),
            hist("quant.bits", 8.0),
        ];
        let same = diff(&a, &a, 30.0, 1_000_000);
        assert!(same.regressions.is_empty(), "{:?}", same.regressions);

        // 2x slower span, counter drift, skewed distribution.
        let b = vec![
            span("step", 200_000_000),
            counter("flops", 2000),
            hist("quant.bits", 4.0),
            hist("quant.bits", 4.0),
            hist("quant.bits", 4.0),
            hist("quant.bits", 4.0),
        ];
        let bad = diff(&a, &b, 30.0, 1_000_000);
        assert_eq!(bad.regressions.len(), 3, "{:?}", bad.regressions);
        assert!(bad.report.contains("REGRESSION"), "{}", bad.report);
    }

    #[test]
    fn diff_reports_but_never_gates_pool_counters() {
        // Scheduling telemetry varies wildly across thread counts; a 1-thread
        // vs 4-thread matrix diff must not fail on it. Workload counters with
        // the same relative drift still gate.
        let a = vec![
            counter("pool.busy_ns", 10),
            counter("pool.park_ns", 0),
            counter("pool.workers_spawned", 0),
        ];
        let b = vec![
            counter("pool.busy_ns", 10_000_000),
            counter("pool.park_ns", 5_000_000),
            counter("pool.workers_spawned", 4),
        ];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);
        assert!(res.report.contains("(sched, not gated)"), "{}", res.report);

        let a = vec![counter("tensor.matmul.flops", 10)];
        let b = vec![counter("tensor.matmul.flops", 10_000_000)];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
    }

    #[test]
    fn diff_gates_pool_workload_counters() {
        // pool.jobs / pool.chunks derive from problem sizes alone — the
        // chunk grid is thread-count-independent — so a drift there is a
        // determinism break, not scheduling noise. They must gate like
        // any workload counter.
        let a = vec![counter("pool.jobs", 100), counter("pool.chunks", 800)];
        let same = diff(&a, &a, 30.0, 1_000_000);
        assert!(same.regressions.is_empty(), "{:?}", same.regressions);

        let b = vec![counter("pool.jobs", 100), counter("pool.chunks", 1600)];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
        assert!(
            res.regressions[0].contains("pool.chunks"),
            "{:?}",
            res.regressions
        );
    }

    #[test]
    fn diff_reports_but_never_gates_pool_and_mem_metrics() {
        // Utilization, imbalance, and memory series are wall-clock /
        // environment measurements: hugely different across thread
        // counts and allocators, so value drift never gates. A missing
        // step (series length) still does — the emission schedule is
        // deterministic even when the values are not.
        let a = vec![
            metric("pool.utilization", 0, 0.0),
            metric("pool.chunk_imbalance", 0, 1.0),
            metric("mem.peak_rss_kb", 0, 50_000.0),
            metric("mem.alloc_count", 0, 1_000.0),
        ];
        let b = vec![
            metric("pool.utilization", 0, 0.9),
            metric("pool.chunk_imbalance", 0, 3.5),
            metric("mem.peak_rss_kb", 0, 120_000.0),
            metric("mem.alloc_count", 0, 9_000_000.0),
        ];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);
        assert!(res.report.contains("(timing, not gated)"), "{}", res.report);

        let res = diff(&a, &a[..2], 30.0, 1_000_000);
        assert_eq!(res.regressions.len(), 2, "{:?}", res.regressions);
    }

    #[test]
    fn diff_reports_but_never_gates_ckpt_lifecycle() {
        // A resumed run has ckpt.load / ckpt.save spans and ckpt.* counters
        // that the uninterrupted reference run lacks entirely (0 -> N, an
        // infinite span delta). The kill-and-resume CI gate diffs exactly
        // that shape, so ckpt.* must report without gating.
        let a: Vec<Record> = vec![span("train.step", 100_000_000)];
        let b = vec![
            span("train.step", 100_000_000),
            span("ckpt.load", 50_000_000),
            span("ckpt.save", 50_000_000),
            counter("ckpt.loaded", 1),
            counter("ckpt.saved", 1),
        ];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);
        assert!(
            res.report.contains("ckpt.load") && res.report.contains("(lifecycle, not gated)"),
            "{}",
            res.report
        );

        // A non-ckpt span appearing only in trace B still gates.
        let b = vec![span("train.step", 100_000_000), span("extra", 50_000_000)];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
    }

    #[test]
    fn diff_gates_metric_series_drift_and_length() {
        let a = vec![metric("train.loss", 0, 2.5), metric("train.loss", 1, 2.4)];
        let same = diff(&a, &a, 0.0001, 1_000_000);
        assert!(same.regressions.is_empty(), "{:?}", same.regressions);
        assert!(same.report.contains("metric series"), "{}", same.report);

        // Value drift beyond the threshold on any step fails.
        let b = vec![metric("train.loss", 0, 2.5), metric("train.loss", 1, 2.6)];
        let drift = diff(&a, &b, 0.0001, 1_000_000);
        assert_eq!(drift.regressions.len(), 1, "{:?}", drift.regressions);
        assert!(drift.report.contains("REGRESSION"), "{}", drift.report);

        // A missing step is a length mismatch, flagged unconditionally.
        let short = vec![metric("train.loss", 0, 2.5)];
        let res = diff(&a, &short, 50.0, 1_000_000);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
        assert!(res.report.contains("length"), "{}", res.report);
    }

    #[test]
    fn diff_reports_but_never_gates_throughput_metrics() {
        // images/sec is wall-clock: a 4-thread run is legitimately much
        // faster than a 1-thread run. Value drift must not gate, but a
        // missing step still must.
        let a = vec![metric("train.images_per_sec", 0, 100.0)];
        let b = vec![metric("train.images_per_sec", 0, 400.0)];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);
        assert!(res.report.contains("(timing, not gated)"), "{}", res.report);

        let res = diff(&a, &[], 30.0, 1_000_000);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
    }

    #[test]
    fn diff_reports_but_never_gates_executor_timing_counter() {
        // graph.ew_exec_ns accumulates wall-clock time inside the fused
        // executor: it differs across hardware, thread counts, and fusion
        // modes. The workload counters from the same subsystem still gate.
        let a = vec![counter("graph.ew_exec_ns", 1_000)];
        let b = vec![counter("graph.ew_exec_ns", 900_000_000)];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);
        assert!(res.report.contains("(timing, not gated)"), "{}", res.report);

        let a = vec![counter("graph.fused_chains", 100)];
        let b = vec![counter("graph.fused_chains", 0)];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
    }

    #[test]
    fn diff_exempt_prefixes_silence_only_the_named_family() {
        // The CQ_FUSION=on vs off CI diff: chain accounting flips between
        // fused_chains and unfused_fallbacks (an infinite relative delta),
        // and the ew-chain span is slower unfused. With graph./fusion.
        // exempted those report without gating; a loss drift still fails.
        let a = vec![
            span("graph.ew_chain", 100_000_000),
            counter("graph.fused_chains", 40),
            counter("graph.unfused_fallbacks", 0),
            counter("fusion.pass_elided_bytes", 9_000_000),
            counter("pool.chunks", 800),
            metric("train.loss", 0, 2.5),
        ];
        let b = vec![
            span("graph.ew_chain", 300_000_000),
            counter("graph.fused_chains", 0),
            counter("graph.unfused_fallbacks", 40),
            counter("fusion.pass_elided_bytes", 0),
            counter("pool.chunks", 800),
            metric("train.loss", 0, 2.5),
        ];
        let prefixes = vec!["graph.".to_string(), "fusion.".to_string()];
        let res = diff_with_exemptions(&a, &b, 30.0, 1_000_000, &prefixes);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);
        assert!(res.report.contains("(exempt, not gated)"), "{}", res.report);

        // Same traces without the exemptions: the chain accounting gates.
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(!res.regressions.is_empty(), "{}", res.report);

        // Exemptions never mask numerical drift outside the family.
        let mut b_bad = b.clone();
        b_bad.pop();
        b_bad.push(metric("train.loss", 0, 9.9));
        let res = diff_with_exemptions(&a, &b_bad, 30.0, 1_000_000, &prefixes);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
        assert!(
            res.regressions[0].contains("train.loss"),
            "{:?}",
            res.regressions
        );
    }

    #[test]
    fn diff_exempt_prefixes_cover_metric_length_and_histograms() {
        // An exempted metric family may exist on one side only (length
        // mismatch) and an exempted histogram may skew freely.
        let a = vec![
            metric("fusion.pass_elided_bytes", 0, 9e6),
            hist("graph.chain_len", 4.0),
        ];
        let b: Vec<Record> = vec![hist("graph.chain_len", 2.0)];
        let prefixes = vec!["graph.".to_string(), "fusion.".to_string()];
        let res = diff_with_exemptions(&a, &b, 30.0, 1_000_000, &prefixes);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);

        // Ungated length mismatch still fails without the exemption.
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(!res.regressions.is_empty(), "{}", res.report);
    }

    #[test]
    fn diff_ignores_noise_floor_and_speedups() {
        // Tiny span doubled: below the floor, ignored.
        let a = vec![span("tiny", 1_000), span("big", 100_000_000)];
        let b = vec![span("tiny", 2_000), span("big", 60_000_000)];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);
        assert!(
            !res.report.contains("tiny"),
            "floored span listed: {}",
            res.report
        );
    }
}
