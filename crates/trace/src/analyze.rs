//! The three cq-trace analyses: `summarize`, `check`, and `diff`.

use std::collections::BTreeMap;

use cq_obs::health::{HealthEngine, Verdict};

use crate::record::Record;
use crate::tree::{build_span_tree, render_span_tree};

fn fmt_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        format!("{n}")
    }
}

/// Renders the full offline summary: span tree with self/total time,
/// counter totals with FLOP-rate reconciliation, histogram and metric
/// tables, warnings, and any recorded health verdicts.
pub fn summarize(records: &[Record]) -> String {
    let mut out = String::new();

    let roots = build_span_tree(records);
    if !roots.is_empty() {
        out.push_str("== span tree (total / self / calls / share) ==\n");
        out.push_str(&render_span_tree(&roots));
    }

    // Counters: last total wins (flush emits cumulative totals).
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    for rec in records {
        if let Record::Counter { name, total } = rec {
            counters.insert(name, *total);
        }
    }
    if !counters.is_empty() {
        out.push_str("== counters ==\n");
        for (name, total) in &counters {
            out.push_str(&format!(
                "  {name:<36} {:>12} ({total})\n",
                fmt_count(*total)
            ));
        }
        // FLOP reconciliation: every *.flops counter against wall time of
        // the span forest, so a kernel regression shows up as a rate drop
        // even when per-span timings are noisy.
        let wall_ns: u64 = roots.iter().map(|r| r.total_ns).sum();
        let flops: u64 = counters
            .iter()
            .filter(|(n, _)| n.ends_with(".flops"))
            .map(|(_, t)| *t)
            .sum();
        if flops > 0 && wall_ns > 0 {
            out.push_str(&format!(
                "  flop reconciliation: {} FLOPs over {:.3}s wall -> {:.3} GFLOP/s\n",
                fmt_count(flops),
                wall_ns as f64 / 1e9,
                flops as f64 / wall_ns as f64,
            ));
        }
    }

    let hists = hist_buckets(records);
    for (name, buckets) in &hists {
        let total: u64 = buckets.values().sum();
        out.push_str(&format!("== histogram: {name} ({total} obs) ==\n"));
        let max = buckets.values().copied().max().unwrap_or(1).max(1);
        for (bucket, count) in buckets {
            let bar = "#".repeat(((count * 30) / max) as usize);
            out.push_str(&format!(
                "  {bucket:>6}  {count:>8}  {bar:<30} {:.1}%\n",
                100.0 * *count as f64 / total.max(1) as f64
            ));
        }
    }

    let metrics = metric_series(records);
    if !metrics.is_empty() {
        out.push_str("== metrics ==\n");
        for (name, values) in &metrics {
            let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
            let nonfinite = values.len() - finite.len();
            let (min, max, sum) = finite
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY, 0.0), |(lo, hi, s), v| {
                    (lo.min(*v), hi.max(*v), s + v)
                });
            let mean = if finite.is_empty() {
                f64::NAN
            } else {
                sum / finite.len() as f64
            };
            out.push_str(&format!(
                "  {name:<28} n={:<6} last={:<12.5} mean={mean:<12.5} min={min:<12.5} max={max:.5}",
                values.len(),
                values.last().copied().unwrap_or(f64::NAN),
            ));
            if nonfinite > 0 {
                out.push_str(&format!("  ({nonfinite} non-finite)"));
            }
            out.push('\n');
        }
    }

    let warnings: Vec<&str> = records
        .iter()
        .filter_map(|r| match r {
            Record::Warn { message } => Some(message.as_str()),
            _ => None,
        })
        .collect();
    if !warnings.is_empty() {
        out.push_str("== warnings ==\n");
        for w in warnings {
            out.push_str(&format!("  {w}\n"));
        }
    }

    out.push_str(&render_recorded_health(records));
    out
}

fn hist_buckets(records: &[Record]) -> BTreeMap<&str, BTreeMap<i64, u64>> {
    let mut hists: BTreeMap<&str, BTreeMap<i64, u64>> = BTreeMap::new();
    for rec in records {
        if let Record::Hist { name, value } = rec {
            let bucket = if value.is_finite() {
                value.round() as i64
            } else {
                i64::MIN
            };
            *hists.entry(name).or_default().entry(bucket).or_insert(0) += 1;
        }
    }
    hists
}

fn metric_series(records: &[Record]) -> BTreeMap<&str, Vec<f64>> {
    let mut metrics: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for rec in records {
        if let Record::Metric { name, value, .. } = rec {
            metrics.entry(name).or_default().push(*value);
        }
    }
    metrics
}

fn render_recorded_health(records: &[Record]) -> String {
    let mut out = String::new();
    let health: Vec<&Record> = records
        .iter()
        .filter(|r| matches!(r, Record::Health { .. }))
        .collect();
    if !health.is_empty() {
        out.push_str("== recorded health verdicts ==\n");
        for rec in health {
            if let Record::Health {
                detector,
                verdict,
                step,
                message,
                ..
            } = rec
            {
                out.push_str(&format!(
                    "  [{verdict:<8}] {detector:<16} step {step:<6} {message}\n"
                ));
            }
        }
    }
    out
}

/// Result of [`check`]: the rendered report and the worst verdict found.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Human-readable verdict report.
    pub report: String,
    /// Worst verdict across replayed rules and recorded online verdicts.
    pub worst: Verdict,
}

/// Re-runs the online health rules offline: every metric record is fed
/// through a fresh [`HealthEngine`] (default thresholds), and recorded
/// online verdicts are folded in, so `check` catches problems whether or
/// not the run had `CQ_OBS_HEALTH` enabled.
pub fn check(records: &[Record]) -> CheckResult {
    let mut engine = HealthEngine::default();
    for rec in records {
        if let Record::Metric { name, step, value } = rec {
            engine.observe(name, *step, *value);
        }
    }
    let mut worst = engine.worst();
    let mut report = String::new();
    if engine.log().is_empty() {
        report.push_str("offline replay: all health rules passed\n");
    } else {
        report.push_str("offline replay verdicts:\n");
        for ev in engine.log() {
            report.push_str(&format!(
                "  [{:<8}] {:<16} step {:<6} {}\n",
                ev.verdict, ev.detector, ev.step, ev.message
            ));
        }
    }
    for rec in records {
        if let Record::Health { verdict, .. } = rec {
            if let Some(v) = Verdict::parse(verdict) {
                worst = worst.max(v);
            }
        }
    }
    let recorded = render_recorded_health(records);
    if !recorded.is_empty() {
        report.push_str(&recorded);
    }
    report.push_str(&format!("worst verdict: {worst}\n"));
    CheckResult { report, worst }
}

/// Result of [`diff`]: rendered comparison plus the failing lines.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffResult {
    /// Human-readable comparison table.
    pub report: String,
    /// One line per regression beyond the threshold (empty = pass).
    pub regressions: Vec<String>,
}

/// Compares two traces for CI gating. Span times regress when trace B is
/// slower than trace A by more than `fail_over_pct` percent (spans whose
/// larger total is under `min_ns` are ignored as timing noise; speedups
/// never fail). Counters fail on a relative change beyond the threshold
/// in either direction, and histogram distributions (e.g. sampled
/// bit-widths) fail when the total-variation distance between the bucket
/// shares exceeds `fail_over_pct` percentage points.
pub fn diff(a: &[Record], b: &[Record], fail_over_pct: f64, min_ns: u64) -> DiffResult {
    let mut report = String::new();
    let mut regressions = Vec::new();

    // --- span times, flattened per name ---
    let totals = |records: &[Record]| -> BTreeMap<String, u64> {
        let mut m: BTreeMap<String, u64> = BTreeMap::new();
        for rec in records {
            if let Record::Span { name, ns, .. } = rec {
                *m.entry(name.clone()).or_insert(0) += ns;
            }
        }
        m
    };
    let (ta, tb) = (totals(a), totals(b));
    let mut span_names: Vec<&String> = ta.keys().chain(tb.keys()).collect();
    span_names.sort_unstable();
    span_names.dedup();
    report.push_str(&format!(
        "== span time diff (fail over +{fail_over_pct}%, noise floor {:.1}ms) ==\n",
        min_ns as f64 / 1e6
    ));
    for name in span_names {
        let (va, vb) = (
            ta.get(name).copied().unwrap_or(0),
            tb.get(name).copied().unwrap_or(0),
        );
        if va.max(vb) < min_ns {
            continue;
        }
        let delta_pct = if va > 0 {
            100.0 * (vb as f64 - va as f64) / va as f64
        } else {
            f64::INFINITY
        };
        let mark = if delta_pct > fail_over_pct {
            " REGRESSION"
        } else {
            ""
        };
        report.push_str(&format!(
            "  {name:<36} {:>10.3}ms -> {:>10.3}ms  {delta_pct:>+8.1}%{mark}\n",
            va as f64 / 1e6,
            vb as f64 / 1e6
        ));
        if delta_pct > fail_over_pct {
            regressions.push(format!("span {name}: {delta_pct:+.1}% time"));
        }
    }

    // --- counters (deterministic: same seed should match closely) ---
    let counters = |records: &[Record]| -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        for rec in records {
            if let Record::Counter { name, total } = rec {
                m.insert(name.clone(), *total);
            }
        }
        m
    };
    let (ca, cb) = (counters(a), counters(b));
    let mut counter_names: Vec<&String> = ca.keys().chain(cb.keys()).collect();
    counter_names.sort_unstable();
    counter_names.dedup();
    if !counter_names.is_empty() {
        report.push_str("== counter diff ==\n");
        for name in counter_names {
            let (va, vb) = (
                ca.get(name).copied().unwrap_or(0),
                cb.get(name).copied().unwrap_or(0),
            );
            let delta_pct = 100.0 * (vb as f64 - va as f64) / (va.max(1) as f64);
            let mark = if delta_pct.abs() > fail_over_pct {
                " REGRESSION"
            } else {
                ""
            };
            report.push_str(&format!(
                "  {name:<36} {va:>14} -> {vb:>14}  {delta_pct:>+8.1}%{mark}\n"
            ));
            if delta_pct.abs() > fail_over_pct {
                regressions.push(format!("counter {name}: {delta_pct:+.1}%"));
            }
        }
    }

    // --- histogram distributions (bit-width shares) ---
    let (ha, hb) = (hist_buckets(a), hist_buckets(b));
    let mut hist_names: Vec<&str> = ha.keys().chain(hb.keys()).copied().collect();
    hist_names.sort_unstable();
    hist_names.dedup();
    if !hist_names.is_empty() {
        report.push_str("== histogram distribution diff (total variation) ==\n");
        let empty = BTreeMap::new();
        for name in hist_names {
            let (da, db) = (
                ha.get(name).unwrap_or(&empty),
                hb.get(name).unwrap_or(&empty),
            );
            let (na, nb) = (
                da.values().sum::<u64>().max(1) as f64,
                db.values().sum::<u64>().max(1) as f64,
            );
            let mut buckets: Vec<&i64> = da.keys().chain(db.keys()).collect();
            buckets.sort_unstable();
            buckets.dedup();
            let tv_pct: f64 = 50.0
                * buckets
                    .iter()
                    .map(|bkt| {
                        let pa = da.get(bkt).copied().unwrap_or(0) as f64 / na;
                        let pb = db.get(bkt).copied().unwrap_or(0) as f64 / nb;
                        (pa - pb).abs()
                    })
                    .sum::<f64>();
            let mark = if tv_pct > fail_over_pct {
                " REGRESSION"
            } else {
                ""
            };
            report.push_str(&format!("  {name:<36} TV distance {tv_pct:.2}pp{mark}\n"));
            if tv_pct > fail_over_pct {
                regressions.push(format!("histogram {name}: TV {tv_pct:.2}pp"));
            }
        }
    }

    if regressions.is_empty() {
        report.push_str("diff: no regressions\n");
    } else {
        report.push_str(&format!("diff: {} regression(s)\n", regressions.len()));
    }
    DiffResult {
        report,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::parse_trace;

    fn metric(name: &str, step: u64, v: f64) -> Record {
        Record::Metric {
            name: name.to_string(),
            step,
            value: v,
        }
    }

    #[test]
    fn summarize_covers_all_sections() {
        let text = concat!(
            "{\"t\":\"span\",\"name\":\"forward\",\"depth\":1,\"ns\":750000}\n",
            "{\"t\":\"span\",\"name\":\"step\",\"depth\":0,\"ns\":1000000}\n",
            "{\"t\":\"counter\",\"name\":\"tensor.matmul.flops\",\"total\":5000000}\n",
            "{\"t\":\"hist\",\"name\":\"quant.bits\",\"v\":4}\n",
            "{\"t\":\"hist\",\"name\":\"quant.bits\",\"v\":8}\n",
            "{\"t\":\"metric\",\"name\":\"train.loss\",\"step\":0,\"v\":2.5}\n",
            "{\"t\":\"metric\",\"name\":\"train.loss\",\"step\":1,\"v\":null}\n",
            "{\"t\":\"warn\",\"msg\":\"odd\"}\n",
            "{\"t\":\"health\",\"detector\":\"nan_sentinel\",\"verdict\":\"critical\",\"step\":1,\"v\":null,\"msg\":\"loss is NaN\"}\n",
        );
        let records = parse_trace(text).expect("valid");
        let out = summarize(&records);
        assert!(out.contains("span tree"), "{out}");
        assert!(out.contains("step"), "{out}");
        assert!(out.contains("flop reconciliation"), "{out}");
        assert!(out.contains("GFLOP/s"), "{out}");
        assert!(out.contains("quant.bits"), "{out}");
        assert!(out.contains("train.loss"), "{out}");
        assert!(out.contains("(1 non-finite)"), "{out}");
        assert!(out.contains("odd"), "{out}");
        assert!(out.contains("recorded health"), "{out}");
    }

    #[test]
    fn check_replays_rules_offline() {
        let healthy: Vec<Record> = (0..10)
            .map(|i| metric(cq_obs::names::TRAIN_LOSS, i, 2.0 - 0.1 * i as f64))
            .collect();
        let res = check(&healthy);
        assert_eq!(res.worst, Verdict::Ok);
        assert!(
            res.report.contains("all health rules passed"),
            "{}",
            res.report
        );

        let mut sick = healthy.clone();
        sick.push(metric(cq_obs::names::TRAIN_LOSS, 10, f64::NAN));
        let res = check(&sick);
        assert_eq!(res.worst, Verdict::Critical);
        assert!(res.report.contains("nan_sentinel"), "{}", res.report);
    }

    #[test]
    fn check_folds_in_recorded_verdicts() {
        let records = vec![Record::Health {
            detector: "collapse_probe".to_string(),
            verdict: "critical".to_string(),
            step: 5,
            value: 0.0,
            message: "collapsed".to_string(),
        }];
        let res = check(&records);
        assert_eq!(res.worst, Verdict::Critical);
    }

    fn span(name: &str, ns: u64) -> Record {
        Record::Span {
            name: name.to_string(),
            depth: 0,
            ns,
        }
    }

    fn counter(name: &str, total: u64) -> Record {
        Record::Counter {
            name: name.to_string(),
            total,
        }
    }

    fn hist(name: &str, v: f64) -> Record {
        Record::Hist {
            name: name.to_string(),
            value: v,
        }
    }

    #[test]
    fn diff_passes_identical_traces_and_flags_regressions() {
        let a = vec![
            span("step", 100_000_000),
            counter("flops", 1000),
            hist("quant.bits", 4.0),
            hist("quant.bits", 8.0),
        ];
        let same = diff(&a, &a, 30.0, 1_000_000);
        assert!(same.regressions.is_empty(), "{:?}", same.regressions);

        // 2x slower span, counter drift, skewed distribution.
        let b = vec![
            span("step", 200_000_000),
            counter("flops", 2000),
            hist("quant.bits", 4.0),
            hist("quant.bits", 4.0),
            hist("quant.bits", 4.0),
            hist("quant.bits", 4.0),
        ];
        let bad = diff(&a, &b, 30.0, 1_000_000);
        assert_eq!(bad.regressions.len(), 3, "{:?}", bad.regressions);
        assert!(bad.report.contains("REGRESSION"), "{}", bad.report);
    }

    #[test]
    fn diff_ignores_noise_floor_and_speedups() {
        // Tiny span doubled: below the floor, ignored.
        let a = vec![span("tiny", 1_000), span("big", 100_000_000)];
        let b = vec![span("tiny", 2_000), span("big", 60_000_000)];
        let res = diff(&a, &b, 30.0, 1_000_000);
        assert!(res.regressions.is_empty(), "{:?}", res.regressions);
        assert!(
            !res.report.contains("tiny"),
            "floored span listed: {}",
            res.report
        );
    }
}
