//! Timeline analyses over profiled traces: Chrome/Perfetto export and
//! the self-time profile report.
//!
//! Both consume the `Record::Timeline` intervals a `CQ_PROF=1` run
//! stages through cq-obs (see `cq_obs::prof`): closed `[start, start +
//! dur)` nanosecond intervals tagged with a category (`span` for scope
//! timings, `pool` for worker busy/park stretches) and a dense
//! process-local thread id.
//!
//! - [`export_chrome_trace`] renders the intervals as Chrome trace event
//!   format JSON (`"ph":"X"` complete events), loadable in
//!   `chrome://tracing` and <https://ui.perfetto.dev>.
//! - [`profile`] reconstructs per-thread span nesting to rank spans by
//!   *self* time (total minus time inside child spans — the number that
//!   says where optimisation effort goes), and attributes worker-pool
//!   utilization to each phase (top-level and depth-1 span names) by
//!   intersecting `pool.busy` intervals with the phase's wall intervals.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::record::Record;

/// One timeline interval borrowed out of a record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval<'a> {
    name: &'a str,
    cat: &'a str,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
}

fn intervals(records: &[Record]) -> Vec<Interval<'_>> {
    records
        .iter()
        .filter_map(|r| match r {
            Record::Timeline {
                name,
                cat,
                tid,
                start_ns,
                dur_ns,
            } => Some(Interval {
                name,
                cat,
                tid: *tid,
                start_ns: *start_ns,
                end_ns: start_ns.saturating_add(*dur_ns),
            }),
            _ => None,
        })
        .collect()
}

/// Escapes `s` as a JSON string literal onto `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the trace's timeline intervals as Chrome trace event format
/// JSON (the `chrome://tracing` / Perfetto "JSON trace" flavour): one
/// complete event (`"ph":"X"`) per interval with microsecond `ts`/`dur`
/// (fractional, so nanosecond precision survives), all under `pid` 1
/// with the recorded thread id as `tid`, plus `thread_name` metadata so
/// lanes are labelled. Errors when the trace carries no timeline
/// records (i.e. was recorded without `CQ_PROF`).
pub fn export_chrome_trace(records: &[Record]) -> Result<String, String> {
    let ivs = intervals(records);
    if ivs.is_empty() {
        return Err(
            "trace has no timeline records; record it with CQ_PROF=1 (and CQ_OBS set)".to_string(),
        );
    }
    let tids: BTreeSet<u64> = ivs.iter().map(|iv| iv.tid).collect();
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    // Lane labels first. Thread ids are assigned in first-use order by
    // the profiler; which OS thread got which id is run-dependent, so
    // the label only echoes the id.
    for (i, tid) in tids.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"thread {tid}\"}}}}",
            if i == 0 { "" } else { ",\n" }
        );
    }
    for iv in &ivs {
        out.push_str(",\n");
        out.push_str("{\"ph\":\"X\",\"pid\":1,");
        let _ = write!(out, "\"tid\":{},", iv.tid);
        out.push_str("\"name\":");
        push_json_str(&mut out, iv.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, iv.cat);
        // ts/dur are microseconds in the trace event format; emit three
        // decimals to keep the nanosecond resolution.
        let _ = write!(
            out,
            ",\"ts\":{}.{:03},\"dur\":{}.{:03}}}",
            iv.start_ns / 1000,
            iv.start_ns % 1000,
            (iv.end_ns - iv.start_ns) / 1000,
            (iv.end_ns - iv.start_ns) % 1000
        );
    }
    out.push_str("\n]}\n");
    Ok(out)
}

/// Per-span-name aggregate computed from the reconstructed nesting.
#[derive(Debug, Clone, Default, PartialEq)]
struct SpanProfile {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    threads: BTreeSet<u64>,
}

/// One phase (top-level or depth-1 span name) with pool attribution.
#[derive(Debug, Clone, Default, PartialEq)]
struct PhaseProfile {
    depth: usize,
    wall_ns: u64,
    busy_ns: u64,
    intervals: Vec<(u64, u64)>,
}

/// Result of [`profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileResult {
    /// Human-readable report: self-time-ranked span table plus the
    /// per-phase pool utilization section.
    pub report: String,
    /// Overall pool utilization — busy nanoseconds across all workers
    /// divided by `span-forest wall time x executor lanes` — or `None`
    /// when the trace has no `pool.busy` intervals (single-threaded run
    /// or nothing dispatched).
    pub pool_utilization: Option<f64>,
}

/// Reconstructs per-thread span nesting from the timeline and renders
/// the profile report. Span intervals on one thread are properly nested
/// (they come from RAII scopes), so a stack pass over the start-sorted
/// intervals yields each span's parent; self time is total time minus
/// time spent in child spans. Errors when the trace has no timeline
/// records.
pub fn profile(records: &[Record]) -> Result<ProfileResult, String> {
    let ivs = intervals(records);
    if ivs.is_empty() {
        return Err(
            "trace has no timeline records; record it with CQ_PROF=1 (and CQ_OBS set)".to_string(),
        );
    }

    // Partition by thread, splitting span and pool lanes.
    let mut spans_by_tid: BTreeMap<u64, Vec<Interval>> = BTreeMap::new();
    let mut busy: Vec<(u64, u64)> = Vec::new();
    let mut pool_tids: BTreeSet<u64> = BTreeSet::new();
    for iv in &ivs {
        match iv.cat {
            "pool" => {
                pool_tids.insert(iv.tid);
                if iv.name == "pool.busy" {
                    busy.push((iv.start_ns, iv.end_ns));
                }
            }
            _ => spans_by_tid.entry(iv.tid).or_default().push(*iv),
        }
    }
    busy.sort_unstable();

    let mut by_name: BTreeMap<&str, SpanProfile> = BTreeMap::new();
    let mut phases: BTreeMap<&str, PhaseProfile> = BTreeMap::new();
    let mut forest_wall_ns: u64 = 0;
    for (tid, mut spans) in spans_by_tid {
        // Start-sorted, longest-first on ties, so a parent precedes the
        // children that share its start timestamp.
        spans.sort_unstable_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)));
        // Stack entries: (interval, accumulated child time).
        let mut stack: Vec<(Interval, u64)> = Vec::new();
        for iv in spans {
            while let Some((top, child_ns)) = stack.last().copied() {
                if top.end_ns <= iv.start_ns {
                    close_span(&mut by_name, &mut phases, top, child_ns, stack.len() - 1);
                    if stack.len() == 1 {
                        forest_wall_ns += top.end_ns - top.start_ns;
                    }
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some((_, child_ns)) = stack.last_mut() {
                *child_ns += iv.end_ns - iv.start_ns;
            }
            stack.push((iv, 0));
        }
        while let Some((top, child_ns)) = stack.pop() {
            close_span(&mut by_name, &mut phases, top, child_ns, stack.len());
            if stack.is_empty() {
                forest_wall_ns += top.end_ns - top.start_ns;
            }
        }
        let _ = tid;
    }

    // Pool attribution per phase: intersect each phase's wall intervals
    // with the busy intervals of every worker lane.
    let width = pool_tids.len().max(1) as u64;
    let busy_pme = prefix_max_end(&busy);
    for phase in phases.values_mut() {
        phase.busy_ns = overlap_ns(&phase.intervals, &busy, &busy_pme);
    }
    let total_busy: u64 = busy.iter().map(|(s, e)| e - s).sum();
    let pool_utilization = if total_busy > 0 && forest_wall_ns > 0 {
        Some(((total_busy as f64) / (forest_wall_ns as f64 * width as f64)).min(1.0))
    } else {
        None
    };

    // --- render ---
    let mut report = String::new();
    let mut ranked: Vec<(&str, &SpanProfile)> = by_name.iter().map(|(k, v)| (*k, v)).collect();
    ranked.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
    report.push_str("== spans by self time ==\n");
    report.push_str(&format!(
        "  {:<28} {:>8} {:>12} {:>12} {:>7} {:>8}\n",
        "span", "calls", "self", "total", "self%", "threads"
    ));
    let total_self: u64 = ranked.iter().map(|(_, p)| p.self_ns).sum();
    for (name, p) in &ranked {
        report.push_str(&format!(
            "  {:<28} {:>8} {:>12} {:>12} {:>6.1}% {:>8}\n",
            name,
            p.calls,
            fmt_ns(p.self_ns),
            fmt_ns(p.total_ns),
            100.0 * p.self_ns as f64 / total_self.max(1) as f64,
            p.threads.len(),
        ));
    }

    report.push_str("== pool utilization by phase ==\n");
    if busy.is_empty() {
        report.push_str("  no pool.busy intervals (single-threaded run or nothing dispatched)\n");
    } else {
        report.push_str(&format!(
            "  {} executor lane(s) with pool intervals\n",
            pool_tids.len()
        ));
        let mut phase_rows: Vec<(&str, &PhaseProfile)> =
            phases.iter().map(|(k, v)| (*k, v)).collect();
        phase_rows.sort_by(|a, b| a.1.depth.cmp(&b.1.depth).then(a.0.cmp(b.0)));
        for (name, ph) in phase_rows {
            let util = (ph.busy_ns as f64 / (ph.wall_ns.max(1) as f64 * width as f64)).min(1.0);
            report.push_str(&format!(
                "  {:<28} depth {}  wall {:>10}  busy {:>10}  utilization {:.3}\n",
                name,
                ph.depth,
                fmt_ns(ph.wall_ns),
                fmt_ns(ph.busy_ns),
                util
            ));
        }
        if let Some(util) = pool_utilization {
            report.push_str(&format!("  overall pool utilization: {util:.3}\n"));
        }
    }

    Ok(ProfileResult {
        report,
        pool_utilization,
    })
}

fn close_span<'a>(
    by_name: &mut BTreeMap<&'a str, SpanProfile>,
    phases: &mut BTreeMap<&'a str, PhaseProfile>,
    iv: Interval<'a>,
    child_ns: u64,
    depth: usize,
) {
    let dur = iv.end_ns - iv.start_ns;
    let p = by_name.entry(iv.name).or_default();
    p.calls += 1;
    p.total_ns += dur;
    p.self_ns += dur.saturating_sub(child_ns);
    p.threads.insert(iv.tid);
    // Phases: the root spans and their direct children — coarse enough
    // to read, fine enough to attribute the pool to a stage of the run.
    if depth <= 1 {
        let ph = phases.entry(iv.name).or_default();
        ph.depth = depth;
        ph.wall_ns += dur;
        ph.intervals.push((iv.start_ns, iv.end_ns));
    }
}

/// Total overlap between two interval sets, both closed-open `[s, e)`.
/// `b` must be start-sorted; `b_prefix_max_end[i]` must be the maximum
/// end over `b[..=i]` (monotone, so it admits a binary search even
/// though the ends themselves are not sorted — interleaved lanes put a
/// long interval before shorter ones). `a` need not be sorted.
fn overlap_ns(a: &[(u64, u64)], b: &[(u64, u64)], b_prefix_max_end: &[u64]) -> u64 {
    let mut total = 0u64;
    for &(s, e) in a {
        // Busy intervals never overlap within one lane but can across
        // lanes, so a plain sum of intersections is the right measure of
        // "worker-nanoseconds inside this phase". Everything before
        // `from` ends at or before `s`; everything from the first
        // `bs >= e` onward starts too late.
        let from = b_prefix_max_end.partition_point(|&me| me <= s);
        for &(bs, be) in &b[from..] {
            if bs >= e {
                break;
            }
            let (lo, hi) = (bs.max(s), be.min(e));
            if hi > lo {
                total += hi - lo;
            }
        }
    }
    total
}

/// Running maximum of interval ends, the search index [`overlap_ns`]
/// needs.
fn prefix_max_end(b: &[(u64, u64)]) -> Vec<u64> {
    let mut out = Vec::with_capacity(b.len());
    let mut max = 0u64;
    for &(_, e) in b {
        max = max.max(e);
        out.push(max);
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{parse_json, Value};
    use crate::record::parse_trace;

    fn tl(name: &str, cat: &str, tid: u64, start: u64, dur: u64) -> Record {
        Record::Timeline {
            name: name.to_string(),
            cat: cat.to_string(),
            tid,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn export_requires_timeline_records() {
        let plain = vec![Record::Warn {
            message: "x".to_string(),
        }];
        assert!(export_chrome_trace(&plain).unwrap_err().contains("CQ_PROF"));
        assert!(profile(&plain).unwrap_err().contains("CQ_PROF"));
    }

    #[test]
    fn chrome_export_is_valid_json_with_threads_and_events() {
        let records = vec![
            tl("train.step", "span", 0, 1_000, 10_500),
            tl("pool.busy", "pool", 1, 2_000, 3_000),
            tl("pool.park", "pool", 1, 5_000, 1_000),
            tl("pool.busy", "pool", 2, 2_500, 2_500),
        ];
        let json = export_chrome_trace(&records).expect("export");
        // Round-trip through the crate's own JSON parser: valid document.
        let doc = parse_json(&json).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        // 3 thread_name metadata events + 4 complete events.
        assert_eq!(events.len(), 7, "{json}");
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 4);
        // ts/dur are microseconds with fractional ns: 1000ns -> 1.000us.
        let first = complete[0];
        assert_eq!(
            first.get("name").and_then(Value::as_str),
            Some("train.step")
        );
        assert_eq!(first.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(first.get("dur").and_then(Value::as_f64), Some(10.5));
        // Distinct worker lanes survive the export.
        let tids: BTreeSet<i64> = complete
            .iter()
            .filter_map(|e| e.get("tid").and_then(Value::as_f64))
            .map(|t| t as i64)
            .collect();
        assert_eq!(tids.len(), 3);
    }

    #[test]
    fn jsonl_timeline_round_trips_into_export() {
        // The exact line shape the live JsonlSink writes must parse and
        // export (the satellite round-trip guarantee).
        let text = concat!(
            "{\"t\":\"tl\",\"name\":\"train.step\",\"cat\":\"span\",\"tid\":0,\"ts\":0,\"dur\":1000}\n",
            "{\"t\":\"tl\",\"name\":\"pool.busy\",\"cat\":\"pool\",\"tid\":1,\"ts\":100,\"dur\":200}\n",
        );
        let records = parse_trace(text).expect("jsonl parses");
        let json = export_chrome_trace(&records).expect("export");
        assert!(parse_json(&json).is_ok(), "{json}");
    }

    #[test]
    fn profile_ranks_by_self_time_and_nests_correctly() {
        // One thread: outer [0, 100), inner [10, 40) -> outer self 70.
        // Second thread: another `inner` call [0, 50).
        let records = vec![
            tl("outer", "span", 0, 0, 100),
            tl("inner", "span", 0, 10, 30),
            tl("inner", "span", 3, 0, 50),
        ];
        let res = profile(&records).expect("profile");
        let inner_pos = res.report.find("inner").expect("inner listed");
        let outer_pos = res.report.find("outer").expect("outer listed");
        // inner self = 30 + 50 = 80 > outer self = 70: ranked first.
        assert!(inner_pos < outer_pos, "{}", res.report);
        assert!(res.report.contains("no pool.busy"), "{}", res.report);
        assert!(res.pool_utilization.is_none());
    }

    #[test]
    fn profile_attributes_pool_busy_to_phases() {
        // Phase [0, 1000) on the main thread; two workers busy for 400ns
        // each inside it -> utilization 800 / (1000 * 2 lanes) = 0.4.
        let records = vec![
            tl("train.step", "span", 0, 0, 1_000),
            tl("pool.busy", "pool", 1, 100, 400),
            tl("pool.busy", "pool", 2, 200, 400),
        ];
        let res = profile(&records).expect("profile");
        let util = res.pool_utilization.expect("pool ran");
        assert!((util - 0.4).abs() < 1e-9, "utilization {util}");
        assert!(util > 0.0 && util <= 1.0);
        assert!(
            res.report.contains("train.step") && res.report.contains("utilization 0.4"),
            "{}",
            res.report
        );
    }

    #[test]
    fn overlap_clips_to_interval_bounds() {
        // Busy interval extends past the phase on both sides: only the
        // intersection counts.
        let phase = [(100u64, 200u64)];
        let busy = [(0u64, 150u64), (180u64, 400u64)];
        assert_eq!(overlap_ns(&phase, &busy, &prefix_max_end(&busy)), 50 + 20);
        // Utilization can therefore never exceed lanes x wall.
        let records = vec![
            tl("step", "span", 0, 100, 100),
            tl("pool.busy", "pool", 1, 0, 400),
        ];
        let res = profile(&records).expect("profile");
        let util = res.pool_utilization.expect("pool ran");
        assert!(util <= 1.0, "clamped, got {util}");
    }

    #[test]
    fn overlap_handles_interleaved_lane_ends() {
        // Start-sorted busy intervals from interleaved lanes: a long
        // interval on one lane precedes short ones on another, so ends
        // are NOT monotone in start order. Intervals ending before the
        // phase starts must be skipped, not subtracted (u64 underflow).
        let phase = [(500u64, 600u64)];
        let busy = [(0u64, 1000u64), (10u64, 20u64), (550u64, 560u64)];
        assert_eq!(overlap_ns(&phase, &busy, &prefix_max_end(&busy)), 100 + 10);
        // End-to-end: the same shape through profile() must yield a
        // phase busy no larger than lanes x wall.
        let records = vec![
            tl("step", "span", 0, 500, 100),
            tl("pool.busy", "pool", 1, 0, 1000),
            tl("pool.busy", "pool", 2, 10, 10),
            tl("pool.busy", "pool", 2, 550, 10),
        ];
        let res = profile(&records).expect("profile");
        assert!(
            !res.report.contains("18446744"),
            "underflowed busy attribution leaked into the report:\n{}",
            res.report
        );
    }
}
