//! Span-tree reconstruction from the flat JSONL record stream.
//!
//! The JSONL sink writes only `SpanEnd` records, in post-order (children
//! close before their parents), each carrying its per-thread nesting
//! depth. That is enough to rebuild the call tree with a depth-indexed
//! stack: a span ending at depth `d` adopts every node accumulated at
//! depth `d+1` since the previous depth-`d` span closed.
//!
//! Traces from multi-threaded runs interleave depths from different
//! threads; reconstruction still terminates and loses no time, but
//! parent/child attribution is only exact for single-threaded traces
//! (CI's `CQ_THREADS=1` pilot leg; numerical results are identical at
//! any thread count, so a single-threaded trace is representative).

use crate::record::Record;

/// One node of the reconstructed (and name-merged) span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Number of merged scopes.
    pub calls: u64,
    /// Total nanoseconds across merged scopes.
    pub total_ns: u64,
    /// Child spans, merged by name, in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time not attributed to any child (`total - sum(children)`).
    pub fn self_ns(&self) -> u64 {
        let child_ns: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(child_ns)
    }
}

/// Rebuilds the span forest from a record stream and merges sibling
/// nodes that share a name (summing calls and time).
pub fn build_span_tree(records: &[Record]) -> Vec<SpanNode> {
    let mut pending: Vec<Vec<SpanNode>> = Vec::new();
    for rec in records {
        let Record::Span { name, depth, ns } = rec else {
            continue;
        };
        let d = *depth as usize;
        if pending.len() <= d + 1 {
            pending.resize_with(d + 2, Vec::new);
        }
        // Adopt everything deeper than this span. Well-formed traces only
        // have nodes at d+1 here; deeper leftovers (truncated or
        // interleaved traces) are folded in rather than dropped.
        let mut children = Vec::new();
        for level in pending.iter_mut().skip(d + 1) {
            children.append(level);
        }
        pending[d].push(SpanNode {
            name: name.clone(),
            calls: 1,
            total_ns: *ns,
            children,
        });
    }
    // Roots are depth 0; orphans at deeper levels (truncated trace with
    // no enclosing end record) surface as extra roots.
    let mut roots = Vec::new();
    for level in &mut pending {
        roots.append(level);
    }
    merge_by_name(roots)
}

fn merge_by_name(nodes: Vec<SpanNode>) -> Vec<SpanNode> {
    let mut merged: Vec<SpanNode> = Vec::new();
    for node in nodes {
        if let Some(existing) = merged.iter_mut().find(|m| m.name == node.name) {
            existing.calls += node.calls;
            existing.total_ns += node.total_ns;
            existing.children.extend(node.children);
        } else {
            merged.push(node);
        }
    }
    for m in &mut merged {
        m.children = merge_by_name(std::mem::take(&mut m.children));
    }
    merged
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the forest as an indented, flame-style text block: one line
/// per node with total/self time, call count, share of the forest total,
/// and a proportional bar.
pub fn render_span_tree(roots: &[SpanNode]) -> String {
    let forest_total: u64 = roots.iter().map(|r| r.total_ns).sum();
    let mut out = String::new();
    for root in roots {
        render_node(root, 0, forest_total.max(1), &mut out);
    }
    out
}

fn render_node(node: &SpanNode, indent: usize, forest_total: u64, out: &mut String) {
    let pct = 100.0 * node.total_ns as f64 / forest_total as f64;
    let bar_len = ((node.total_ns as u128 * 24) / forest_total as u128) as usize;
    let label = format!("{}{}", "  ".repeat(indent), node.name);
    out.push_str(&format!(
        "  {label:<36} {:>9} total  {:>9} self  {:>7} calls {pct:>6.1}% {}\n",
        fmt_ns(node.total_ns),
        fmt_ns(node.self_ns()),
        node.calls,
        "#".repeat(bar_len),
    ));
    for child in &node.children {
        render_node(child, indent + 1, forest_total, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, depth: u16, ns: u64) -> Record {
        Record::Span {
            name: name.to_string(),
            depth,
            ns,
        }
    }

    #[test]
    fn rebuilds_and_merges_nested_spans() {
        // Two steps, each with forward+backward children, post-order.
        let records = vec![
            span("forward", 1, 30),
            span("backward", 1, 50),
            span("step", 0, 100),
            span("forward", 1, 35),
            span("backward", 1, 45),
            span("step", 0, 100),
        ];
        let roots = build_span_tree(&records);
        assert_eq!(roots.len(), 1);
        let step = &roots[0];
        assert_eq!(step.name, "step");
        assert_eq!(step.calls, 2);
        assert_eq!(step.total_ns, 200);
        assert_eq!(step.self_ns(), 200 - 30 - 50 - 35 - 45);
        assert_eq!(step.children.len(), 2);
        assert_eq!(step.children[0].name, "forward");
        assert_eq!(step.children[0].calls, 2);
        assert_eq!(step.children[0].total_ns, 65);
        assert_eq!(step.children[1].name, "backward");
        assert_eq!(step.children[1].total_ns, 95);
    }

    #[test]
    fn orphaned_deep_spans_survive_truncation() {
        // Trace cut off before the enclosing depth-0 span closed.
        let records = vec![span("inner", 1, 10), span("inner", 1, 12)];
        let roots = build_span_tree(&records);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].calls, 2);
        assert_eq!(roots[0].total_ns, 22);
    }

    #[test]
    fn render_contains_names_and_percentages() {
        let records = vec![span("forward", 1, 75), span("step", 0, 100)];
        let text = render_span_tree(&build_span_tree(&records));
        assert!(text.contains("step"), "{text}");
        assert!(text.contains("forward"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
        // Self time of step excludes the child.
        assert!(text.contains("25ns self"), "{text}");
    }
}
