//! # cq-trace
//!
//! Offline analyzer for cq-obs JSONL traces. Three analyses:
//!
//! - [`analyze::summarize`] — span tree with self/total time and a
//!   flame-style text rendering, counter totals with FLOP-rate
//!   reconciliation, histogram/metric tables, warnings, and recorded
//!   health verdicts.
//! - [`analyze::check`] — re-runs the `cq_obs::health` rules offline
//!   against the metric stream (works on traces from runs that never
//!   enabled the online monitor) and folds in recorded verdicts; the CLI
//!   exits nonzero on a Critical result.
//! - [`analyze::diff`] — CI regression gate between two traces: span
//!   times (with a noise floor; only slowdowns fail), counter totals, and
//!   histogram distributions (total-variation distance on bucket shares,
//!   e.g. the sampled bit-width mix).
//! - [`record::merge`] — stitches the traces of consecutive process
//!   segments of one run (kill-and-resume) into a single trace that
//!   [`analyze::diff`] can gate against an uninterrupted reference.
//!
//! - [`bench::diff_bench`] — CI throughput gate between two
//!   `cq-bench kernels` artifacts (`BENCH_<pr>.json`): flags grid points
//!   whose blocked GFLOP/s dropped beyond a noise threshold, and disarms
//!   itself (report-only) when the artifacts come from different
//!   machines.
//! - [`timeline::export_chrome_trace`] / [`timeline::profile`] — turn
//!   the per-thread timeline intervals of a `CQ_PROF=1` run into a
//!   `chrome://tracing` / Perfetto JSON file, or into a self-time-ranked
//!   span table with worker-pool utilization attributed per phase.
//!
//! The trace parser ([`record`]) is hand-rolled for the flat cq-obs
//! schema, and [`bench`] carries a minimal recursive-descent parser for
//! the nested bench-artifact JSON — no JSON dependency either way, per
//! the repo's offline-only build constraint.

#![deny(missing_docs)]

pub mod analyze;
pub mod bench;
pub mod record;
pub mod timeline;
pub mod tree;

pub use analyze::{check, diff, diff_with_exemptions, summarize, CheckResult, DiffResult};
pub use bench::{diff_bench, parse_bench, BenchDiff, BenchReport, EwChainPoint, FusionPilotPoint};
pub use record::{merge, parse_trace, render_trace, ParseError, Record};
pub use timeline::{export_chrome_trace, profile, ProfileResult};
pub use tree::{build_span_tree, render_span_tree, SpanNode};

/// Reads and parses a trace file.
pub fn load_trace(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}
