//! JSONL trace records and a minimal hand-rolled parser for them.
//!
//! The cq-obs JSONL schema (see `cq_obs::sink`) is flat: one JSON object
//! per line, string/number/null values only, discriminated by `"t"`. A
//! full JSON library would be a dependency for nothing; this parser
//! handles exactly that subset and rejects everything else loudly.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed trace line, mirroring `cq_obs::Event` with owned names
/// (the offline side has no `&'static str` to point at).
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A closed span scope (`{"t":"span",...}`).
    Span {
        /// Span name.
        name: String,
        /// Nesting depth on the emitting thread.
        depth: u16,
        /// Elapsed nanoseconds.
        ns: u64,
    },
    /// A counter total (`{"t":"counter",...}`).
    Counter {
        /// Counter name.
        name: String,
        /// Accumulated total at flush time.
        total: u64,
    },
    /// One histogram observation (`{"t":"hist",...}`).
    Hist {
        /// Histogram name.
        name: String,
        /// Observed value (`null` in the file parses as NaN).
        value: f64,
    },
    /// One step metric (`{"t":"metric",...}`).
    Metric {
        /// Metric name.
        name: String,
        /// Training step.
        step: u64,
        /// Value (`null` in the file parses as NaN).
        value: f64,
    },
    /// A diagnostic warning (`{"t":"warn",...}`).
    Warn {
        /// Message text.
        message: String,
    },
    /// One per-thread profiling timeline interval (`{"t":"tl",...}`).
    /// Present only in traces recorded with `CQ_PROF` enabled.
    Timeline {
        /// Interval name (a span name, `pool.busy`, `pool.park`).
        name: String,
        /// Lane category (`span` or `pool`).
        cat: String,
        /// Dense process-local thread id.
        tid: u64,
        /// Start, nanoseconds since the process profiling epoch.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// An online health verdict (`{"t":"health",...}`).
    Health {
        /// Detector name.
        detector: String,
        /// Verdict spelling (`ok`/`warn`/`critical`).
        verdict: String,
        /// Step of the triggering observation.
        step: u64,
        /// Offending value (`null` parses as NaN).
        value: f64,
        /// Explanation.
        message: String,
    },
}

/// A parse failure, with enough context to locate the bad line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number (0 when unknown).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    Num(f64),
    Null,
}

impl JsonVal {
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            JsonVal::Null => Some(f64::NAN),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn consume(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected '{c}', found '{got}'")),
            None => Err(format!("expected '{c}', found end of line")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        self.skip_ws();
        match self.chars.peek() {
            Some('"') => Ok(JsonVal::Str(self.string()?)),
            Some('n') => {
                for want in "null".chars() {
                    if self.chars.next() != Some(want) {
                        return Err("bad literal (expected null)".to_string());
                    }
                }
                Ok(JsonVal::Null)
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = self.chars.peek() {
                    if !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')) {
                        break;
                    }
                    num.push(c);
                    self.chars.next();
                }
                num.parse::<f64>()
                    .map(JsonVal::Num)
                    .map_err(|e| format!("bad number {num:?}: {e}"))
            }
            other => Err(format!("unsupported JSON value starting at {other:?}")),
        }
    }

    /// Parses one flat `{"k":v,...}` object.
    fn object(&mut self) -> Result<Vec<(String, JsonVal)>, String> {
        self.consume('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.chars.next();
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.consume(':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
        self.skip_ws();
        match self.chars.next() {
            None => Ok(fields),
            Some(c) => Err(format!("trailing content after object: '{c}'")),
        }
    }
}

fn field<'a>(fields: &'a [(String, JsonVal)], key: &str) -> Result<&'a JsonVal, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field \"{key}\""))
}

fn str_field(fields: &[(String, JsonVal)], key: &str) -> Result<String, String> {
    field(fields, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field \"{key}\" is not a string"))
}

fn u64_field(fields: &[(String, JsonVal)], key: &str) -> Result<u64, String> {
    field(fields, key)?
        .as_u64()
        .ok_or_else(|| format!("field \"{key}\" is not a non-negative integer"))
}

fn f64_field(fields: &[(String, JsonVal)], key: &str) -> Result<f64, String> {
    field(fields, key)?
        .as_f64()
        .ok_or_else(|| format!("field \"{key}\" is not a number or null"))
}

impl Record {
    /// Parses one trace line. Empty/whitespace lines are not accepted;
    /// callers skip them before calling.
    pub fn parse(line: &str) -> Result<Record, String> {
        let fields = Cursor::new(line).object()?;
        let t = str_field(&fields, "t")?;
        match t.as_str() {
            "span" => Ok(Record::Span {
                name: str_field(&fields, "name")?,
                depth: u64_field(&fields, "depth")?
                    .try_into()
                    .map_err(|_| "depth out of range".to_string())?,
                ns: u64_field(&fields, "ns")?,
            }),
            "counter" => Ok(Record::Counter {
                name: str_field(&fields, "name")?,
                total: u64_field(&fields, "total")?,
            }),
            "hist" => Ok(Record::Hist {
                name: str_field(&fields, "name")?,
                value: f64_field(&fields, "v")?,
            }),
            "metric" => Ok(Record::Metric {
                name: str_field(&fields, "name")?,
                step: u64_field(&fields, "step")?,
                value: f64_field(&fields, "v")?,
            }),
            "warn" => Ok(Record::Warn {
                message: str_field(&fields, "msg")?,
            }),
            "tl" => Ok(Record::Timeline {
                name: str_field(&fields, "name")?,
                cat: str_field(&fields, "cat")?,
                tid: u64_field(&fields, "tid")?,
                start_ns: u64_field(&fields, "ts")?,
                dur_ns: u64_field(&fields, "dur")?,
            }),
            "health" => Ok(Record::Health {
                detector: str_field(&fields, "detector")?,
                verdict: str_field(&fields, "verdict")?,
                step: u64_field(&fields, "step")?,
                value: f64_field(&fields, "v")?,
                message: str_field(&fields, "msg")?,
            }),
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

/// Escapes `s` as a JSON string literal onto `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a value field the way the cq-obs sink does: non-finite values
/// become `null` (which [`Record::parse`] reads back as NaN).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Record {
    /// Serializes the record as one cq-obs JSONL line (no trailing
    /// newline), the exact inverse of [`Record::parse`] — except that
    /// non-finite values collapse to `null`/NaN, matching what the live
    /// sink emits.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        match self {
            Record::Span { name, depth, ns } => {
                out.push_str("{\"t\":\"span\",\"name\":");
                push_json_str(&mut out, name);
                out.push_str(&format!(",\"depth\":{depth},\"ns\":{ns}}}"));
            }
            Record::Counter { name, total } => {
                out.push_str("{\"t\":\"counter\",\"name\":");
                push_json_str(&mut out, name);
                out.push_str(&format!(",\"total\":{total}}}"));
            }
            Record::Hist { name, value } => {
                out.push_str("{\"t\":\"hist\",\"name\":");
                push_json_str(&mut out, name);
                out.push_str(&format!(",\"v\":{}}}", json_num(*value)));
            }
            Record::Metric { name, step, value } => {
                out.push_str("{\"t\":\"metric\",\"name\":");
                push_json_str(&mut out, name);
                out.push_str(&format!(",\"step\":{step},\"v\":{}}}", json_num(*value)));
            }
            Record::Warn { message } => {
                out.push_str("{\"t\":\"warn\",\"msg\":");
                push_json_str(&mut out, message);
                out.push('}');
            }
            Record::Timeline {
                name,
                cat,
                tid,
                start_ns,
                dur_ns,
            } => {
                out.push_str("{\"t\":\"tl\",\"name\":");
                push_json_str(&mut out, name);
                out.push_str(",\"cat\":");
                push_json_str(&mut out, cat);
                out.push_str(&format!(
                    ",\"tid\":{tid},\"ts\":{start_ns},\"dur\":{dur_ns}}}"
                ));
            }
            Record::Health {
                detector,
                verdict,
                step,
                value,
                message,
            } => {
                out.push_str("{\"t\":\"health\",\"detector\":");
                push_json_str(&mut out, detector);
                out.push_str(",\"verdict\":");
                push_json_str(&mut out, verdict);
                out.push_str(&format!(",\"step\":{step},\"v\":{},", json_num(*value)));
                out.push_str("\"msg\":");
                push_json_str(&mut out, message);
                out.push('}');
            }
        }
        out
    }
}

/// Renders a trace back to `.jsonl` text (one record per line, trailing
/// newline included when non-empty).
pub fn render_trace(records: &[Record]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_jsonl());
        out.push('\n');
    }
    out
}

/// Merges traces from consecutive process segments of one logical run —
/// e.g. a training run killed after saving a checkpoint plus its resumed
/// continuation — into a single trace comparable against an
/// uninterrupted reference with [`crate::diff`].
///
/// Counters need care: the sink emits them as *running process totals at
/// flush time*, so within one file the last total per name wins, and
/// each process segment restarts from zero. The merge takes each file's
/// last total per counter name, sums across files, and appends one
/// combined counter record per name (sorted) after all non-counter
/// records, which are concatenated in file order.
pub fn merge(traces: &[Vec<Record>]) -> Vec<Record> {
    let mut out = Vec::new();
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for trace in traces {
        let mut last: BTreeMap<&str, u64> = BTreeMap::new();
        for rec in trace {
            match rec {
                Record::Counter { name, total } => {
                    last.insert(name, *total);
                }
                other => out.push(other.clone()),
            }
        }
        for (name, total) in last {
            *totals.entry(name.to_string()).or_insert(0) += total;
        }
    }
    for (name, total) in totals {
        out.push(Record::Counter { name, total });
    }
    out
}

/// Parses a whole trace (text of a `.jsonl` file), skipping blank lines.
pub fn parse_trace(text: &str) -> Result<Vec<Record>, ParseError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Record::parse(line) {
            Ok(r) => records.push(r),
            Err(message) => {
                return Err(ParseError {
                    line: idx + 1,
                    message,
                })
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_schema_record() {
        let text = concat!(
            "{\"t\":\"span\",\"name\":\"train.step\",\"depth\":1,\"ns\":42}\n",
            "\n",
            "{\"t\":\"counter\",\"name\":\"tensor.matmul.flops\",\"total\":98304}\n",
            "{\"t\":\"hist\",\"name\":\"quant.bits\",\"v\":8}\n",
            "{\"t\":\"metric\",\"name\":\"train.loss\",\"step\":3,\"v\":4.125}\n",
            "{\"t\":\"metric\",\"name\":\"train.loss\",\"step\":4,\"v\":null}\n",
            "{\"t\":\"warn\",\"msg\":\"a \\\"quoted\\\"\\nmessage\"}\n",
            "{\"t\":\"health\",\"detector\":\"nan_sentinel\",\"verdict\":\"critical\",\"step\":3,\"v\":null,\"msg\":\"loss is NaN\"}\n",
            "{\"t\":\"tl\",\"name\":\"pool.busy\",\"cat\":\"pool\",\"tid\":2,\"ts\":1048576,\"dur\":524288}\n",
        );
        let records = parse_trace(text).expect("valid trace");
        assert_eq!(records.len(), 8);
        assert_eq!(
            records[0],
            Record::Span {
                name: "train.step".to_string(),
                depth: 1,
                ns: 42
            }
        );
        assert_eq!(
            records[1],
            Record::Counter {
                name: "tensor.matmul.flops".to_string(),
                total: 98304
            }
        );
        match &records[4] {
            Record::Metric { step, value, .. } => {
                assert_eq!(*step, 4);
                assert!(value.is_nan(), "null parses as NaN");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &records[5] {
            Record::Warn { message } => assert_eq!(message, "a \"quoted\"\nmessage"),
            other => panic!("unexpected {other:?}"),
        }
        match &records[6] {
            Record::Health {
                detector, verdict, ..
            } => {
                assert_eq!(detector, "nan_sentinel");
                assert_eq!(verdict, "critical");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            records[7],
            Record::Timeline {
                name: "pool.busy".to_string(),
                cat: "pool".to_string(),
                tid: 2,
                start_ns: 1_048_576,
                dur_ns: 524_288,
            }
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = parse_trace("{\"t\":\"span\",\"name\":\"x\",\"depth\":0,\"ns\":1}\nnot json\n")
            .expect_err("second line is bad");
        assert_eq!(err.line, 2);

        assert!(Record::parse("{\"t\":\"mystery\"}").is_err());
        assert!(
            Record::parse("{\"t\":\"span\",\"name\":\"x\"}").is_err(),
            "missing fields"
        );
        assert!(
            Record::parse("{\"t\":\"span\",\"name\":\"x\",\"depth\":0,\"ns\":1} extra").is_err()
        );
        assert!(Record::parse("[1,2]").is_err(), "arrays unsupported");
    }

    #[test]
    fn unicode_escapes_decode() {
        match Record::parse("{\"t\":\"warn\",\"msg\":\"caf\\u00e9\"}") {
            Ok(Record::Warn { message }) => assert_eq!(message, "café"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serialization_round_trips() {
        let records = vec![
            Record::Span {
                name: "train.step".to_string(),
                depth: 1,
                ns: 42,
            },
            Record::Counter {
                name: "ckpt.loaded".to_string(),
                total: 1,
            },
            Record::Hist {
                name: "quant.bits".to_string(),
                value: 8.0,
            },
            Record::Metric {
                name: "train.loss".to_string(),
                step: 3,
                value: 4.125,
            },
            Record::Warn {
                message: "a \"quoted\"\nmessage\twith\u{1}control".to_string(),
            },
            Record::Health {
                detector: "nan_sentinel".to_string(),
                verdict: "critical".to_string(),
                step: 3,
                value: 0.5,
                message: "loss is NaN".to_string(),
            },
            Record::Timeline {
                name: "train.step".to_string(),
                cat: "span".to_string(),
                tid: 0,
                start_ns: 10,
                dur_ns: 90,
            },
        ];
        let text = render_trace(&records);
        let back = parse_trace(&text).expect("rendered trace parses");
        assert_eq!(records, back);

        // Non-finite values collapse to null and parse back as NaN.
        let nan = Record::Metric {
            name: "train.loss".to_string(),
            step: 0,
            value: f64::NAN,
        };
        assert!(nan.to_jsonl().contains("\"v\":null"), "{}", nan.to_jsonl());
        match Record::parse(&nan.to_jsonl()) {
            Ok(Record::Metric { value, .. }) => assert!(value.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_sums_last_counter_totals_and_concatenates_the_rest() {
        // Segment 1 flushes twice (e.g. stop-after-save then process
        // exit): only the last running total per counter counts.
        let seg1 = vec![
            Record::Span {
                name: "train.step".to_string(),
                depth: 0,
                ns: 10,
            },
            Record::Counter {
                name: "tensor.matmul.flops".to_string(),
                total: 100,
            },
            Record::Counter {
                name: "tensor.matmul.flops".to_string(),
                total: 250,
            },
            Record::Counter {
                name: "ckpt.saved".to_string(),
                total: 1,
            },
        ];
        // Segment 2 (resumed process) restarts its totals from zero.
        let seg2 = vec![
            Record::Metric {
                name: "train.loss".to_string(),
                step: 3,
                value: 2.5,
            },
            Record::Counter {
                name: "tensor.matmul.flops".to_string(),
                total: 300,
            },
            Record::Counter {
                name: "ckpt.loaded".to_string(),
                total: 1,
            },
        ];
        let merged = merge(&[seg1, seg2]);
        let counters: Vec<(&str, u64)> = merged
            .iter()
            .filter_map(|r| match r {
                Record::Counter { name, total } => Some((name.as_str(), *total)),
                _ => None,
            })
            .collect();
        assert_eq!(
            counters,
            vec![
                ("ckpt.loaded", 1),
                ("ckpt.saved", 1),
                ("tensor.matmul.flops", 550),
            ]
        );
        // Non-counter records are concatenated in file order, before the
        // combined counters.
        assert!(matches!(&merged[0], Record::Span { name, .. } if name == "train.step"));
        assert!(matches!(&merged[1], Record::Metric { name, .. } if name == "train.loss"));
    }
}
