//! Graph pass: lowers every built-in encoder configuration to the
//! [`cq_nn::graph::Graph`] IR and proves the two views of the model —
//! the symbolic [`cq_nn::spec::Plan`] and the executable op graph — are
//! one source of truth.
//!
//! Since ISSUE 10 the `Plan` shape/FLOP interpreter *is* the graph
//! lowering (`Plan::infer` delegates per layer), so this pass checks the
//! invariants the shared lowering must uphold for every table/figure
//! config: the graph validates structurally (topological inputs,
//! contiguous strides, elementwise shape preservation), its output shape
//! and total FLOPs agree with the plan's answers, per-layer FLOP
//! attribution covers the whole graph, and the statically predicted
//! fusable elementwise chains are present — the same chains the runtime
//! executor fuses under `CQ_FUSION=on`.

use cq_bench::{Protocol, Regime, Scale};
use cq_models::plan::{encoder_plan, NOMINAL_INPUT};
use cq_models::Arch;
use cq_nn::graph::{Graph, NodeOp};

use crate::analysis::Finding;

/// Summary of one successfully graph-checked encoder configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphReport {
    /// Human-readable label (`scale/regime/arch/head`).
    pub label: String,
    /// Total nodes in the lowered graph.
    pub nodes: usize,
    /// Forward FLOPs at the nominal `[2, 3, 32, 32]` input.
    pub flops: u64,
    /// Statically predicted fusable elementwise chains (length >= 2).
    pub fused_chains: usize,
    /// Longest predicted chain, in nodes.
    pub max_chain_len: usize,
    /// Fake-quantization nodes in the graph.
    pub quantize_nodes: usize,
}

/// Lowers all built-in encoder configurations (the same 2 scales × 2
/// regimes × 6 architectures × 2 heads grid as the config pass) through
/// [`Graph::lower`] and cross-checks each graph against its plan.
///
/// Returns the per-config reports plus any findings; an empty finding
/// list means plan and graph agree everywhere.
pub fn graph_soundness_builtin() -> (Vec<GraphReport>, Vec<Finding>) {
    let mut reports = Vec::new();
    let mut violations = Vec::new();
    let mut fail = |label: &str, msg: String| {
        violations.push(Finding::error(
            "graph",
            "graph-plan-divergence",
            label,
            0,
            msg,
        ));
    };

    for (scale, sname) in [(Scale::Quick, "quick"), (Scale::Paper, "paper")] {
        for (regime, rname) in [
            (Regime::CifarLike, "cifarlike"),
            (Regime::ImagenetLike, "imagenetlike"),
        ] {
            let proto = Protocol::new(regime, scale);
            for arch in Arch::all() {
                for (cfg, head) in [
                    (proto.encoder_cfg(arch), "simclr"),
                    (proto.byol_encoder_cfg(arch), "byol"),
                ] {
                    let label = format!("{sname}/{rname}/{arch:?}/{head}");
                    let (plan, _, out) = match encoder_plan(&cfg) {
                        Ok(p) => p,
                        Err(e) => {
                            fail(&label, format!("encoder_plan: {e}"));
                            continue;
                        }
                    };
                    let graph = match Graph::lower(&plan, &NOMINAL_INPUT) {
                        Ok(g) => g,
                        Err(e) => {
                            fail(&label, format!("Graph::lower: {e}"));
                            continue;
                        }
                    };
                    if let Err(e) = graph.validate() {
                        fail(&label, format!("graph invariant violated: {e}"));
                        continue;
                    }
                    // The graph must answer exactly what the plan answers.
                    match (plan.infer(&NOMINAL_INPUT), plan.flops(&NOMINAL_INPUT)) {
                        (Ok(shape), Ok(flops)) => {
                            if graph.output_shape() != shape.as_slice() {
                                fail(
                                    &label,
                                    format!(
                                        "graph output {:?} != plan output {shape:?}",
                                        graph.output_shape()
                                    ),
                                );
                            }
                            if graph.flops() != flops {
                                fail(
                                    &label,
                                    format!("graph FLOPs {} != plan FLOPs {flops}", graph.flops()),
                                );
                            }
                            if shape != [NOMINAL_INPUT[0], out] {
                                fail(&label, format!("plan output {shape:?} != [N, {out}]"));
                            }
                        }
                        (Err(e), _) | (_, Err(e)) => {
                            fail(&label, format!("plan disagrees with its own graph: {e}"));
                        }
                    }
                    // Per-layer attribution must cover the whole graph:
                    // every node belongs to a top-level layer, and the
                    // layer sums reproduce the total.
                    let per_layer: u64 = (0..plan.layers().len())
                        .map(|li| graph.layer_flops(li))
                        .sum();
                    if per_layer != graph.flops() {
                        fail(
                            &label,
                            format!(
                                "per-layer FLOP attribution {per_layer} != graph total {}",
                                graph.flops()
                            ),
                        );
                    }
                    let chains = graph.fused_chains();
                    let quantize_nodes = graph
                        .nodes()
                        .iter()
                        .filter(|n| n.op == NodeOp::Quantize)
                        .count();
                    // Every built-in encoder has BN -> activation -> quant
                    // stretches; a lowering that predicts no fusable chain
                    // means the chain detector (or the lowering) rotted.
                    if chains.is_empty() {
                        fail(&label, "no fusable elementwise chain predicted".into());
                    }
                    reports.push(GraphReport {
                        label,
                        nodes: graph.nodes().len(),
                        flops: graph.flops(),
                        fused_chains: chains.len(),
                        max_chain_len: chains.iter().map(Vec::len).max().unwrap_or(0),
                        quantize_nodes,
                    });
                }
            }
        }
    }
    (reports, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_config_lowers_to_a_sound_graph() {
        let (reports, violations) = graph_soundness_builtin();
        assert!(violations.is_empty(), "violations: {violations:?}");
        // Same grid as the config pass: 2 scales × 2 regimes × 6 archs × 2 heads.
        assert_eq!(reports.len(), 48);
        for r in &reports {
            assert!(r.nodes > 0 && r.flops > 0, "{}: empty graph", r.label);
            assert!(r.fused_chains > 0, "{}: no fusable chains", r.label);
            assert!(r.max_chain_len >= 2, "{}: degenerate chains", r.label);
            assert!(r.quantize_nodes > 0, "{}: no quantize nodes", r.label);
        }
    }
}
