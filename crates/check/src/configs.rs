//! Config pass: symbolic validation of every built-in table/figure
//! configuration, plus negative checks proving broken configs are
//! rejected with layer-attributed errors.

use cq_bench::{Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_models::plan::{encoder_plan, mlp_head_plan, NOMINAL_INPUT};
use cq_models::{Arch, HeadConfig};
use cq_quant::PrecisionSet;

use crate::analysis::Finding;

/// Summary of one successfully validated encoder configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigReport {
    /// Human-readable label (`scale/regime/arch/head`).
    pub label: String,
    /// Backbone feature dimension.
    pub feat_dim: usize,
    /// Projector output dimension.
    pub out_dim: usize,
    /// Total scalar parameters.
    pub params: usize,
    /// Forward FLOPs at the nominal `[2, 3, 32, 32]` input.
    pub flops: u64,
}

fn scales() -> [(Scale, &'static str); 2] {
    [(Scale::Quick, "quick"), (Scale::Paper, "paper")]
}

fn regimes() -> [(Regime, &'static str); 2] {
    [
        (Regime::CifarLike, "cifarlike"),
        (Regime::ImagenetLike, "imagenetlike"),
    ]
}

/// The precision set every table uses for quantization-augmented
/// pipelines (the paper's widest sampled range).
fn table_pset() -> Option<PrecisionSet> {
    PrecisionSet::range(4, 16).ok()
}

/// Validates every built-in experiment configuration symbolically:
/// encoder plans (SimCLR and BYOL heads) for all scales × regimes ×
/// architectures, pre-training configs for every pipeline, and the
/// detection-transfer head.
///
/// Returns the per-config reports plus any findings; an empty finding
/// list means the whole experiment grid is statically sound.
pub fn validate_builtin() -> (Vec<ConfigReport>, Vec<Finding>) {
    let mut reports = Vec::new();
    let mut violations = Vec::new();
    let mut fail = |label: &str, msg: String| {
        violations.push(Finding::error("configs", "config-invalid", label, 0, msg));
    };

    for (scale, sname) in scales() {
        for (regime, rname) in regimes() {
            let proto = Protocol::new(regime, scale);
            for arch in Arch::all() {
                for (cfg, head) in [
                    (proto.encoder_cfg(arch), "simclr"),
                    (proto.byol_encoder_cfg(arch), "byol"),
                ] {
                    let label = format!("{sname}/{rname}/{arch:?}/{head}");
                    match encoder_plan(&cfg) {
                        Err(e) => fail(&label, e.to_string()),
                        Ok((plan, feat, out)) => {
                            match (plan.infer(&NOMINAL_INPUT), plan.flops(&NOMINAL_INPUT)) {
                                (Ok(shape), Ok(flops)) => {
                                    if shape != [NOMINAL_INPUT[0], out] {
                                        fail(
                                            &label,
                                            format!("plan output {shape:?} != [N, {out}]"),
                                        );
                                    }
                                    reports.push(ConfigReport {
                                        label,
                                        feat_dim: feat,
                                        out_dim: out,
                                        params: plan.param_count(),
                                        flops,
                                    });
                                }
                                (Err(e), _) | (_, Err(e)) => fail(&label, e.to_string()),
                            }
                        }
                    }
                }
            }

            // Pre-training configs for every pipeline the tables run.
            for pipeline in Pipeline::all().into_iter().chain(Pipeline::extensions()) {
                let pset = if pipeline.needs_precisions() {
                    table_pset()
                } else {
                    None
                };
                let cfg = proto.pretrain_cfg(pipeline, pset);
                let label = format!("{sname}/{rname}/pretrain/{pipeline}");
                if let Err(e) = cfg.validate() {
                    fail(&label, e);
                }
            }

            // Detection transfer (Table 3): head over each backbone's
            // feature channels at the default class count.
            let classes = cq_detect::DetectionConfig::default().num_classes;
            for arch in Arch::all() {
                let label = format!("{sname}/{rname}/{arch:?}/detect-head");
                match encoder_plan(&proto.encoder_cfg(arch)) {
                    Err(e) => fail(&label, e.to_string()),
                    Ok((_, feat, _)) => {
                        let r = cq_detect::head_plan(feat, classes)
                            .and_then(|p| p.infer(&[2, feat, 4, 4]));
                        match r {
                            Ok(shape) => {
                                if shape != [2, 5 + classes, 4, 4] {
                                    fail(&label, format!("head output {shape:?} unexpected"));
                                }
                            }
                            Err(e) => fail(&label, e.to_string()),
                        }
                    }
                }
            }
        }
    }
    (reports, violations)
}

/// Negative checks: each deliberately broken configuration must be
/// *rejected*, with the error attributed to the offending layer. A
/// passing validator that silently accepts these has rotted.
pub fn negative_checks() -> Vec<Finding> {
    let mut violations = Vec::new();
    let mut expect_reject = |label: &str, outcome: Result<String, String>| match outcome {
        Ok(accepted) => violations.push(Finding::error(
            "negative",
            "broken-config-accepted",
            label,
            0,
            format!("broken config was accepted: {accepted}"),
        )),
        Err(msg) => {
            if msg.is_empty() {
                violations.push(Finding::error(
                    "negative",
                    "rejection-unattributed",
                    label,
                    0,
                    "rejected, but without the expected attribution",
                ));
            }
        }
    };

    // Projector input dim off by one: the error must name `proj.fc1` and
    // the expected feature count.
    let proto = Protocol::new(Regime::CifarLike, Scale::Quick);
    let arch = Arch::ResNet18;
    let off_by_one = (|| -> Result<String, String> {
        let (_, feat, _) = encoder_plan(&proto.encoder_cfg(arch)).map_err(|e| e.to_string())?;
        // Rebuild the encoder plan with a head expecting feat+1 inputs.
        let (mut broken, _) = cq_models::plan::backbone_plan(arch, proto.width_for(arch))
            .map_err(|e| e.to_string())?;
        let head = mlp_head_plan(&HeadConfig::simclr(feat + 1, 64, 32), "proj");
        for l in head.layers() {
            broken.push(l.name.clone(), l.kind.clone());
        }
        match broken.infer(&NOMINAL_INPUT) {
            Ok(shape) => Ok(format!("inferred {shape:?}")),
            Err(e) => {
                let msg = e.to_string();
                if msg.contains("proj.fc1") && msg.contains(&format!("{}", feat + 1)) {
                    Err(msg)
                } else {
                    Err(String::new()) // rejected but unattributed
                }
            }
        }
    })();
    expect_reject("projector-input-off-by-one", off_by_one);

    // 1-bit quantizer: outside the paper's sampled range, rejected at
    // precision-set construction.
    expect_reject(
        "one-bit-precision-set",
        match PrecisionSet::from_bits(&[1, 8]) {
            Ok(_) => Ok("PrecisionSet accepted 1-bit".into()),
            Err(e) => Err(e.to_string()),
        },
    );

    // CQ-C without a precision set.
    let cfg = proto.pretrain_cfg(Pipeline::CqC, None);
    expect_reject(
        "cqc-without-precisions",
        match cfg.validate() {
            Ok(()) => Ok("PretrainConfig accepted CQ-C without precisions".into()),
            Err(e) => Err(e),
        },
    );

    // Batch size 1 cannot form NT-Xent negatives.
    let mut cfg = proto.pretrain_cfg(Pipeline::Baseline, None);
    cfg.batch_size = 1;
    expect_reject(
        "batch-size-one",
        match cfg.validate() {
            Ok(()) => Ok("PretrainConfig accepted batch_size 1".into()),
            Err(e) => Err(e),
        },
    );

    // Zero-channel detection head.
    expect_reject(
        "zero-channel-detect-head",
        match cq_detect::head_plan(0, 5) {
            Ok(_) => Ok("head_plan accepted 0 channels".into()),
            Err(e) => Err(e.to_string()),
        },
    );

    // Zero-width backbone.
    expect_reject(
        "zero-width-backbone",
        match cq_models::plan::backbone_plan(Arch::ResNet18, 0) {
            Ok(_) => Ok("backbone_plan accepted width 0".into()),
            Err(e) => Err(e.to_string()),
        },
    );

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_config_is_statically_sound() {
        let (reports, violations) = validate_builtin();
        assert!(violations.is_empty(), "violations: {violations:?}");
        // 2 scales × 2 regimes × 6 archs × 2 heads
        assert_eq!(reports.len(), 48);
        for r in &reports {
            assert!(r.params > 0, "{}: zero params", r.label);
            assert!(r.flops > 0, "{}: zero flops", r.label);
            assert!(r.feat_dim > 0 && r.out_dim > 0);
        }
    }

    #[test]
    fn all_broken_configs_are_rejected_with_attribution() {
        let violations = negative_checks();
        assert!(violations.is_empty(), "violations: {violations:?}");
    }
}
