//! Quantization-soundness dataflow over the Plan IR.
//!
//! Walks every built-in encoder plan and statically verifies, at each
//! supported bit-width, the three properties real integer inference (the
//! ROADMAP's i8/i4 path) will depend on:
//!
//! 1. **Clip-range propagation** — a symmetric per-layer value bound
//!    `[-b, b]` is propagated through the stack (convs multiply it by
//!    their tap count and the weight clip range, BatchNorm re-normalizes
//!    it, Relu6 clamps it, residual sums add branch bounds). The bound
//!    must stay finite and positive at every layer; a plan that inflates
//!    it past `f32` range has no representable quantization grid.
//! 2. **Grid alignment** — the uniform grid `step = 2b / (2^q - 1)` must
//!    be a normal `f32` (not zero, subnormal, or infinite) and must
//!    reconstruct the clip range: `(2^q - 1) · step ≈ 2b`. A subnormal
//!    step collapses distinct levels; a non-reconstructing one clips
//!    asymmetrically.
//! 3. **i32-accumulator bounds** — for every MAC layer (conv, depthwise,
//!    linear) with `K` taps, the worst-case integer accumulation
//!    `K·(2^q-1)² + (2^q-1)` must fit in `i32` for every bit-width `q ≤ 8`
//!    (the integer-inference target; `(2^16-1)²` alone exceeds `i32::MAX`,
//!    so wider widths stay on the float fake-quant path by construction).
//!    Pooling sums are not checked: they accumulate values, not products,
//!    and overflow only beyond ~8M-element windows.
//!
//! The bound constants are the modeling assumptions of the fake-quant
//! pipeline, documented here rather than scattered: inputs are
//! channel-standardized (≈ ±3σ), weights are clipped to `[-1, 1]` by the
//! quantizer, and post-BatchNorm activations are taken at ±8σ.
//!
//! Findings report under pass `quant` with lints `bound-nonfinite`,
//! `scale-nonfinite`, `grid-misaligned`, and `acc-overflow`, attributed
//! `config-label / layer-name`.

use cq_bench::{Protocol, Regime, Scale};
use cq_models::plan::{encoder_plan, NOMINAL_INPUT};
use cq_models::Arch;
use cq_nn::spec::{LayerKind, Plan};

use crate::analysis::Finding;

/// Pass name the quant dataflow reports under.
const PASS: &str = "quant";

/// Clip bound assumed for channel-standardized input pixels (±3σ).
pub const INPUT_BOUND: f64 = 3.0;

/// Weight clip range enforced by the fake quantizer.
pub const W_BOUND: f64 = 1.0;

/// Post-BatchNorm activation bound (±8σ of the normalized activation).
pub const BN_BOUND: f64 = 8.0;

/// Bit-widths the quantizer supports (`Precision::bits` range).
pub const Q_RANGE: std::ops::RangeInclusive<u8> = 2..=16;

/// Largest bit-width required to run on the i32 integer-inference path
/// (shared with the runtime assertion in `cq-infer` via `cq-quant`).
pub const INT_INFER_MAX_BITS: u8 = cq_quant::intmath::INT_INFER_MAX_BITS;

/// Relative tolerance for grid reconstruction (`(2^q-1)·step` vs `2b`).
const GRID_RTOL: f32 = 1e-3;

/// Per-config result of the dataflow walk.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantReport {
    /// Config label (`scale/regime/arch/head`).
    pub label: String,
    /// Number of leaf layers walked (composites flattened).
    pub layers: usize,
    /// Largest MAC tap count `K` in the plan (conv `in_ch·kh·kw`,
    /// linear `in_features`, +1 for bias).
    pub worst_mac_taps: u64,
    /// Largest propagated activation bound.
    pub max_bound: f64,
    /// Largest bit-width whose worst-case accumulation fits `i32` — the
    /// statically proven ceiling for the integer-inference path.
    pub max_int_bits: u8,
}

/// Worst-case i32 accumulation for `taps` products of `q`-bit magnitudes
/// plus a `q`-bit bias term. Delegates to the shared formula in
/// `cq_quant::intmath` so the static proof here and the load-time
/// assertion in `cq-infer` can never drift apart. `q` is always drawn
/// from [`Q_RANGE`], which is exactly the range `intmath` accepts.
fn acc_worst(taps: u64, q: u8) -> u128 {
    // cq-allow(no-unwrap): Q_RANGE == intmath's supported 2..=16
    cq_quant::intmath::acc_worst(taps, q).expect("Q_RANGE within supported bit-widths")
}

/// Whether `taps`-wide MAC accumulation fits `i32` at bit-width `q`.
fn acc_fits_i32(taps: u64, q: u8) -> bool {
    // cq-allow(no-unwrap): Q_RANGE == intmath's supported 2..=16
    cq_quant::intmath::acc_fits_i32(taps, q).expect("Q_RANGE within supported bit-widths")
}

/// MAC tap count of a leaf layer, or `None` for non-MAC layers.
fn mac_taps(kind: &LayerKind) -> Option<u64> {
    match kind {
        LayerKind::Conv2d {
            in_ch, spec, bias, ..
        } => {
            let (kh, kw) = spec.kernel;
            Some((in_ch * kh * kw + usize::from(*bias)) as u64)
        }
        LayerKind::DepthwiseConv2d { spec, .. } => {
            let (kh, kw) = spec.kernel;
            Some((kh * kw) as u64)
        }
        LayerKind::Linear {
            in_features, bias, ..
        } => Some((in_features + usize::from(*bias)) as u64),
        _ => None,
    }
}

/// State threaded through the recursive walk.
struct Walk<'a> {
    label: &'a str,
    findings: Vec<Finding>,
    layers: usize,
    worst_mac_taps: u64,
    max_bound: f64,
}

impl Walk<'_> {
    fn fail(&mut self, lint: &'static str, layer: &str, msg: String) {
        self.findings.push(Finding::error(
            PASS,
            lint,
            format!("{} / {layer}", self.label),
            0,
            msg,
        ));
    }

    /// Checks the quantization grid of a value bound `b` at every
    /// supported bit-width.
    fn check_grid(&mut self, layer: &str, b: f64) {
        if !b.is_finite() || b <= 0.0 {
            self.fail(
                "bound-nonfinite",
                layer,
                format!("propagated clip bound {b:e} is not a positive finite value"),
            );
            return;
        }
        for q in Q_RANGE {
            // cq-allow(no-unwrap): Q_RANGE == intmath's supported 2..=16
            let levels = cq_quant::intmath::grid_steps(q).expect("Q_RANGE within 2..=16");
            let step = (2.0 * b / levels as f64) as f32;
            if !step.is_normal() {
                self.fail(
                    "scale-nonfinite",
                    layer,
                    format!(
                        "quantization step {step:e} at {q}-bit (bound {b:e}) is not a \
                         normal f32 — the grid is unrepresentable"
                    ),
                );
                continue;
            }
            let recon = step as f64 * levels as f64;
            let rel = ((recon - 2.0 * b) / (2.0 * b)).abs() as f32;
            if rel > GRID_RTOL {
                self.fail(
                    "grid-misaligned",
                    layer,
                    format!(
                        "{q}-bit grid reconstructs clip range {recon:e} vs {:e} \
                         (relative error {rel:e}) — levels do not tile the range",
                        2.0 * b
                    ),
                );
            }
        }
    }

    /// Checks i32 accumulator fit for a MAC layer with `taps` taps at the
    /// integer-inference bit-widths.
    fn check_acc(&mut self, layer: &str, taps: u64) {
        self.worst_mac_taps = self.worst_mac_taps.max(taps);
        for q in Q_RANGE {
            if q > INT_INFER_MAX_BITS {
                break;
            }
            if !acc_fits_i32(taps, q) {
                self.fail(
                    "acc-overflow",
                    layer,
                    format!(
                        "{taps}-tap MAC at {q}-bit accumulates up to {} > i32::MAX \
                         ({}) — integer inference would overflow",
                        acc_worst(taps, q),
                        i32::MAX
                    ),
                );
            }
        }
    }

    /// Propagates the value bound through one plan, returning the output
    /// bound.
    fn walk(&mut self, plan: &Plan, mut bound: f64) -> f64 {
        for layer in plan.layers() {
            bound = self.walk_layer(&layer.name, &layer.kind, bound);
        }
        bound
    }

    fn walk_layer(&mut self, name: &str, kind: &LayerKind, bound: f64) -> f64 {
        let out = match kind {
            LayerKind::Residual { main, skip } => {
                let mb = self.walk(main, bound);
                let sb = match skip {
                    Some(p) => self.walk(p, bound),
                    None => bound,
                };
                mb + sb // elementwise sum adds worst-case branch bounds
            }
            LayerKind::Block(p) => return self.walk(p, bound),
            _ => {
                self.layers += 1;
                if let Some(taps) = mac_taps(kind) {
                    self.check_acc(name, taps);
                }
                match kind {
                    // A K-tap MAC of clipped weights scales the bound by
                    // K·W_BOUND in the worst case.
                    LayerKind::Conv2d { .. }
                    | LayerKind::DepthwiseConv2d { .. }
                    | LayerKind::Linear { .. } => {
                        // cq-allow(no-unwrap): mac_taps covers every MAC arm above
                        bound * W_BOUND * mac_taps(kind).unwrap() as f64
                    }
                    // Normalization re-standardizes the activation.
                    LayerKind::BatchNorm2d { .. } | LayerKind::BatchNorm1d { .. } => BN_BOUND,
                    LayerKind::Relu6 => bound.min(6.0),
                    // Relu halves the support but not the magnitude bound;
                    // pooling (max or mean) never exceeds its inputs.
                    LayerKind::Relu
                    | LayerKind::MaxPool2d { .. }
                    | LayerKind::AvgPool2d { .. }
                    | LayerKind::GlobalAvgPool => bound,
                    LayerKind::Residual { .. } | LayerKind::Block(_) => unreachable!(),
                }
            }
        };
        self.max_bound = self.max_bound.max(out);
        self.check_grid(name, out);
        out
    }
}

/// Runs the dataflow over one plan, labeling findings with `label`.
/// Returns the report and any findings.
pub fn check_plan(label: &str, plan: &Plan) -> (QuantReport, Vec<Finding>) {
    let mut w = Walk {
        label,
        findings: Vec::new(),
        layers: 0,
        worst_mac_taps: 0,
        max_bound: INPUT_BOUND,
    };
    w.walk(plan, INPUT_BOUND);
    let max_int_bits = Q_RANGE
        .rev()
        .find(|&q| acc_fits_i32(w.worst_mac_taps.max(1), q))
        .unwrap_or(0);
    let report = QuantReport {
        label: label.to_string(),
        layers: w.layers,
        worst_mac_taps: w.worst_mac_taps,
        max_bound: w.max_bound,
        max_int_bits,
    };
    (report, w.findings)
}

/// Runs the quantization-soundness dataflow over all 48 built-in encoder
/// configurations (2 scales × 2 regimes × 6 architectures × 2 heads).
pub fn quant_soundness_builtin() -> (Vec<QuantReport>, Vec<Finding>) {
    let mut reports = Vec::new();
    let mut findings = Vec::new();
    for (scale, sname) in [(Scale::Quick, "quick"), (Scale::Paper, "paper")] {
        for (regime, rname) in [
            (Regime::CifarLike, "cifarlike"),
            (Regime::ImagenetLike, "imagenetlike"),
        ] {
            let proto = Protocol::new(regime, scale);
            for arch in Arch::all() {
                for (cfg, head) in [
                    (proto.encoder_cfg(arch), "simclr"),
                    (proto.byol_encoder_cfg(arch), "byol"),
                ] {
                    let label = format!("{sname}/{rname}/{arch:?}/{head}");
                    match encoder_plan(&cfg) {
                        Err(e) => findings.push(Finding::error(
                            PASS,
                            "bound-nonfinite",
                            label,
                            0,
                            format!("encoder plan failed to build: {e}"),
                        )),
                        Ok((plan, _, _)) => {
                            // The plan is shape-sound (the configs pass
                            // proves it); here we only need the dataflow.
                            debug_assert!(plan.infer(&NOMINAL_INPUT).is_ok());
                            let (report, mut f) = check_plan(&label, &plan);
                            reports.push(report);
                            findings.append(&mut f);
                        }
                    }
                }
            }
        }
    }
    (reports, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_tensor::Conv2dSpec;

    #[test]
    fn all_48_builtin_configs_are_quant_sound() {
        let (reports, findings) = quant_soundness_builtin();
        assert!(findings.is_empty(), "findings: {findings:#?}");
        assert_eq!(reports.len(), 48);
        for r in &reports {
            assert!(r.layers > 0, "{}: empty walk", r.label);
            assert!(r.worst_mac_taps > 0, "{}: no MAC layers", r.label);
            // Every built-in config must support the full integer-inference
            // target range statically.
            assert!(
                r.max_int_bits >= INT_INFER_MAX_BITS,
                "{}: max_int_bits {} < {INT_INFER_MAX_BITS}",
                r.label,
                r.max_int_bits
            );
            assert!(r.max_bound.is_finite() && r.max_bound > 0.0);
        }
    }

    #[test]
    fn overflow_prone_synthetic_config_is_rejected() {
        // A 40k-input linear layer: 40_001 · (2^8-1)^2 ≈ 2.6e9 > i32::MAX,
        // so the 8-bit integer path would overflow its accumulator.
        let mut plan = Plan::new();
        plan.push(
            "huge.fc",
            LayerKind::Linear {
                in_features: 40_000,
                out_features: 8,
                bias: true,
            },
        );
        let (report, findings) = check_plan("synthetic/overflow", &plan);
        let acc: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "acc-overflow")
            .collect();
        assert!(!acc.is_empty(), "expected acc-overflow, got {findings:?}");
        assert!(acc[0].file.contains("huge.fc"), "{:?}", acc[0]);
        assert!(acc[0].message.contains("i32::MAX"));
        assert!(report.max_int_bits < INT_INFER_MAX_BITS);
    }

    #[test]
    fn unnormalized_deep_stack_breaks_the_grid() {
        // Twelve 512-channel 3x3 convs with no BatchNorm between them:
        // the bound inflates by 4608x per layer and the f32 step overflows.
        let mut plan = Plan::new();
        for i in 0..12 {
            plan.push(
                format!("conv{i}"),
                LayerKind::Conv2d {
                    in_ch: 512,
                    out_ch: 512,
                    spec: Conv2dSpec::new(3, 1, 1),
                    bias: false,
                },
            );
        }
        let (_, findings) = check_plan("synthetic/no-bn", &plan);
        assert!(
            findings.iter().any(|f| f.lint == "scale-nonfinite"),
            "expected scale-nonfinite, got {findings:?}"
        );
    }

    #[test]
    fn bn_resets_the_bound_and_relu6_clamps_it() {
        let mut plan = Plan::new();
        plan.push(
            "conv",
            LayerKind::Conv2d {
                in_ch: 64,
                out_ch: 64,
                spec: Conv2dSpec::new(3, 1, 1),
                bias: false,
            },
        );
        plan.push("bn", LayerKind::BatchNorm2d { channels: 64 });
        plan.push("act", LayerKind::Relu6);
        let (report, findings) = check_plan("synthetic/bn-relu6", &plan);
        assert!(findings.is_empty(), "{findings:?}");
        // conv: 3 * 1.0 * 576 = 1728; bn resets to 8; relu6 clamps to 6.
        assert_eq!(report.max_bound, INPUT_BOUND * 64.0 * 9.0);
        assert_eq!(report.layers, 3);
    }

    #[test]
    fn residual_adds_branch_bounds() {
        let mut main = Plan::new();
        main.push("m.bn", LayerKind::BatchNorm2d { channels: 4 });
        let mut plan = Plan::new();
        plan.push("block", LayerKind::Residual { main, skip: None });
        let (report, findings) = check_plan("synthetic/residual", &plan);
        assert!(findings.is_empty(), "{findings:?}");
        // main ends at BN_BOUND, identity skip carries INPUT_BOUND.
        assert_eq!(report.max_bound, BN_BOUND + INPUT_BOUND);
    }

    #[test]
    fn accumulator_math_matches_the_documented_formula() {
        // 8-bit: K*(255^2) + 255 <= i32::MAX iff K <= 33025.
        assert!(acc_fits_i32(33_000, 8));
        assert!(!acc_fits_i32(33_026, 8));
        // 16-bit never fits: a single product exceeds i32::MAX.
        assert!(!acc_fits_i32(1, 16));
        // Typical ResNet worst case (512 * 3 * 3) is comfortably safe.
        assert!(acc_fits_i32(4608, 8));
        assert!(acc_fits_i32(4608, 9));
        assert!(!acc_fits_i32(4608, 10));
    }

    #[test]
    fn bound_math_assumes_the_shared_rounding_rule() {
        // The ±(2^q−1) magnitude bounds in acc_worst assume grid codes come
        // from round-half-away-from-zero projection (a half-up rule at the
        // clip boundary would admit 2^q codes). Pin the rule through the
        // shared contract test so this crate and cq-quant/cq-infer cannot
        // silently disagree.
        cq_quant::intmath::assert_round_half_away(cq_quant::intmath::round_half_away);
        // And the boundary consequence the bounds rely on: a value exactly
        // at the clip bound b maps to code ±(2^q−1) under a symmetric grid,
        // never beyond it.
        for q in [2u8, 8, 16] {
            let m = cq_quant::intmath::grid_steps(q).unwrap() as f32;
            let b = 3.0f32;
            let step = 2.0 * b / m;
            let code = cq_quant::intmath::round_half_away(b / step);
            assert!(code.abs() <= m, "q={q}: boundary code {code} exceeds {m}");
        }
    }
}
