//! The pluggable analysis engine: findings, severities, the [`Analysis`]
//! trait, per-file token context, and the suppression/baseline system.
//!
//! Every pass in this crate — the migrated source lints, the determinism
//! auditor, the quantization-soundness dataflow — produces [`Finding`]s.
//! A finding is *suppressible* at its site with a
//! `// cq-allow(<lint>): <reason>` comment on the same or preceding
//! line (the legacy `cq-check: allow — <reason>` marker is still honored
//! as a wildcard), or centrally via a committed baseline file. Suppressed
//! findings are reported but do not fail the gate; a suppression that no
//! longer matches any finding is itself a warning (`stale-suppression`),
//! so allows cannot silently outlive the code they excused.
//!
//! Exit-code contract of the `cq-check` binary (stable, for CI):
//!
//! | code | meaning                                             |
//! |------|-----------------------------------------------------|
//! | 0    | no unsuppressed findings                            |
//! | 1    | at least one unsuppressed error-severity finding    |
//! | 2    | usage error (unknown flag, unreadable baseline)     |
//! | 3    | unsuppressed warnings only (no errors)              |
//!
//! `--deny-warnings` promotes exit 3 to exit 1.

use std::fmt;

use crate::lexer::{self, Token, TokenKind};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, exit code 3, does not fail a default CI gate
    /// unless `--deny-warnings` is set.
    Warning,
    /// Gate-failing: exit code 1 when unsuppressed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of any pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Pass that produced the finding (`configs`, `negative`, `lint`,
    /// `determinism`, `quant`).
    pub pass: &'static str,
    /// Specific rule id (`no-unwrap`, `det-hash-iter`, `acc-overflow`, …).
    pub lint: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Repo-relative file path, or a config label for plan-level passes.
    pub file: String,
    /// 1-based line, or 0 when the finding is not line-specific.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// Whether a suppression (inline allow or baseline entry) covers it.
    pub suppressed: bool,
}

impl Finding {
    /// Builds an unsuppressed error-severity finding.
    pub fn error(
        pass: &'static str,
        lint: &'static str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            pass,
            lint,
            severity: Severity::Error,
            file: file.into(),
            line,
            message: message.into(),
            suppressed: false,
        }
    }

    /// Builds an unsuppressed warning-severity finding.
    pub fn warning(
        pass: &'static str,
        lint: &'static str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            severity: Severity::Warning,
            ..Finding::error(pass, lint, file, line, message)
        }
    }

    /// `file:line`, or just `file` for whole-file/config findings.
    pub fn location(&self) -> String {
        if self.line == 0 {
            self.file.clone()
        } else {
            format!("{}:{}", self.file, self.line)
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {}: {} ({}{})",
            self.pass,
            self.lint,
            self.location(),
            self.message,
            self.severity,
            if self.suppressed { ", suppressed" } else { "" }
        )
    }
}

/// One inline suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on. It covers findings on this line
    /// and the next (a marker on its own line excuses the line below).
    pub line: usize,
    /// Lint the allow names, or `None` for the legacy wildcard marker.
    pub lint: Option<String>,
    /// Justification text after the `:` (or `—` for legacy markers).
    pub reason: String,
}

/// A lexed source file plus everything analyses need: the token stream,
/// the test-module boundary, and parsed suppressions.
pub struct SourceFile<'s> {
    /// Repo-relative path (`crates/nn/src/conv.rs`).
    pub rel: String,
    /// Full source text.
    pub text: &'s str,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// 1-based line of the first `#[cfg(test)]`; lines at or after it are
    /// test code. `usize::MAX` when the file has no test module.
    pub test_boundary: usize,
    /// Inline suppressions parsed from comments.
    pub suppressions: Vec<Suppression>,
}

/// New-style suppression marker (`cq-allow(<lint>): <reason>`).
pub const ALLOW_PREFIX: &str = "cq-allow(";
/// Legacy wildcard marker, still honored: `cq-check: allow — <reason>`.
pub const LEGACY_MARKER: &str = "cq-check: allow";

impl<'s> SourceFile<'s> {
    /// Lexes `text` and prepares the analysis context.
    pub fn parse(rel: impl Into<String>, text: &'s str) -> Self {
        let tokens = lexer::lex(text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_code())
            .map(|(i, _)| i)
            .collect();
        let test_boundary = find_test_boundary(text, &tokens, &code);
        let suppressions = parse_suppressions(text, &tokens);
        SourceFile {
            rel: rel.into(),
            text,
            tokens,
            code,
            test_boundary,
            suppressions,
        }
    }

    /// The `i`-th code (non-comment) token, if any.
    pub fn code_tok(&self, i: usize) -> Option<&Token> {
        self.code.get(i).map(|&ti| &self.tokens[ti])
    }

    /// Text of the `i`-th code token.
    pub fn code_text(&self, i: usize) -> &str {
        self.code_tok(i).map_or("", |t| t.text(self.text))
    }

    /// Whether code token `i` is the identifier `name`.
    pub fn ident_eq(&self, i: usize, name: &str) -> bool {
        self.code_tok(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.text) == name)
    }

    /// Whether code token `i` is the punctuation byte `ch`.
    pub fn punct_eq(&self, i: usize, ch: char) -> bool {
        self.code_tok(i).is_some_and(|t| {
            t.kind == TokenKind::Punct && self.text[t.start..t.end].chars().eq([ch])
        })
    }

    /// Whether the code tokens starting at `i` match `pat` exactly.
    pub fn matches(&self, i: usize, pat: &[Pat<'_>]) -> bool {
        let mut ci = i;
        for p in pat {
            let ok = match p {
                Pat::Ident(name) => self.ident_eq(ci, name),
                Pat::AnyIdent => self
                    .code_tok(ci)
                    .is_some_and(|t| t.kind == TokenKind::Ident),
                Pat::IdentIn(names) => names.iter().any(|n| self.ident_eq(ci, n)),
                Pat::Punct(ch) => self.punct_eq(ci, *ch),
                Pat::Str => self.code_tok(ci).is_some_and(|t| t.kind == TokenKind::Str),
                Pat::PathSep => {
                    let ok = self.punct_eq(ci, ':') && self.punct_eq(ci + 1, ':');
                    ci += 1; // consumed one extra token
                    ok
                }
            };
            if !ok {
                return false;
            }
            ci += 1;
        }
        true
    }

    /// Whether the 1-based `line` lies in the trailing test module.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= self.test_boundary
    }

    /// Whether any code token on `line` is the identifier `name` — used
    /// for line-local context checks (e.g. a `for` on the same line).
    pub fn line_has_ident(&self, line: usize, name: &str) -> bool {
        self.code.iter().any(|&ti| {
            let t = &self.tokens[ti];
            t.line == line && t.kind == TokenKind::Ident && t.text(self.text) == name
        })
    }
}

/// One element of a token pattern for [`SourceFile::matches`].
#[derive(Debug, Clone, Copy)]
pub enum Pat<'a> {
    /// An identifier with this exact text.
    Ident(&'a str),
    /// Any identifier.
    AnyIdent,
    /// An identifier matching any of these texts.
    IdentIn(&'a [&'a str]),
    /// A single punctuation byte.
    Punct(char),
    /// A string literal.
    Str,
    /// The `::` path separator (two `:` tokens).
    PathSep,
}

/// Finds the line of the first `#[cfg(test)]` attribute (token-aware, so
/// a doc comment mentioning the attribute does not end library scanning
/// early the way the old line-grep did).
fn find_test_boundary(text: &str, tokens: &[Token], code: &[usize]) -> usize {
    for (i, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        if t.kind == TokenKind::Punct && t.text(text) == "#" {
            let nxt = |k: usize| code.get(i + k).map(|&j| tokens[j].text(text));
            if nxt(1) == Some("[")
                && nxt(2) == Some("cfg")
                && nxt(3) == Some("(")
                && nxt(4) == Some("test")
            {
                return t.line;
            }
        }
    }
    usize::MAX
}

/// Parses every inline suppression out of the comment tokens.
///
/// A suppression must be the comment's *leading* content (after the
/// `//`/`/*` delimiters and whitespace) — prose or docs that merely
/// mention the marker syntax mid-sentence are not suppressions, so they
/// can never be reported stale.
fn parse_suppressions(text: &str, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let body = t
            .text(text)
            .trim_start_matches(['/', '*', '!'])
            .trim_start();
        if body.starts_with(ALLOW_PREFIX) {
            // New style: `cq-allow(lint): reason`. A comment may chain
            // several (`cq-allow(a): x; cq-allow(b): y`).
            let mut from = 0;
            while let Some(p) = body[from..].find(ALLOW_PREFIX) {
                let at = from + p + ALLOW_PREFIX.len();
                let Some(close) = body[at..].find(')') else {
                    break;
                };
                let lint = body[at..at + close].trim().to_string();
                let rest = &body[at + close + 1..];
                let reason = rest
                    .strip_prefix(':')
                    .and_then(|r| r.split(';').next())
                    .map(str::trim)
                    .unwrap_or("")
                    .to_string();
                out.push(Suppression {
                    line: t.line,
                    lint: Some(lint),
                    reason,
                });
                from = at + close;
            }
        } else if let Some(rest) = body.strip_prefix(LEGACY_MARKER) {
            // Legacy style: `cq-check: allow — reason` (wildcard).
            let reason = rest
                .trim_start_matches([' ', '—', '-', ':'])
                .trim()
                .to_string();
            out.push(Suppression {
                line: t.line,
                lint: None,
                reason,
            });
        }
    }
    out
}

/// One analysis pass over a single file.
pub trait Analysis {
    /// The rule id this analysis reports under (`no-unwrap`, …).
    fn lint(&self) -> &'static str;
    /// Scans `file`, pushing raw (unsuppressed) findings.
    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>);
}

/// Runs `analyses` over one parsed file, applies inline suppressions, and
/// appends meta-findings for stale or reason-less suppressions.
pub fn analyze_file(file: &SourceFile<'_>, analyses: &[&dyn Analysis], out: &mut Vec<Finding>) {
    let mut found = Vec::new();
    for a in analyses {
        a.check(file, &mut found);
    }
    let mut used = vec![false; file.suppressions.len()];
    for f in &mut found {
        if f.line == 0 {
            continue;
        }
        for (si, s) in file.suppressions.iter().enumerate() {
            let line_hits = s.line == f.line || s.line + 1 == f.line;
            let lint_hits = s.lint.as_deref().is_none_or(|l| l == f.lint);
            if line_hits && lint_hits {
                f.suppressed = true;
                used[si] = true;
            }
        }
    }
    for (s, used) in file.suppressions.iter().zip(&used) {
        if !used {
            let what = s
                .lint
                .as_deref()
                .map_or_else(|| "wildcard allow".into(), |l| format!("cq-allow({l})"));
            out.push(Finding::warning(
                "lint",
                "stale-suppression",
                file.rel.clone(),
                s.line,
                format!("{what} matches no finding on this or the next line; remove it"),
            ));
        } else if s.reason.is_empty() {
            out.push(Finding::warning(
                "lint",
                "suppression-without-reason",
                file.rel.clone(),
                s.line,
                "suppression carries no reason; write `cq-allow(<lint>): <why>`".to_string(),
            ));
        }
    }
    out.append(&mut found);
}

/// A committed set of known findings that are tolerated without inline
/// allows — the mechanism for landing a new strict pass without blocking
/// unrelated work. Entries match on `(lint, file, message)`, deliberately
/// *not* on line numbers, so unrelated edits above a finding do not churn
/// the baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: Vec<(String, String, String)>,
}

impl Baseline {
    /// Parses the baseline file format: one `lint<TAB>file<TAB>message`
    /// per line; `#` lines and blanks are ignored.
    pub fn parse(text: &str) -> Baseline {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let mut it = l.splitn(3, '\t');
                match (it.next(), it.next(), it.next()) {
                    (Some(lint), Some(file), Some(msg)) => {
                        Some((lint.to_string(), file.to_string(), msg.to_string()))
                    }
                    _ => None,
                }
            })
            .collect();
        Baseline { entries }
    }

    /// Renders the unsuppressed findings of a run as baseline file text.
    pub fn render(findings: &[Finding]) -> String {
        let mut s = String::from(
            "# cq-check baseline v1 — tolerated findings (lint<TAB>file<TAB>message).\n\
             # Regenerate with `cq-check --write-baseline <path>`; shrink it over time.\n",
        );
        let mut lines: Vec<String> = findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(|f| format!("{}\t{}\t{}", f.lint, f.file, f.message))
            .collect();
        lines.sort();
        lines.dedup();
        for l in lines {
            s.push_str(&l);
            s.push('\n');
        }
        s
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks findings matching a baseline entry as suppressed; returns a
    /// `stale-baseline` warning for every entry that matched nothing (the
    /// finding was fixed — the entry must be removed so it cannot mask a
    /// future regression).
    pub fn apply(&self, findings: &mut [Finding]) -> Vec<Finding> {
        let mut used = vec![false; self.entries.len()];
        for f in findings.iter_mut() {
            if f.suppressed {
                continue;
            }
            for (ei, (lint, file, msg)) in self.entries.iter().enumerate() {
                if f.lint == lint && &f.file == file && &f.message == msg {
                    f.suppressed = true;
                    used[ei] = true;
                }
            }
        }
        self.entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|((lint, file, msg), _)| {
                Finding::warning(
                    "lint",
                    "stale-baseline",
                    file.clone(),
                    0,
                    format!("baseline entry for {lint} no longer matches: {msg}"),
                )
            })
            .collect()
    }
}

/// Serializes findings as a JSON array (hand-rolled; the workspace has no
/// serde). Schema per element: `{"pass","lint","severity","file","line",
/// "message","suppressed"}`.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"pass\":{},\"lint\":{},\"severity\":{},\"file\":{},\"line\":{},\
             \"message\":{},\"suppressed\":{}}}",
            json_str(f.pass),
            json_str(f.lint),
            json_str(&f.severity.to_string()),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            f.suppressed
        ));
    }
    s.push(']');
    s
}

/// Escapes one JSON string, quotes included.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlagIdent(&'static str, &'static str);
    impl Analysis for FlagIdent {
        fn lint(&self) -> &'static str {
            self.1
        }
        fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
            for i in 0..file.code.len() {
                if file.ident_eq(i, self.0) {
                    let line = file.code_tok(i).unwrap().line;
                    out.push(Finding::error(
                        "lint",
                        self.1,
                        file.rel.clone(),
                        line,
                        format!("found {}", self.0),
                    ));
                }
            }
        }
    }

    fn run(src: &str, analyses: &[&dyn Analysis]) -> Vec<Finding> {
        let file = SourceFile::parse("x.rs", src);
        let mut out = Vec::new();
        analyze_file(&file, analyses, &mut out);
        out
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let same = "fn f() { bad(); } // cq-allow(flag): justified\n";
        let next = "// cq-allow(flag): justified\nfn f() { bad(); }\n";
        for src in [same, next] {
            let out = run(src, &[&FlagIdent("bad", "flag")]);
            let flagged: Vec<_> = out.iter().filter(|f| f.lint == "flag").collect();
            assert_eq!(flagged.len(), 1, "{src}");
            assert!(flagged[0].suppressed, "{src}");
            assert!(!out.iter().any(|f| f.lint == "stale-suppression"), "{src}");
        }
    }

    #[test]
    fn allow_for_other_lint_does_not_suppress() {
        let src = "fn f() { bad(); } // cq-allow(other): wrong rule\n";
        let out = run(src, &[&FlagIdent("bad", "flag")]);
        let flagged = out.iter().find(|f| f.lint == "flag").unwrap();
        assert!(!flagged.suppressed);
        // ... and the unmatched allow is reported stale.
        assert!(out.iter().any(|f| f.lint == "stale-suppression"));
    }

    #[test]
    fn legacy_marker_is_wildcard() {
        let src = "fn f() { bad(); } // cq-check: allow — grandfathered\n";
        let out = run(src, &[&FlagIdent("bad", "flag")]);
        assert!(out.iter().find(|f| f.lint == "flag").unwrap().suppressed);
    }

    #[test]
    fn stale_suppression_is_warned() {
        let src = "// cq-allow(flag): site was removed\nfn f() { fine(); }\n";
        let out = run(src, &[&FlagIdent("bad", "flag")]);
        let stale = out.iter().find(|f| f.lint == "stale-suppression").unwrap();
        assert_eq!(stale.severity, Severity::Warning);
        assert_eq!(stale.line, 1);
    }

    #[test]
    fn reasonless_suppression_is_warned() {
        let src = "fn f() { bad(); } // cq-allow(flag)\n";
        let out = run(src, &[&FlagIdent("bad", "flag")]);
        assert!(out.iter().find(|f| f.lint == "flag").unwrap().suppressed);
        assert!(out.iter().any(|f| f.lint == "suppression-without-reason"));
    }

    #[test]
    fn one_allow_covers_multiple_findings_on_its_lines() {
        let src = "// cq-allow(flag): both below\nbad(); bad();\n";
        let out = run(src, &[&FlagIdent("bad", "flag")]);
        assert!(out
            .iter()
            .filter(|f| f.lint == "flag")
            .all(|f| f.suppressed));
    }

    #[test]
    fn test_boundary_is_token_aware() {
        // A doc comment mentioning the attribute must not end the file.
        let src = "/// not `#[cfg(test)]` yet\nfn f() {}\n#[cfg(test)]\nmod t {}\n";
        let file = SourceFile::parse("x.rs", src);
        assert_eq!(file.test_boundary, 3);
        assert!(file.is_test_line(3));
        assert!(!file.is_test_line(2));
    }

    #[test]
    fn pattern_matching_spans_lines_and_skips_comments() {
        let src = "cq_obs::metric( // explains\n    \"literal\", 1)\n";
        let file = SourceFile::parse("x.rs", src);
        let hit = (0..file.code.len()).any(|i| {
            file.matches(
                i,
                &[
                    Pat::Ident("cq_obs"),
                    Pat::PathSep,
                    Pat::Ident("metric"),
                    Pat::Punct('('),
                    Pat::Str,
                ],
            )
        });
        assert!(hit);
    }

    #[test]
    fn baseline_round_trip_add_and_remove() {
        let mut findings = vec![
            Finding::error("lint", "flag", "a.rs", 3, "found bad"),
            Finding::error("lint", "flag", "b.rs", 9, "found worse"),
        ];
        // Write a baseline from the current findings...
        let text = Baseline::render(&findings);
        let bl = Baseline::parse(&text);
        assert_eq!(bl.len(), 2);
        // ...re-applying it suppresses both, with nothing stale.
        let stale = bl.apply(&mut findings);
        assert!(findings.iter().all(|f| f.suppressed));
        assert!(stale.is_empty());

        // One finding gets fixed: its entry is reported stale.
        let mut only_first = vec![Finding::error("lint", "flag", "a.rs", 3, "found bad")];
        let stale = bl.apply(&mut only_first);
        assert!(only_first[0].suppressed);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].lint, "stale-baseline");
        assert!(stale[0].message.contains("found worse"));
    }

    #[test]
    fn baseline_matches_ignore_line_numbers() {
        let original = vec![Finding::error("lint", "flag", "a.rs", 3, "found bad")];
        let bl = Baseline::parse(&Baseline::render(&original));
        // Same finding, shifted 40 lines by unrelated edits above it.
        let mut moved = vec![Finding::error("lint", "flag", "a.rs", 43, "found bad")];
        let stale = bl.apply(&mut moved);
        assert!(moved[0].suppressed);
        assert!(stale.is_empty());
    }

    #[test]
    fn json_output_escapes_and_reports_fields() {
        let f = Finding::warning("lint", "flag", "a \"b\".rs", 7, "line1\nline2");
        let j = findings_to_json(&[f]);
        assert!(j.contains("\"a \\\"b\\\".rs\""));
        assert!(j.contains("\\nline2"));
        assert!(j.contains("\"severity\":\"warning\""));
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("\"suppressed\":false"));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }
}
