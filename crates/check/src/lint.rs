//! Lint pass: source-level checks over the workspace's library crates.
//!
//! Six lints, all tuned to this repository's layout (test modules
//! trail their file behind a `#[cfg(test)]` line; bench drivers live in
//! `src/bin/`; binary entry points are `main.rs`):
//!
//! - **no-unwrap**: library code must not call `unwrap`/`expect` —
//!   errors are propagated as `Result`s. A justified site carries a
//!   `cq-check: allow — <reason>` marker on the same or preceding line.
//! - **no-println**: library code must not write diagnostics to stdout
//!   with `println!` — route them through `cq_obs` (events/metrics) or
//!   `eprintln!` so stdout stays reserved for a binary's actual output.
//!   `main.rs` and `src/bin/**` are exempt (stdout is theirs), and a
//!   deliberate site (e.g. a report printer) carries the same
//!   `cq-check: allow — <reason>` marker.
//! - **gradcheck-coverage**: every file defining a non-test
//!   `impl Layer for T` must also invoke the `check_layer` gradcheck
//!   family, so no layer's backward pass ships unverified. A
//!   machine-readable gradcheck log (`CQ_GRADCHECK_LOG` output,
//!   `gradcheck layer=<kind> …` lines) can vouch for types checked from
//!   another file.
//! - **obs-names**: `cq_obs::metric(…)` / `cq_obs::histogram(…)` call
//!   sites must name their series via a `cq_obs::names::*` constant, not
//!   an ad-hoc string literal — ad-hoc names silently fork a series
//!   (`"train.loss"` vs `"train_loss"`) and break the health monitor and
//!   `cq-trace diff`, which match on the canonical names. The check is
//!   line-local: it flags a literal as the first argument on the same
//!   line (or the immediately following line for calls broken after the
//!   open paren). The usual `cq-check: allow — <reason>` marker exempts
//!   a deliberate site.
//! - **no-raw-threads**: no `crossbeam::` (scoped thread) use outside
//!   `crates/tensor/src/par.rs` — ad-hoc thread fan-out re-introduces
//!   per-call spawn overhead and scheduling-dependent reduction orders,
//!   which is exactly what the persistent pool and its fixed chunk grid
//!   exist to prevent. Parallel work goes through `cq_tensor::par`. The
//!   marker exempts a deliberate site; this lint covers test code too,
//!   since results from raw scopes are not thread-count reproducible.
//! - **one-train-loop**: `crates/core/src/engine.rs` owns the epoch
//!   loop and everything a checkpoint must capture. Outside it, cq-core
//!   library code must not iterate over `cfg.epochs` (a second epoch
//!   loop would drift from the engine's LR schedule, telemetry and
//!   resume bookkeeping) and must not seed a raw `StdRng` (trainer
//!   randomness goes through `CqRng`, whose state is serializable into
//!   checkpoints — `StdRng` state cannot be extracted, so any such RNG
//!   silently breaks bitwise resume). The marker exempts a deliberate
//!   site.

use std::path::{Path, PathBuf};

use crate::Violation;

/// Marker that exempts an `unwrap`/`expect` site, on its own line or the
/// line above.
pub const ALLOW_MARKER: &str = "cq-check: allow";

// Spelled via concat so this file's own pattern definitions don't trip
// the scanner when cq-check lints itself.
const UNWRAP_PAT: &str = concat!(".unw", "rap()");
const EXPECT_PAT: &str = concat!(".exp", "ect(");
const PRINTLN_PAT: &str = concat!("print", "ln!(");
const METRIC_PAT: &str = concat!("cq_obs::met", "ric(");
const HIST_PAT: &str = concat!("cq_obs::hist", "ogram(");
const CROSSBEAM_PAT: &str = concat!("cross", "beam::");
const EPOCHS_FIELD_PAT: &str = concat!(".epo", "chs");
const STDRNG_SEED_PAT: &str = concat!("StdRng::seed_", "from_u64");

/// The one file allowed to own thread-pool internals.
const PAR_RS: &str = "crates/tensor/src/par.rs";

/// The one file allowed to own the training epoch loop.
const ENGINE_RS: &str = "crates/core/src/engine.rs";

/// The crate whose library sources the one-train-loop lint covers.
const CORE_SRC: &str = "crates/core/src/";

/// Recursively collects `.rs` files under `dir`, skipping `src/bin`
/// directories (executables may panic on bad CLI input).
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// All library sources of the workspace at `root`: `crates/*/src/**/*.rs`
/// minus `src/bin/**`.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return files;
    };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path().join("src")).collect();
    dirs.sort();
    for d in dirs {
        rust_sources(&d, &mut files);
    }
    files
}

/// Index of the first `#[cfg(test)]` line, or `len` when absent. In this
/// codebase test modules always trail the file, so everything after that
/// line is test code.
fn test_boundary(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len())
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") // covers `///` and `//!` too
}

/// Applies the no-unwrap lint to one file's contents.
fn lint_unwrap_in(rel: &str, text: &str, violations: &mut Vec<Violation>) {
    let lines: Vec<&str> = text.lines().collect();
    let boundary = test_boundary(&lines);
    for (i, line) in lines.iter().enumerate().take(boundary) {
        if is_comment(line) {
            continue;
        }
        let has_site = line.contains(UNWRAP_PAT) || line.contains(EXPECT_PAT);
        if !has_site {
            continue;
        }
        let allowed = line.contains(ALLOW_MARKER) || (i > 0 && lines[i - 1].contains(ALLOW_MARKER));
        if !allowed {
            violations.push(Violation {
                pass: "lint",
                location: format!("{rel}:{}", i + 1),
                message: format!(
                    "unwrap/expect in library code; propagate the error or add \
                     `{ALLOW_MARKER} — <reason>`"
                ),
            });
        }
    }
}

/// True when `line` invokes `println!` itself — not `eprintln!`, whose
/// spelling contains the shorter macro name as a suffix.
fn calls_println(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(PRINTLN_PAT) {
        let at = from + pos;
        let preceded_by_ident =
            at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        if !preceded_by_ident {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Applies the no-println lint to one file's contents. `main.rs` is the
/// caller's responsibility to exempt (it owns stdout).
fn lint_println_in(rel: &str, text: &str, violations: &mut Vec<Violation>) {
    let lines: Vec<&str> = text.lines().collect();
    let boundary = test_boundary(&lines);
    for (i, line) in lines.iter().enumerate().take(boundary) {
        if is_comment(line) || !calls_println(line) {
            continue;
        }
        let allowed = line.contains(ALLOW_MARKER) || (i > 0 && lines[i - 1].contains(ALLOW_MARKER));
        if !allowed {
            violations.push(Violation {
                pass: "lint",
                location: format!("{rel}:{}", i + 1),
                message: format!(
                    "println! in library code; emit a cq_obs event or use eprintln!, \
                     or add `{ALLOW_MARKER} — <reason>`"
                ),
            });
        }
    }
}

/// True when, after a `cq_obs::metric(` / `cq_obs::histogram(` site at
/// byte offset `after_paren` in `line`, the first argument is a string
/// literal. When the call is broken right after the open paren, the first
/// token of `next_line` (if any) is inspected instead.
fn literal_first_arg(line: &str, after_paren: usize, next_line: Option<&str>) -> bool {
    let rest = line[after_paren..].trim_start();
    if rest.is_empty() {
        return next_line.is_some_and(|l| l.trim_start().starts_with('"'));
    }
    rest.starts_with('"')
}

/// Applies the obs-names lint to one file's contents: metric/histogram
/// series must be named by `cq_obs::names::*` constants.
fn lint_obs_names_in(rel: &str, text: &str, violations: &mut Vec<Violation>) {
    let lines: Vec<&str> = text.lines().collect();
    let boundary = test_boundary(&lines);
    for (i, line) in lines.iter().enumerate().take(boundary) {
        if is_comment(line) {
            continue;
        }
        let mut flagged = false;
        for pat in [METRIC_PAT, HIST_PAT] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(pat) {
                let after = from + pos + pat.len();
                let next = (i + 1 < boundary).then(|| lines[i + 1]);
                if literal_first_arg(line, after, next) {
                    flagged = true;
                }
                from = after;
            }
        }
        if !flagged {
            continue;
        }
        let allowed = line.contains(ALLOW_MARKER) || (i > 0 && lines[i - 1].contains(ALLOW_MARKER));
        if !allowed {
            violations.push(Violation {
                pass: "lint",
                location: format!("{rel}:{}", i + 1),
                message: format!(
                    "ad-hoc metric/histogram name literal; use a `cq_obs::names::*` \
                     constant so the series stays canonical, or add \
                     `{ALLOW_MARKER} — <reason>`"
                ),
            });
        }
    }
}

/// Applies the no-raw-threads lint to one file's contents. Unlike the
/// other lints this scans the whole file (tests included): a raw
/// `crossbeam::` scope anywhere produces scheduling-dependent behaviour
/// the persistent pool exists to rule out.
fn lint_no_raw_threads_in(rel: &str, text: &str, violations: &mut Vec<Violation>) {
    if rel.ends_with(PAR_RS) {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if is_comment(line) || !line.contains(CROSSBEAM_PAT) {
            continue;
        }
        let allowed = line.contains(ALLOW_MARKER) || (i > 0 && lines[i - 1].contains(ALLOW_MARKER));
        if !allowed {
            violations.push(Violation {
                pass: "lint",
                location: format!("{rel}:{}", i + 1),
                message: format!(
                    "raw {CROSSBEAM_PAT} use outside {PAR_RS}; route parallel work \
                     through cq_tensor::par (persistent pool, deterministic chunk \
                     grid), or add `{ALLOW_MARKER} — <reason>`"
                ),
            });
        }
    }
}

/// Applies the one-train-loop lint to one file's contents: in cq-core
/// library code outside `engine.rs`, no epoch iteration (`for` over a
/// `.epochs` field) and no raw `StdRng` seeding — both would bypass the
/// engine's checkpoint/resume bookkeeping.
fn lint_one_train_loop_in(rel: &str, text: &str, violations: &mut Vec<Violation>) {
    if !rel.contains(CORE_SRC) || rel.ends_with(ENGINE_RS) {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();
    let boundary = test_boundary(&lines);
    for (i, line) in lines.iter().enumerate().take(boundary) {
        if is_comment(line) {
            continue;
        }
        let epoch_loop = line.contains("for ") && line.contains(EPOCHS_FIELD_PAT);
        let raw_rng = line.contains(STDRNG_SEED_PAT);
        if !epoch_loop && !raw_rng {
            continue;
        }
        let allowed = line.contains(ALLOW_MARKER) || (i > 0 && lines[i - 1].contains(ALLOW_MARKER));
        if allowed {
            continue;
        }
        let message = if epoch_loop {
            format!(
                "epoch loop outside {ENGINE_RS}; drive training through \
                 TrainLoop (one engine owns the schedule, telemetry and \
                 resume bookkeeping), or add `{ALLOW_MARKER} — <reason>`"
            )
        } else {
            format!(
                "raw StdRng seeding in trainer code; use cq_tensor::CqRng so \
                 the state serializes into checkpoints (StdRng breaks bitwise \
                 resume), or add `{ALLOW_MARKER} — <reason>`"
            )
        };
        violations.push(Violation {
            pass: "lint",
            location: format!("{rel}:{}", i + 1),
            message,
        });
    }
}

/// Non-test `impl Layer for T` type names declared in one file.
fn layer_impls_in(text: &str) -> Vec<String> {
    let lines: Vec<&str> = text.lines().collect();
    let boundary = test_boundary(&lines);
    lines[..boundary]
        .iter()
        .filter_map(|l| {
            let t = l.trim_start();
            let rest = t.strip_prefix("impl Layer for ")?;
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            (!name.is_empty()).then_some(name)
        })
        .collect()
}

/// Layer kinds vouched for by a `CQ_GRADCHECK_LOG` file (empty when the
/// env var is unset or the file is unreadable).
fn logged_layers() -> Vec<String> {
    let Ok(path) = std::env::var("CQ_GRADCHECK_LOG") else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| l.strip_prefix("gradcheck layer="))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

/// Runs all three source lints over the workspace at `root`.
pub fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    let logged = logged_layers();
    for path in workspace_sources(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        lint_unwrap_in(&rel, &text, &mut violations);
        lint_obs_names_in(&rel, &text, &mut violations);
        lint_no_raw_threads_in(&rel, &text, &mut violations);
        lint_one_train_loop_in(&rel, &text, &mut violations);
        if path.file_name().is_none_or(|n| n != "main.rs") {
            lint_println_in(&rel, &text, &mut violations);
        }
        let impls = layer_impls_in(&text);
        if !impls.is_empty() && !text.contains("check_layer") {
            for name in impls {
                if logged.iter().any(|l| l == &name) {
                    continue; // a gradcheck elsewhere logged this kind
                }
                violations.push(Violation {
                    pass: "lint",
                    location: rel.clone(),
                    message: format!(
                        "`impl Layer for {name}` has no gradcheck coverage in this file \
                         (add a check_layer test or log it via CQ_GRADCHECK_LOG)"
                    ),
                });
            }
        }
    }
    violations
}

/// The workspace root this binary was compiled in (two levels above the
/// crate manifest).
pub fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bad_line() -> String {
        format!("    let v = thing{};", UNWRAP_PAT)
    }

    #[test]
    fn flags_unmarked_unwrap() {
        let text = format!("fn f() {{\n{}\n}}\n", bad_line());
        let mut v = Vec::new();
        lint_unwrap_in("x.rs", &text, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].location, "x.rs:2");
    }

    #[test]
    fn marker_on_same_or_previous_line_allows() {
        let same = format!("fn f() {{\n{} // {} — fine\n}}\n", bad_line(), ALLOW_MARKER);
        let prev = format!(
            "fn f() {{\n// {} — fine\n{}\n}}\n",
            ALLOW_MARKER,
            bad_line()
        );
        for text in [same, prev] {
            let mut v = Vec::new();
            lint_unwrap_in("x.rs", &text, &mut v);
            assert!(v.is_empty(), "{text}");
        }
    }

    #[test]
    fn test_code_and_comments_are_ignored() {
        let text = format!(
            "fn f() {{}}\n// docs may mention {}\n#[cfg(test)]\nmod tests {{\n{}\n}}\n",
            UNWRAP_PAT,
            bad_line()
        );
        let mut v = Vec::new();
        lint_unwrap_in("x.rs", &text, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_println_but_not_eprintln() {
        let text = format!(
            "fn f() {{\n    {}\"x\");\n    e{}\"y\");\n}}\n",
            PRINTLN_PAT, PRINTLN_PAT
        );
        let mut v = Vec::new();
        lint_println_in("x.rs", &text, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].location, "x.rs:2");
    }

    #[test]
    fn println_marker_and_test_code_allowed() {
        let marked = format!(
            "fn f() {{\n    {}\"x\"); // {} — report output\n}}\n",
            PRINTLN_PAT, ALLOW_MARKER
        );
        let in_tests = format!(
            "fn f() {{}}\n#[cfg(test)]\nmod t {{\nfn g() {{ {}\"x\"); }}\n}}\n",
            PRINTLN_PAT
        );
        for text in [marked, in_tests] {
            let mut v = Vec::new();
            lint_println_in("x.rs", &text, &mut v);
            assert!(v.is_empty(), "{text}");
        }
    }

    #[test]
    fn obs_names_flags_literals_but_not_constants() {
        let text = format!(
            "fn f() {{\n    {}\"train.loss\", 0, 1.0);\n    \
             {}cq_obs::names::TRAIN_LOSS, 0, 1.0);\n    \
             {}\"quant.bits\", 4.0);\n    {}cq_obs::names::QUANT_BITS, 4.0);\n}}\n",
            METRIC_PAT, METRIC_PAT, HIST_PAT, HIST_PAT
        );
        let mut v = Vec::new();
        lint_obs_names_in("x.rs", &text, &mut v);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].location, "x.rs:2");
        assert_eq!(v[1].location, "x.rs:4");
    }

    #[test]
    fn obs_names_catches_literal_after_line_break() {
        let text = format!(
            "fn f() {{\n    {}\n        \"ad.hoc\", 0, 1.0);\n}}\n",
            METRIC_PAT
        );
        let mut v = Vec::new();
        lint_obs_names_in("x.rs", &text, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn obs_names_marker_and_test_code_allowed() {
        let marked = format!(
            "fn f() {{\n    {}\"one.off\", 0, 1.0); // {} — experiment-local series\n}}\n",
            METRIC_PAT, ALLOW_MARKER
        );
        let in_tests = format!(
            "fn f() {{}}\n#[cfg(test)]\nmod t {{\nfn g() {{ {}\"x\", 0, 1.0); }}\n}}\n",
            METRIC_PAT
        );
        for text in [marked, in_tests] {
            let mut v = Vec::new();
            lint_obs_names_in("x.rs", &text, &mut v);
            assert!(v.is_empty(), "{text}");
        }
    }

    #[test]
    fn no_raw_threads_flags_scopes_outside_par() {
        let text = format!("fn f() {{\n    {}scope(|s| {{}});\n}}\n", CROSSBEAM_PAT);
        let mut v = Vec::new();
        lint_no_raw_threads_in("crates/nn/src/conv.rs", &text, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].location, "crates/nn/src/conv.rs:2");
        // Test code is NOT exempt for this lint.
        let in_tests = format!(
            "fn f() {{}}\n#[cfg(test)]\nmod t {{\nfn g() {{ {}scope(|s| {{}}); }}\n}}\n",
            CROSSBEAM_PAT
        );
        let mut v = Vec::new();
        lint_no_raw_threads_in("crates/nn/src/conv.rs", &in_tests, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn no_raw_threads_exempts_par_and_marker_and_comments() {
        let text = format!("fn f() {{\n    {}scope(|s| {{}});\n}}\n", CROSSBEAM_PAT);
        let mut v = Vec::new();
        lint_no_raw_threads_in("crates/tensor/src/par.rs", &text, &mut v);
        assert!(v.is_empty(), "{v:?}");
        let marked = format!(
            "fn f() {{\n    {}scope(|s| {{}}); // {} — migration shim\n}}\n",
            CROSSBEAM_PAT, ALLOW_MARKER
        );
        let commented = format!("fn f() {{}}\n// docs may mention {}scope\n", CROSSBEAM_PAT);
        for text in [marked, commented] {
            let mut v = Vec::new();
            lint_no_raw_threads_in("crates/nn/src/conv.rs", &text, &mut v);
            assert!(v.is_empty(), "{text}");
        }
    }

    #[test]
    fn one_train_loop_flags_epoch_loops_and_raw_rng_in_core() {
        let epoch_loop = format!(
            "fn f() {{\n    for e in 0..cfg{} {{}}\n}}\n",
            EPOCHS_FIELD_PAT
        );
        let mut v = Vec::new();
        lint_one_train_loop_in("crates/core/src/simclr.rs", &epoch_loop, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].location, "crates/core/src/simclr.rs:2");

        let raw_rng = format!("fn f() {{\n    let r = {}(7);\n}}\n", STDRNG_SEED_PAT);
        let mut v = Vec::new();
        lint_one_train_loop_in("crates/core/src/byol.rs", &raw_rng, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("CqRng"), "{}", v[0].message);
    }

    #[test]
    fn one_train_loop_exempts_engine_other_crates_tests_and_marker() {
        let epoch_loop = format!(
            "fn f() {{\n    for e in 0..cfg{} {{}}\n}}\n",
            EPOCHS_FIELD_PAT
        );
        // engine.rs owns the loop; other crates may iterate epochs freely
        // (e.g. cq-eval's linear-probe loop).
        for rel in ["crates/core/src/engine.rs", "crates/eval/src/probe.rs"] {
            let mut v = Vec::new();
            lint_one_train_loop_in(rel, &epoch_loop, &mut v);
            assert!(v.is_empty(), "{rel}: {v:?}");
        }
        // Test modules and marked sites are exempt.
        let in_tests = format!(
            "fn f() {{}}\n#[cfg(test)]\nmod t {{\nfn g() {{ let r = {}(7); }}\n}}\n",
            STDRNG_SEED_PAT
        );
        let marked = format!(
            "fn f() {{\n    for e in 0..cfg{} {{}} // {} — migration shim\n}}\n",
            EPOCHS_FIELD_PAT, ALLOW_MARKER
        );
        for text in [in_tests, marked] {
            let mut v = Vec::new();
            lint_one_train_loop_in("crates/core/src/simclr.rs", &text, &mut v);
            assert!(v.is_empty(), "{text}: {v:?}");
        }
    }

    #[test]
    fn finds_layer_impls_outside_tests_only() {
        let text =
            "impl Layer for Conv9 {\n}\n#[cfg(test)]\nmod t {\nimpl Layer for Fake {\n}\n}\n";
        assert_eq!(layer_impls_in(text), vec!["Conv9".to_string()]);
    }

    #[test]
    fn repo_sources_pass_both_lints() {
        let violations = lint_workspace(&default_root());
        assert!(violations.is_empty(), "violations:\n{violations:#?}");
    }

    #[test]
    fn workspace_sources_skip_bin_dirs() {
        let files = workspace_sources(&default_root());
        assert!(!files.is_empty());
        assert!(files
            .iter()
            .all(|f| !f.components().any(|c| c.as_os_str() == "bin")));
        assert!(files.iter().any(|f| f.ends_with("crates/nn/src/layer.rs")));
    }
}
