//! Source lints over the workspace's library crates, token-aware.
//!
//! Eight lints, each an [`Analysis`] over the lexed token stream (so a
//! pattern spelled inside a string literal, doc comment or block comment
//! can never trip them — the failure mode of the line-greps these
//! replaced):
//!
//! - **no-unwrap**: library code must not call `unwrap`/`expect` —
//!   errors are propagated as `Result`s.
//! - **no-println**: library code must not write diagnostics to stdout
//!   with `println!` — route them through `cq_obs` (events/metrics) or
//!   `eprintln!` so stdout stays reserved for a binary's actual output.
//!   `main.rs` and `src/bin/**` are exempt (stdout is theirs).
//! - **gradcheck-coverage**: every file defining a non-test
//!   `impl Layer for T` must also invoke the `check_layer` gradcheck
//!   family, so no layer's backward pass ships unverified. A
//!   machine-readable gradcheck log (`CQ_GRADCHECK_LOG` output,
//!   `gradcheck layer=<kind> …` lines) can vouch for types checked from
//!   another file.
//! - **obs-names**: `cq_obs::metric(…)` / `cq_obs::histogram(…)` call
//!   sites must name their series via a `cq_obs::names::*` constant, not
//!   an ad-hoc string literal — ad-hoc names silently fork a series
//!   (`"train.loss"` vs `"train_loss"`) and break the health monitor and
//!   `cq-trace diff`, which match on the canonical names.
//! - **no-raw-threads**: no `crossbeam::` (scoped thread) use outside
//!   `crates/tensor/src/par.rs` — ad-hoc thread fan-out re-introduces
//!   per-call spawn overhead and scheduling-dependent reduction orders,
//!   which is exactly what the persistent pool and its fixed chunk grid
//!   exist to prevent. This lint covers test code too, since results
//!   from raw scopes are not thread-count reproducible.
//! - **no-eager-forward**: cq-nn / cq-models forward paths must build
//!   and execute op graphs, not hand-rolled eager tensor-op chains —
//!   no in-place element mutation (`as_mut_slice` / `iter_mut`) inside
//!   a `forward` body, and no `fake_quant_into` call outside the graph
//!   executor, which owns activation fake-quantization (the fused and
//!   unfused paths stay bitwise-identical only because every chain runs
//!   through one kernel set).
//! - **one-train-loop**: `crates/core/src/engine.rs` owns the epoch
//!   loop and everything a checkpoint must capture. Outside it, cq-core
//!   library code must not iterate over `cfg.epochs` and must not seed a
//!   raw `StdRng` (trainer randomness goes through `CqRng`, whose state
//!   is serializable into checkpoints).
//! - **no-naive-hot-loop**: no unblocked multiply-accumulate loop nest
//!   (three or more nested `for`s around a `+=` whose right-hand side
//!   multiplies) outside `crates/tensor/src/gemm/` — that is O(n³)
//!   arithmetic written the slow way; route the product through the
//!   blocked `cq_tensor::gemm` kernels, which are bitwise-identical to
//!   the naive loops and several times faster. Data movement (`+=` with
//!   multiplies only inside index expressions, as in `col2im`) is not
//!   flagged.
//!
//! A justified site is excused with a `cq-allow(<lint>): <reason>`
//! comment on the same or preceding line (see [`crate::analysis`]).

use std::path::{Path, PathBuf};

use crate::analysis::{analyze_file, Analysis, Finding, Pat, SourceFile};

/// Pass name the source lints report under.
const PASS: &str = "lint";

/// The one file allowed to own thread-pool internals.
const PAR_RS: &str = "crates/tensor/src/par.rs";

/// The one file allowed to own the training epoch loop.
const ENGINE_RS: &str = "crates/core/src/engine.rs";

/// The crate whose library sources the one-train-loop lint covers.
const CORE_SRC: &str = "crates/core/src/";

/// Directory names never descended into by [`workspace_sources`]:
/// executables (`bin`), build output (`target`, however deeply nested)
/// and vendored third-party code (`vendor`).
const SKIP_DIRS: [&str; 3] = ["bin", "target", "vendor"];

/// Recursively collects `.rs` files under `dir`. Skips the
/// [`SKIP_DIRS`] directories and hidden entries at any depth, and never
/// follows symlinks (a link into `target/`, a sibling crate or a
/// directory cycle would otherwise smuggle files past the skip list or
/// hang the walk).
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let Ok(meta) = std::fs::symlink_metadata(&path) else {
            continue;
        };
        if meta.is_symlink() {
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if meta.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// All library sources of the workspace at `root`: `crates/*/src/**/*.rs`
/// minus `src/bin/**`, nested `target`/`vendor` directories, hidden
/// directories and anything behind a symlink.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return files;
    };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for d in dirs {
        if std::fs::symlink_metadata(&d).is_ok_and(|m| m.is_dir() && !m.is_symlink()) {
            rust_sources(&d.join("src"), &mut files);
        }
    }
    files
}

/// Runs `analyses` over every workspace source file at `root`, applying
/// inline suppressions and stale-suppression detection per file.
pub fn run_source_passes(root: &Path, analyses: &[&dyn Analysis]) -> Vec<Finding> {
    let mut out = Vec::new();
    for path in workspace_sources(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        let file = SourceFile::parse(rel, &text);
        analyze_file(&file, analyses, &mut out);
    }
    out
}

/// no-unwrap: `.unwrap()` / `.expect(` in non-test library code.
pub struct NoUnwrap;

impl Analysis for NoUnwrap {
    fn lint(&self) -> &'static str {
        "no-unwrap"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        for i in 0..file.code.len() {
            let unwrap = file.matches(
                i,
                &[
                    Pat::Punct('.'),
                    Pat::Ident("unwrap"),
                    Pat::Punct('('),
                    Pat::Punct(')'),
                ],
            );
            let expect = file.matches(i, &[Pat::Punct('.'), Pat::Ident("expect"), Pat::Punct('(')]);
            if !unwrap && !expect {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) {
                continue;
            }
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                "unwrap/expect in library code; propagate the error or add \
                 `cq-allow(no-unwrap): <reason>`",
            ));
        }
    }
}

/// no-println: `println!` in non-test library code (`main.rs` exempt).
pub struct NoPrintln;

impl Analysis for NoPrintln {
    fn lint(&self) -> &'static str {
        "no-println"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        if file.rel.ends_with("main.rs") {
            return; // a binary's entry point owns stdout
        }
        for i in 0..file.code.len() {
            if !file.matches(
                i,
                &[Pat::Ident("println"), Pat::Punct('!'), Pat::Punct('(')],
            ) {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) {
                continue;
            }
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                "println! in library code; emit a cq_obs event or use eprintln!, \
                 or add `cq-allow(no-println): <reason>`",
            ));
        }
    }
}

/// obs-names: metric/histogram series must be named by `cq_obs::names::*`
/// constants, not ad-hoc string literals.
pub struct ObsNames;

impl Analysis for ObsNames {
    fn lint(&self) -> &'static str {
        "obs-names"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        for i in 0..file.code.len() {
            let hit = file.matches(
                i,
                &[
                    Pat::Ident("cq_obs"),
                    Pat::PathSep,
                    Pat::IdentIn(&["metric", "histogram"]),
                    Pat::Punct('('),
                    Pat::Str,
                ],
            );
            if !hit {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) {
                continue;
            }
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                "ad-hoc metric/histogram name literal; use a `cq_obs::names::*` \
                 constant so the series stays canonical, or add \
                 `cq-allow(obs-names): <reason>`",
            ));
        }
    }
}

/// no-raw-threads: `crossbeam::` anywhere (tests included) outside the
/// pool implementation.
pub struct NoRawThreads;

impl Analysis for NoRawThreads {
    fn lint(&self) -> &'static str {
        "no-raw-threads"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        if file.rel.ends_with(PAR_RS) {
            return;
        }
        for i in 0..file.code.len() {
            if !file.matches(i, &[Pat::Ident("crossbeam"), Pat::PathSep]) {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                format!(
                    "raw crossbeam:: use outside {PAR_RS}; route parallel work \
                     through cq_tensor::par (persistent pool, deterministic chunk \
                     grid), or add `cq-allow(no-raw-threads): <reason>`"
                ),
            ));
        }
    }
}

/// one-train-loop: no epoch iteration or raw `StdRng` seeding in cq-core
/// library code outside the engine.
pub struct OneTrainLoop;

impl Analysis for OneTrainLoop {
    fn lint(&self) -> &'static str {
        "one-train-loop"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        if !file.rel.contains(CORE_SRC) || file.rel.ends_with(ENGINE_RS) {
            return;
        }
        for i in 0..file.code.len() {
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) {
                continue;
            }
            let epoch_loop = file.matches(i, &[Pat::Punct('.'), Pat::Ident("epochs")])
                && file.line_has_ident(line, "for");
            let raw_rng = file.matches(
                i,
                &[
                    Pat::Ident("StdRng"),
                    Pat::PathSep,
                    Pat::Ident("seed_from_u64"),
                ],
            );
            if !epoch_loop && !raw_rng {
                continue;
            }
            let message = if epoch_loop {
                format!(
                    "epoch loop outside {ENGINE_RS}; drive training through \
                     TrainLoop (one engine owns the schedule, telemetry and \
                     resume bookkeeping), or add `cq-allow(one-train-loop): <reason>`"
                )
            } else {
                "raw StdRng seeding in trainer code; use cq_tensor::CqRng so \
                 the state serializes into checkpoints (StdRng breaks bitwise \
                 resume), or add `cq-allow(one-train-loop): <reason>`"
                    .to_string()
            };
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                message,
            ));
        }
    }
}

/// Directory owning the blocked GEMM kernels — the one place a naive
/// multiply-accumulate loop nest is allowed (its `reference` module *is*
/// the oracle the blocked kernels are proven against).
const GEMM_DIR: &str = "crates/tensor/src/gemm/";

/// no-naive-hot-loop: an unblocked multiply-accumulate loop nest (`+=`
/// with a multiplying right-hand side under ≥ 3 nested `for`s) outside
/// [`GEMM_DIR`].
pub struct NoNaiveHotLoop;

impl NoNaiveHotLoop {
    /// True when the code token at `i` begins a `for` *loop* (followed by
    /// an `in` before the body brace) rather than `impl Trait for Type`.
    fn is_for_loop(file: &SourceFile<'_>, i: usize) -> bool {
        if !file.ident_eq(i, "for") {
            return false;
        }
        for j in i + 1..(i + 24).min(file.code.len()) {
            if file.punct_eq(j, '{') {
                return false;
            }
            if file.ident_eq(j, "in") {
                return true;
            }
        }
        false
    }

    /// True when the `+=` whose `+` sits at code index `i` has a binary
    /// `*` outside any parentheses/brackets on its right-hand side —
    /// i.e. the statement computes a product, not just a strided copy
    /// whose multiplies all live in index expressions.
    fn rhs_multiplies(file: &SourceFile<'_>, i: usize) -> bool {
        let mut depth = 0usize;
        for j in i + 2..file.code.len() {
            if depth == 0 && file.punct_eq(j, ';') {
                return false;
            }
            if file.punct_eq(j, '(') || file.punct_eq(j, '[') {
                depth += 1;
            } else if file.punct_eq(j, ')') || file.punct_eq(j, ']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && file.punct_eq(j, '*') {
                // Binary `*` only: a multiply follows a value (ident,
                // number or closing delimiter); a deref follows an
                // operator.
                let binary = file.code_tok(j - 1).is_some_and(|t| {
                    matches!(
                        t.kind,
                        crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::Number
                    )
                }) || file.punct_eq(j - 1, ')')
                    || file.punct_eq(j - 1, ']');
                if binary {
                    return true;
                }
            }
        }
        false
    }
}

impl Analysis for NoNaiveHotLoop {
    fn lint(&self) -> &'static str {
        "no-naive-hot-loop"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        if file.rel.contains(GEMM_DIR) {
            return;
        }
        // One forward scan: brace depth plus the brace depths at which
        // `for` bodies opened tells how many loops enclose any token.
        let mut depth = 0usize;
        let mut for_stack: Vec<usize> = Vec::new();
        let mut pending_for = false;
        for i in 0..file.code.len() {
            if Self::is_for_loop(file, i) {
                pending_for = true;
            } else if file.punct_eq(i, '{') {
                depth += 1;
                if pending_for {
                    for_stack.push(depth);
                    pending_for = false;
                }
            } else if file.punct_eq(i, '}') {
                if for_stack.last() == Some(&depth) {
                    for_stack.pop();
                }
                depth = depth.saturating_sub(1);
            } else if file.punct_eq(i, '+')
                && file.punct_eq(i + 1, '=')
                && for_stack.len() >= 3
                && Self::rhs_multiplies(file, i)
            {
                let line = file.code_tok(i).map_or(0, |t| t.line);
                if file.is_test_line(line) {
                    continue;
                }
                out.push(Finding::error(
                    PASS,
                    self.lint(),
                    file.rel.clone(),
                    line,
                    format!(
                        "naive multiply-accumulate loop nest ({} nested `for`s); \
                         route the product through cq_tensor::gemm (blocked, \
                         bitwise-identical, several times faster), or add \
                         `cq-allow(no-naive-hot-loop): <reason>`",
                        for_stack.len()
                    ),
                ));
            }
        }
    }
}

/// The crates whose forward paths must route through the graph executor.
const GRAPH_CRATES: [&str; 2] = ["crates/nn/src/", "crates/models/src/"];

/// The graph executor itself — the one home of the fused kernel set.
const GRAPH_RS: &str = "crates/nn/src/graph.rs";

/// no-eager-forward: eager tensor-op chains in cq-nn / cq-models forward
/// paths outside the graph executor. Two shapes are flagged:
///
/// 1. a `fake_quant_into(` call anywhere in these crates outside
///    [`GRAPH_RS`] — activation fake-quant is a whole-tensor pass that
///    the executor places at fused-segment boundaries; a second call
///    site forks the bitwise contract;
/// 2. in-place element mutation (`.as_mut_slice(` / `.iter_mut(`)
///    inside a non-test `fn forward` / `fn forward_spatial` body — the
///    duplicated elementwise loops the graph executor replaced.
///
/// Backward passes, optimizers and leaf compute kernels (matmul, im2col,
/// pooling) are untouched: they mutate outside `forward` bodies.
pub struct NoEagerForward;

impl Analysis for NoEagerForward {
    fn lint(&self) -> &'static str {
        "no-eager-forward"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        if !GRAPH_CRATES.iter().any(|c| file.rel.contains(c)) || file.rel.ends_with(GRAPH_RS) {
            return;
        }
        // Brace-depth scan tracking whether we are inside a forward body
        // (closures nest deeper, so "inside" is depth > entry depth).
        let mut depth = 0usize;
        let mut forward_entry: Option<usize> = None;
        let mut pending_fn = false;
        let mut last_line = 0usize;
        for i in 0..file.code.len() {
            if file.matches(
                i,
                &[
                    Pat::Ident("fn"),
                    Pat::IdentIn(&["forward", "forward_spatial"]),
                ],
            ) {
                pending_fn = true;
            } else if file.punct_eq(i, '{') {
                depth += 1;
                if pending_fn {
                    forward_entry.get_or_insert(depth);
                    pending_fn = false;
                }
            } else if file.punct_eq(i, '}') {
                if forward_entry == Some(depth) {
                    forward_entry = None;
                }
                depth = depth.saturating_sub(1);
            }

            let quant_call = file.matches(i, &[Pat::Ident("fake_quant_into"), Pat::Punct('(')]);
            let eager_mut = forward_entry.is_some()
                && file.matches(
                    i,
                    &[
                        Pat::Punct('.'),
                        Pat::IdentIn(&["as_mut_slice", "iter_mut"]),
                        Pat::Punct('('),
                    ],
                );
            if !quant_call && !eager_mut {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) || line == last_line {
                continue; // one finding per offending line
            }
            last_line = line;
            let message = if quant_call {
                format!(
                    "fake_quant_into outside {GRAPH_RS}; activation fake-quant \
                     belongs to the graph executor's fused kernel set (one call \
                     site keeps fused == unfused bitwise), or add \
                     `cq-allow(no-eager-forward): <reason>`"
                )
            } else {
                "eager element mutation in a forward path; record the op on the \
                 graph Recorder (or execute_single) so the fused executor owns \
                 the loop, or add `cq-allow(no-eager-forward): <reason>`"
                    .to_string()
            };
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                message,
            ));
        }
    }
}

/// gradcheck-coverage: every non-test `impl Layer for T` must be vouched
/// for by a `check_layer`-family call in the same file or a
/// `CQ_GRADCHECK_LOG` entry.
pub struct GradcheckCoverage {
    /// Layer kinds vouched for by the gradcheck log (empty when the env
    /// var is unset or the file is unreadable).
    logged: Vec<String>,
}

impl GradcheckCoverage {
    /// Loads the `CQ_GRADCHECK_LOG` vouch list once, at construction.
    pub fn from_env() -> Self {
        let logged = std::env::var("CQ_GRADCHECK_LOG")
            .ok()
            .and_then(|path| std::fs::read_to_string(path).ok())
            .map(|text| {
                text.lines()
                    .filter_map(|l| l.strip_prefix("gradcheck layer="))
                    .filter_map(|rest| rest.split_whitespace().next())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        GradcheckCoverage { logged }
    }
}

impl Analysis for GradcheckCoverage {
    fn lint(&self) -> &'static str {
        "gradcheck-coverage"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        // A `check_layer` / `check_layer_with` call anywhere in the file
        // (its trailing test module included — that is where gradcheck
        // tests live) vouches for every impl in the file.
        let has_gradcheck =
            (0..file.code.len()).any(|i| file.code_text(i).starts_with("check_layer"));
        if has_gradcheck {
            return;
        }
        for i in 0..file.code.len() {
            let hit = file.matches(
                i,
                &[
                    Pat::Ident("impl"),
                    Pat::Ident("Layer"),
                    Pat::Ident("for"),
                    Pat::AnyIdent,
                ],
            );
            if !hit {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) {
                continue;
            }
            let name = file.code_text(i + 3).to_string();
            if self.logged.iter().any(|l| l == &name) {
                continue; // a gradcheck elsewhere logged this kind
            }
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                format!(
                    "`impl Layer for {name}` has no gradcheck coverage in this file \
                     (add a check_layer test or log it via CQ_GRADCHECK_LOG)"
                ),
            ));
        }
    }
}

/// The seven source lints plus gradcheck coverage, ready to run.
pub fn source_analyses() -> Vec<Box<dyn Analysis>> {
    vec![
        Box::new(NoUnwrap),
        Box::new(NoPrintln),
        Box::new(ObsNames),
        Box::new(NoRawThreads),
        Box::new(OneTrainLoop),
        Box::new(NoNaiveHotLoop),
        Box::new(NoEagerForward),
        Box::new(GradcheckCoverage::from_env()),
    ]
}

/// Runs every source analysis — the eight lints plus the determinism
/// auditor — over the workspace at `root` in a single pass per file.
///
/// The two families must share one [`analyze_file`] run: suppression
/// matching is per-file across *all* findings, so a `cq-allow(det-…)`
/// comment would be falsely reported stale by a lint-only scan.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let lints = source_analyses();
    let det = crate::determinism::determinism_analyses();
    let refs: Vec<&dyn Analysis> = lints.iter().chain(det.iter()).map(Box::as_ref).collect();
    run_source_passes(root, &refs)
}

/// The workspace root this binary was compiled in (two levels above the
/// crate manifest).
pub fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(rel: &str, src: &str, a: &dyn Analysis) -> Vec<Finding> {
        let file = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        analyze_file(&file, &[a], &mut out);
        out
    }

    fn unsuppressed(findings: &[Finding], lint: &str) -> usize {
        findings
            .iter()
            .filter(|f| f.lint == lint && !f.suppressed)
            .count()
    }

    #[test]
    fn flags_unmarked_unwrap_and_expect() {
        let src = "fn f() {\n    let v = thing.unwrap();\n    let w = o.expect(\"msg\");\n}\n";
        let out = check_one("x.rs", src, &NoUnwrap);
        assert_eq!(unsuppressed(&out, "no-unwrap"), 2, "{out:?}");
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].line, 3);
    }

    #[test]
    fn unwrap_in_string_comment_and_tests_is_ignored() {
        let src = concat!(
            "fn f() {\n",
            "    // docs may mention .unwrap() freely\n",
            "    /* block: .expect(\"x\") */\n",
            "    let s = \"call .unwrap() here\";\n",
            "    let t = r#\"raw .expect(\"y\") \"#;\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod t {\n",
            "    fn g() { thing.unwrap(); }\n",
            "}\n"
        );
        let out = check_one("x.rs", src, &NoUnwrap);
        assert_eq!(unsuppressed(&out, "no-unwrap"), 0, "{out:?}");
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }\n";
        let out = check_one("x.rs", src, &NoUnwrap);
        assert_eq!(unsuppressed(&out, "no-unwrap"), 0, "{out:?}");
    }

    #[test]
    fn allow_marker_suppresses_unwrap() {
        let same = "fn f() {\n    v.unwrap(); // cq-allow(no-unwrap): fine here\n}\n";
        let prev = "fn f() {\n    // cq-allow(no-unwrap): fine here\n    v.unwrap();\n}\n";
        for src in [same, prev] {
            let out = check_one("x.rs", src, &NoUnwrap);
            assert_eq!(unsuppressed(&out, "no-unwrap"), 0, "{src}");
        }
    }

    #[test]
    fn flags_println_but_not_eprintln_or_strings() {
        let src = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n    let s = \"println!(z)\";\n}\n";
        let out = check_one("x.rs", src, &NoPrintln);
        assert_eq!(unsuppressed(&out, "no-println"), 1, "{out:?}");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn println_exempt_in_main_rs() {
        let src = "fn main() { println!(\"report\"); }\n";
        let out = check_one("crates/bench/src/main.rs", src, &NoPrintln);
        assert_eq!(unsuppressed(&out, "no-println"), 0, "{out:?}");
    }

    #[test]
    fn obs_names_flags_literals_but_not_constants() {
        let src = concat!(
            "fn f() {\n",
            "    cq_obs::metric(\"train.loss\", 0, 1.0);\n",
            "    cq_obs::metric(cq_obs::names::TRAIN_LOSS, 0, 1.0);\n",
            "    cq_obs::histogram(\"quant.bits\", 4.0);\n",
            "    cq_obs::histogram(cq_obs::names::QUANT_BITS, 4.0);\n",
            "}\n"
        );
        let out = check_one("x.rs", src, &ObsNames);
        assert_eq!(unsuppressed(&out, "obs-names"), 2, "{out:?}");
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].line, 4);
    }

    #[test]
    fn obs_names_catches_literal_after_line_break_and_comment() {
        // The token stream sees through both the line break and an
        // interleaved comment — cases the old line-local grep missed.
        let src = "fn f() {\n    cq_obs::metric( // series\n        \"ad.hoc\", 0, 1.0);\n}\n";
        let out = check_one("x.rs", src, &ObsNames);
        assert_eq!(unsuppressed(&out, "obs-names"), 1, "{out:?}");
    }

    #[test]
    fn no_raw_threads_flags_tests_too_and_exempts_par() {
        let src = "fn f() {\n    crossbeam::scope(|s| {});\n}\n#[cfg(test)]\nmod t {\n    fn g() { crossbeam::scope(|s| {}); }\n}\n";
        let out = check_one("crates/nn/src/conv.rs", src, &NoRawThreads);
        assert_eq!(unsuppressed(&out, "no-raw-threads"), 2, "{out:?}");
        let out = check_one("crates/tensor/src/par.rs", src, &NoRawThreads);
        assert_eq!(unsuppressed(&out, "no-raw-threads"), 0, "{out:?}");
        // A doc comment naming crossbeam:: is not a use.
        let out = check_one(
            "crates/nn/src/conv.rs",
            "// crossbeam::scope was removed in PR 4\nfn f() {}\n",
            &NoRawThreads,
        );
        assert_eq!(unsuppressed(&out, "no-raw-threads"), 0, "{out:?}");
    }

    #[test]
    fn one_train_loop_flags_epoch_loops_and_raw_rng_in_core() {
        let src = "fn f(cfg: &C) {\n    for e in 0..cfg.epochs {}\n    let r = StdRng::seed_from_u64(7);\n}\n";
        let out = check_one("crates/core/src/simclr.rs", src, &OneTrainLoop);
        assert_eq!(unsuppressed(&out, "one-train-loop"), 2, "{out:?}");
        assert!(out[1].message.contains("CqRng"));
        // engine.rs owns the loop; other crates may iterate epochs freely.
        for rel in ["crates/core/src/engine.rs", "crates/eval/src/probe.rs"] {
            let out = check_one(rel, src, &OneTrainLoop);
            assert_eq!(unsuppressed(&out, "one-train-loop"), 0, "{rel}: {out:?}");
        }
    }

    #[test]
    fn gradcheck_lint_finds_uncovered_impls() {
        let src = "impl Layer for Conv9 {\n}\n";
        let out = check_one("x.rs", src, &GradcheckCoverage { logged: vec![] });
        assert_eq!(unsuppressed(&out, "gradcheck-coverage"), 1, "{out:?}");
        assert!(out[0].message.contains("Conv9"));

        let covered = "impl Layer for Conv9 {\n}\n#[cfg(test)]\nmod t {\n    fn g() { check_layer_with(x); }\n}\n";
        let out = check_one("x.rs", covered, &GradcheckCoverage { logged: vec![] });
        assert_eq!(unsuppressed(&out, "gradcheck-coverage"), 0, "{out:?}");

        let logged = GradcheckCoverage {
            logged: vec!["Conv9".into()],
        };
        let out = check_one("x.rs", src, &logged);
        assert_eq!(unsuppressed(&out, "gradcheck-coverage"), 0, "{out:?}");
    }

    #[test]
    fn test_impls_are_ignored() {
        let src = "fn f() {}\n#[cfg(test)]\nmod t {\n    impl Layer for Fake {}\n}\n";
        let out = check_one("x.rs", src, &GradcheckCoverage { logged: vec![] });
        assert_eq!(unsuppressed(&out, "gradcheck-coverage"), 0, "{out:?}");
    }

    #[test]
    fn naive_hot_loop_flags_triple_nested_mac() {
        let src = concat!(
            "fn mm(a: &[f32], b: &[f32], out: &mut [f32], n: usize) {\n",
            "    for i in 0..n {\n",
            "        for kk in 0..n {\n",
            "            for j in 0..n {\n",
            "                out[i * n + j] += a[i * n + kk] * b[kk * n + j];\n",
            "            }\n",
            "        }\n",
            "    }\n",
            "}\n"
        );
        let out = check_one("crates/nn/src/x.rs", src, &NoNaiveHotLoop);
        assert_eq!(unsuppressed(&out, "no-naive-hot-loop"), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
        // The gemm directory is the blessed home of the reference nest.
        let out = check_one("crates/tensor/src/gemm/reference.rs", src, &NoNaiveHotLoop);
        assert_eq!(unsuppressed(&out, "no-naive-hot-loop"), 0, "{out:?}");
    }

    #[test]
    fn naive_hot_loop_ignores_shallow_nests_and_data_movement() {
        // Two loops: an axpy, not a GEMM.
        let two = "fn f(n: usize) {\n    for i in 0..n {\n        for j in 0..n {\n            out[i] += a[j] * b[j];\n        }\n    }\n}\n";
        assert_eq!(
            unsuppressed(
                &check_one("x.rs", two, &NoNaiveHotLoop),
                "no-naive-hot-loop"
            ),
            0
        );
        // col2im-style scatter: multiplies only inside index brackets.
        let scatter = concat!(
            "fn g(n: usize) {\n",
            "    for c in 0..n {\n",
            "        for oy in 0..n {\n",
            "            for ox in 0..n {\n",
            "                out[iy * w + ix] += cols[c * n + oy * n + ox];\n",
            "            }\n",
            "        }\n",
            "    }\n",
            "}\n"
        );
        assert_eq!(
            unsuppressed(
                &check_one("x.rs", scatter, &NoNaiveHotLoop),
                "no-naive-hot-loop"
            ),
            0
        );
        // A deref on the RHS is not a multiply.
        let deref = "fn h(n: usize) {\n    for a in 0..n {\n        for b in 0..n {\n            for c in 0..n {\n                acc += *p;\n            }\n        }\n    }\n}\n";
        assert_eq!(
            unsuppressed(
                &check_one("x.rs", deref, &NoNaiveHotLoop),
                "no-naive-hot-loop"
            ),
            0
        );
        // `impl Trait for Type` braces are not loop bodies.
        let impl_for = concat!(
            "impl Trait for Conv {\n",
            "    fn f(&self, n: usize) {\n",
            "        for i in 0..n {\n",
            "            for j in 0..n {\n",
            "                acc += a[i] * b[j];\n",
            "            }\n",
            "        }\n",
            "    }\n",
            "}\n"
        );
        assert_eq!(
            unsuppressed(
                &check_one("x.rs", impl_for, &NoNaiveHotLoop),
                "no-naive-hot-loop"
            ),
            0
        );
    }

    #[test]
    fn naive_hot_loop_allow_marker_suppresses() {
        let src = concat!(
            "fn mm(n: usize) {\n",
            "    for i in 0..n {\n",
            "        for kk in 0..n {\n",
            "            // cq-allow(no-naive-hot-loop): tiny fixed-size stencil\n",
            "            for j in 0..n {\n",
            "                out[i] += a[kk] * b[j];\n",
            "            }\n",
            "        }\n",
            "    }\n",
            "}\n"
        );
        // The marker is on the line preceding the `for`, not the `+=` —
        // place it adjacent to the finding line instead.
        let adjacent = src.replace(
            "            // cq-allow(no-naive-hot-loop): tiny fixed-size stencil\n            for j in 0..n {\n",
            "            for j in 0..n {\n                // cq-allow(no-naive-hot-loop): tiny fixed-size stencil\n",
        );
        let out = check_one("x.rs", &adjacent, &NoNaiveHotLoop);
        assert_eq!(unsuppressed(&out, "no-naive-hot-loop"), 0, "{out:?}");
    }

    #[test]
    fn eager_forward_flags_element_mutation_in_forward_bodies() {
        let src = concat!(
            "impl Layer for Thing {\n",
            "    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {\n",
            "        let mut y = x.clone();\n",
            "        for v in y.as_mut_slice().iter_mut() {\n",
            "            *v = v.max(0.0);\n",
            "        }\n",
            "        Ok(y)\n",
            "    }\n",
            "    fn backward(&self, dy: &Tensor) -> Result<Tensor> {\n",
            "        let mut dx = dy.clone();\n",
            "        for v in dx.as_mut_slice().iter_mut() {}\n", // backward may mutate
            "        Ok(dx)\n",
            "    }\n",
            "}\n"
        );
        let out = check_one("crates/nn/src/foo.rs", src, &NoEagerForward);
        assert_eq!(unsuppressed(&out, "no-eager-forward"), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        // Other crates and the executor itself are out of scope.
        for rel in ["crates/core/src/foo.rs", "crates/nn/src/graph.rs"] {
            let out = check_one(rel, src, &NoEagerForward);
            assert_eq!(unsuppressed(&out, "no-eager-forward"), 0, "{rel}: {out:?}");
        }
    }

    #[test]
    fn eager_forward_flags_fake_quant_anywhere_in_scope() {
        // fake_quant_into is flagged even outside a forward body: the
        // executor owns the only blessed call site.
        let src = "fn helper(buf: &mut [f32]) {\n    fake_quant_into(buf, p, m);\n}\n";
        let out = check_one("crates/models/src/foo.rs", src, &NoEagerForward);
        assert_eq!(unsuppressed(&out, "no-eager-forward"), 1, "{out:?}");
        assert!(out[0].message.contains("graph executor"), "{out:?}");
        // The import alone (no call parenthesis after the path) is fine.
        let import = "use cq_quant::fake_quant_into;\n";
        let out = check_one("crates/models/src/foo.rs", import, &NoEagerForward);
        assert_eq!(unsuppressed(&out, "no-eager-forward"), 0, "{out:?}");
    }

    #[test]
    fn eager_forward_allow_marker_and_closures_behave() {
        let allowed = concat!(
            "fn forward(x: &Tensor) -> Tensor {\n",
            "    // cq-allow(no-eager-forward): stats bookkeeping, not the data path\n",
            "    x.as_mut_slice();\n",
            "    x\n",
            "}\n"
        );
        let out = check_one("crates/nn/src/foo.rs", allowed, &NoEagerForward);
        assert_eq!(unsuppressed(&out, "no-eager-forward"), 0, "{out:?}");
        // Mutation inside a closure nested in forward is still forward-path.
        let closure = concat!(
            "fn forward(x: &Tensor) -> Tensor {\n",
            "    run(|| {\n",
            "        x.iter_mut();\n",
            "    });\n",
            "    x\n",
            "}\n",
            "fn other(y: &Tensor) {\n",
            "    y.iter_mut();\n", // not a forward body
            "}\n"
        );
        let out = check_one("crates/nn/src/foo.rs", closure, &NoEagerForward);
        assert_eq!(unsuppressed(&out, "no-eager-forward"), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn repo_sources_pass_all_source_lints() {
        let findings = lint_workspace(&default_root());
        let bad: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
        assert!(bad.is_empty(), "violations:\n{bad:#?}");
        // The gate is live, not vacuous: the workspace carries real,
        // justified suppressions that these passes matched.
        assert!(findings.iter().any(|f| f.suppressed));
    }

    #[test]
    fn workspace_sources_skip_bin_target_vendor_and_symlinks() {
        use std::fs;
        let base = std::env::temp_dir().join(format!("cq-ws-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let src = base.join("crates/alpha/src");
        fs::create_dir_all(src.join("sub")).unwrap();
        fs::create_dir_all(src.join("bin")).unwrap();
        fs::create_dir_all(src.join("target/debug")).unwrap();
        fs::create_dir_all(src.join("vendor/dep")).unwrap();
        fs::create_dir_all(src.join(".hidden")).unwrap();
        for (p, body) in [
            ("lib.rs", "pub fn a() {}"),
            ("sub/mod.rs", "pub fn b() {}"),
            ("bin/tool.rs", "fn main() {}"),
            ("target/debug/gen.rs", "fn junk() {}"),
            ("vendor/dep/lib.rs", "fn dep() {}"),
            (".hidden/x.rs", "fn hidden() {}"),
        ] {
            fs::write(src.join(p), body).unwrap();
        }
        #[cfg(unix)]
        {
            // A directory cycle and a file link — neither may be walked.
            std::os::unix::fs::symlink(&base, src.join("loop")).unwrap();
            std::os::unix::fs::symlink(src.join("lib.rs"), src.join("linked.rs")).unwrap();
        }
        let files = workspace_sources(&base);
        let rels: Vec<String> = files
            .iter()
            .map(|f| f.strip_prefix(&base).unwrap().display().to_string())
            .collect();
        assert_eq!(
            rels,
            vec![
                "crates/alpha/src/lib.rs".to_string(),
                "crates/alpha/src/sub/mod.rs".to_string()
            ],
            "walked set must pin exactly the library sources"
        );
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn repo_workspace_sources_are_library_code_only() {
        let files = workspace_sources(&default_root());
        assert!(!files.is_empty());
        for f in &files {
            let has = |n: &str| f.components().any(|c| c.as_os_str() == n);
            assert!(!has("bin") && !has("target") && !has("vendor"), "{f:?}");
        }
        assert!(files.iter().any(|f| f.ends_with("crates/nn/src/layer.rs")));
    }
}
