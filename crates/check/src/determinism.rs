//! Determinism auditor: token-level rules that keep the numeric paths
//! bitwise-reproducible.
//!
//! The repo's reproducibility story (golden traces, CQTS resume, the
//! thread-determinism tests) only holds if numeric code avoids the three
//! classic entropy leaks: hash-order iteration, wall-clock-derived
//! values, and ad-hoc float reduction orders — plus RNG construction
//! outside the blessed plumbing. Four rules, each suppressible with a
//! `cq-allow(<lint>): <reason>` where a site is genuinely benign:
//!
//! | lint              | flags                                          |
//! |-------------------|------------------------------------------------|
//! | `det-hash-iter`   | `HashMap`/`HashSet` in numeric library code — iteration order varies per process (SipHash keys are randomized), so any fold over one is run-dependent. Use `BTreeMap`/`BTreeSet` or an indexed `Vec`. |
//! | `det-time-source` | `SystemTime::now`/`Instant::now` in numeric library code — a clock read adjacent to seeded numerics is how "seeded" runs drift. Telemetry layers (cq-obs, cq-trace, cq-bench) are out of scope. |
//! | `det-float-accum` | `.sum::<f32/f64>()` or `.fold(0.0, …)` outside `crates/tensor/src/reduce.rs` — float addition is non-associative, so accumulation order is part of the numeric contract; the blessed pairwise/chunk-ordered reducers pin it. |
//! | `det-rng-ctor`    | entropy-seeded RNGs (`thread_rng`, `from_entropy`) anywhere including tests, and seeded constructors (`StdRng::…`, `CqRng::…`) in numeric library code outside `crates/core/src/engine.rs` and the `crates/data` loader plumbing — scattered RNG streams cannot be captured by checkpoints. |
//!
//! Numeric crates: tensor, nn, quant, models, data, core, detect, eval.
//! The telemetry/analysis layers (obs, trace, bench, check) are excluded
//! — they sit outside the reproducible numeric core by design.

use crate::analysis::{Analysis, Finding, Pat, SourceFile};
use crate::lexer::TokenKind;

/// Pass name the determinism rules report under.
const PASS: &str = "determinism";

/// Crates whose library code must be bitwise-reproducible.
const NUMERIC_CRATES: [&str; 8] = [
    "tensor", "nn", "quant", "models", "data", "core", "detect", "eval",
];

/// The one file allowed to own accumulation order.
const REDUCE_RS: &str = "crates/tensor/src/reduce.rs";

/// The training engine owns the run's RNG lifecycle.
const ENGINE_RS: &str = "crates/core/src/engine.rs";

/// Loader plumbing derives per-worker streams from the run seed.
const DATA_SRC: &str = "crates/data/src/";

/// Whether `rel` is a library source of a numeric crate.
fn in_numeric_crate(rel: &str) -> bool {
    NUMERIC_CRATES
        .iter()
        .any(|c| rel.contains(&format!("crates/{c}/src/")))
}

/// det-hash-iter: `HashMap`/`HashSet` in numeric library code.
pub struct DetHashIter;

impl Analysis for DetHashIter {
    fn lint(&self) -> &'static str {
        "det-hash-iter"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        if !in_numeric_crate(&file.rel) {
            return;
        }
        for i in 0..file.code.len() {
            let name = file.code_text(i);
            if name != "HashMap" && name != "HashSet" {
                continue;
            }
            if file.code_tok(i).is_none_or(|t| t.kind != TokenKind::Ident) {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) {
                continue;
            }
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                format!(
                    "{name} in numeric code: iteration order is randomized per \
                     process; use BTreeMap/BTreeSet or an indexed Vec, or add \
                     `cq-allow(det-hash-iter): <reason>`"
                ),
            ));
        }
    }
}

/// det-time-source: `SystemTime::now`/`Instant::now` in numeric library
/// code.
pub struct DetTimeSource;

impl Analysis for DetTimeSource {
    fn lint(&self) -> &'static str {
        "det-time-source"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        if !in_numeric_crate(&file.rel) {
            return;
        }
        for i in 0..file.code.len() {
            let hit = file.matches(
                i,
                &[
                    Pat::IdentIn(&["SystemTime", "Instant"]),
                    Pat::PathSep,
                    Pat::Ident("now"),
                ],
            );
            if !hit {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) {
                continue;
            }
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                format!(
                    "{}::now in numeric code: wall-clock values adjacent to \
                     seeded numerics make runs drift; keep clocks in the \
                     telemetry layer, or add `cq-allow(det-time-source): <reason>` \
                     if the value provably never feeds a computation",
                    file.code_text(i)
                ),
            ));
        }
    }
}

/// det-float-accum: float accumulation outside the blessed reducers.
pub struct DetFloatAccum;

impl Analysis for DetFloatAccum {
    fn lint(&self) -> &'static str {
        "det-float-accum"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        if !in_numeric_crate(&file.rel) || file.rel.ends_with(REDUCE_RS) {
            return;
        }
        for i in 0..file.code.len() {
            // `.sum::<f32>()` / `.sum::<f64>()`
            let turbo_sum = file.matches(
                i,
                &[
                    Pat::Punct('.'),
                    Pat::Ident("sum"),
                    Pat::PathSep,
                    Pat::Punct('<'),
                    Pat::IdentIn(&["f32", "f64"]),
                ],
            );
            // `.fold(0.0, …)` — a float-zero seed marks a float reduction.
            let float_fold = file
                .matches(i, &[Pat::Punct('.'), Pat::Ident("fold"), Pat::Punct('(')])
                && file.code_tok(i + 3).is_some_and(|t| {
                    t.kind == TokenKind::Number && t.text(file.text).contains('.')
                });
            if !turbo_sum && !float_fold {
                continue;
            }
            let line = file.code_tok(i).map_or(0, |t| t.line);
            if file.is_test_line(line) {
                continue;
            }
            out.push(Finding::error(
                PASS,
                self.lint(),
                file.rel.clone(),
                line,
                format!(
                    "float accumulation outside {REDUCE_RS}: summation order is \
                     part of the numeric contract; use cq_tensor's pairwise/ \
                     chunk-ordered reducers, or add `cq-allow(det-float-accum): \
                     <reason>` when the order is fixed by construction"
                ),
            ));
        }
    }
}

/// det-rng-ctor: RNG construction outside the blessed plumbing.
pub struct DetRngCtor;

impl Analysis for DetRngCtor {
    fn lint(&self) -> &'static str {
        "det-rng-ctor"
    }

    fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        let rel = &file.rel;
        for i in 0..file.code.len() {
            let line = file.code_tok(i).map_or(0, |t| t.line);

            // Entropy-seeded RNGs are banned everywhere, tests included —
            // a test that passes under one OS entropy draw and fails under
            // another is worse than no test.
            let entropy = file.code_tok(i).is_some_and(|t| {
                t.kind == TokenKind::Ident
                    && matches!(t.text(file.text), "thread_rng" | "from_entropy")
            });
            if entropy {
                out.push(Finding::error(
                    PASS,
                    self.lint(),
                    rel.clone(),
                    line,
                    format!(
                        "entropy-seeded RNG ({}) — every stream must derive from \
                         the run seed; construct from a seed instead",
                        file.code_text(i)
                    ),
                ));
                continue;
            }

            // Seeded constructors are confined to the engine and loader
            // plumbing: scattered streams cannot be captured by CQTS
            // checkpoints, so bitwise resume breaks silently.
            if rel.ends_with(ENGINE_RS) || rel.contains(DATA_SRC) || !in_numeric_crate(rel) {
                continue;
            }
            if file.is_test_line(line) {
                continue;
            }
            let seeded = file.matches(
                i,
                &[
                    Pat::IdentIn(&["StdRng", "CqRng"]),
                    Pat::PathSep,
                    Pat::IdentIn(&["seed_from_u64", "from_seed", "new"]),
                ],
            );
            if !seeded {
                continue;
            }
            out.push(Finding::error(
                PASS,
                self.lint(),
                rel.clone(),
                line,
                format!(
                    "RNG constructed outside {ENGINE_RS}/loader plumbing: streams \
                     born here are invisible to checkpoints, breaking bitwise \
                     resume; thread an Rng in from the engine, or add \
                     `cq-allow(det-rng-ctor): <reason>` (e.g. a fixed-seed \
                     utility whose stream is not part of training state)"
                ),
            ));
        }
    }
}

/// The four determinism rules, ready to run alongside the source lints.
pub fn determinism_analyses() -> Vec<Box<dyn Analysis>> {
    vec![
        Box::new(DetHashIter),
        Box::new(DetTimeSource),
        Box::new(DetFloatAccum),
        Box::new(DetRngCtor),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_file;

    fn check_one(rel: &str, src: &str, a: &dyn Analysis) -> Vec<Finding> {
        let file = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        analyze_file(&file, &[a], &mut out);
        out
    }

    fn unsuppressed(findings: &[Finding], lint: &str) -> usize {
        findings
            .iter()
            .filter(|f| f.lint == lint && !f.suppressed)
            .count()
    }

    const NUMERIC: &str = "crates/nn/src/x.rs";

    #[test]
    fn hash_iter_flagged_in_numeric_crates_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f32> = HashMap::new(); }\n";
        let out = check_one(NUMERIC, src, &DetHashIter);
        assert!(unsuppressed(&out, "det-hash-iter") >= 1, "{out:?}");
        // Telemetry layer is out of scope.
        let out = check_one("crates/obs/src/x.rs", src, &DetHashIter);
        assert_eq!(unsuppressed(&out, "det-hash-iter"), 0, "{out:?}");
        // BTree collections are fine.
        let out = check_one(NUMERIC, "use std::collections::BTreeMap;\n", &DetHashIter);
        assert_eq!(unsuppressed(&out, "det-hash-iter"), 0, "{out:?}");
        // Mentions in docs/strings are not uses.
        let out = check_one(
            NUMERIC,
            "// replaced a HashMap here\nfn f() {}\n",
            &DetHashIter,
        );
        assert_eq!(unsuppressed(&out, "det-hash-iter"), 0, "{out:?}");
    }

    #[test]
    fn time_source_flagged_outside_tests() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let out = check_one(NUMERIC, src, &DetTimeSource);
        assert_eq!(unsuppressed(&out, "det-time-source"), 1, "{out:?}");
        let test_src =
            "#[cfg(test)]\nmod t {\n    fn g() { let t = std::time::Instant::now(); }\n}\n";
        let out = check_one(NUMERIC, test_src, &DetTimeSource);
        assert_eq!(unsuppressed(&out, "det-time-source"), 0, "{out:?}");
        let sys = "fn f() { let t = SystemTime::now(); }\n";
        let out = check_one(NUMERIC, sys, &DetTimeSource);
        assert_eq!(unsuppressed(&out, "det-time-source"), 1, "{out:?}");
    }

    #[test]
    fn float_accum_flags_sum_and_fold_but_not_reduce_rs() {
        let src = "fn f(v: &[f32]) -> f32 {\n    let a = v.iter().sum::<f32>();\n    let b = v.iter().fold(0.0f32, |s, x| s + x);\n    a + b\n}\n";
        let out = check_one(NUMERIC, src, &DetFloatAccum);
        assert_eq!(unsuppressed(&out, "det-float-accum"), 2, "{out:?}");
        let out = check_one("crates/tensor/src/reduce.rs", src, &DetFloatAccum);
        assert_eq!(unsuppressed(&out, "det-float-accum"), 0, "{out:?}");
        // Integer folds are order-independent.
        let int_src = "fn f(v: &[usize]) -> usize { v.iter().fold(0, |s, x| s + x) }\n";
        let out = check_one(NUMERIC, int_src, &DetFloatAccum);
        assert_eq!(unsuppressed(&out, "det-float-accum"), 0, "{out:?}");
        let int_sum = "fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }\n";
        let out = check_one(NUMERIC, int_sum, &DetFloatAccum);
        assert_eq!(unsuppressed(&out, "det-float-accum"), 0, "{out:?}");
    }

    #[test]
    fn rng_ctor_rules() {
        // Entropy RNG: flagged even in tests, even outside numeric crates.
        let src = "#[cfg(test)]\nmod t {\n    fn g() { let r = rand::thread_rng(); }\n}\n";
        let out = check_one("crates/obs/src/x.rs", src, &DetRngCtor);
        assert_eq!(unsuppressed(&out, "det-rng-ctor"), 1, "{out:?}");

        // Seeded ctor in a numeric crate: flagged.
        let seeded = "fn f() { let r = CqRng::seed_from_u64(7); }\n";
        let out = check_one(NUMERIC, seeded, &DetRngCtor);
        assert_eq!(unsuppressed(&out, "det-rng-ctor"), 1, "{out:?}");

        // ...but not in the engine, loader plumbing, or test code.
        for rel in ["crates/core/src/engine.rs", "crates/data/src/loader.rs"] {
            let out = check_one(rel, seeded, &DetRngCtor);
            assert_eq!(unsuppressed(&out, "det-rng-ctor"), 0, "{rel}: {out:?}");
        }
        let test_seeded =
            "#[cfg(test)]\nmod t {\n    fn g() { let r = CqRng::seed_from_u64(7); }\n}\n";
        let out = check_one(NUMERIC, test_seeded, &DetRngCtor);
        assert_eq!(unsuppressed(&out, "det-rng-ctor"), 0, "{out:?}");
    }

    #[test]
    fn allow_comment_excuses_a_justified_site() {
        let src = "fn f() {\n    // cq-allow(det-time-source): telemetry only, never feeds numerics\n    let t = Instant::now();\n}\n";
        let out = check_one(NUMERIC, src, &DetTimeSource);
        assert_eq!(unsuppressed(&out, "det-time-source"), 0, "{out:?}");
        assert!(out
            .iter()
            .any(|f| f.lint == "det-time-source" && f.suppressed));
    }
}
