//! # cq-check
//!
//! Static analyzer for the contrastive-quant training stack. Three passes
//! (see DESIGN.md §"Verification & static analysis"):
//!
//! 1. **Config pass** ([`configs`]) — symbolically interprets every
//!    built-in table/figure configuration (all scales × regimes ×
//!    architectures × pipelines) through the [`cq_nn::spec::Plan`] IR,
//!    proving shapes, parameter counts and FLOPs are well-defined without
//!    allocating a single tensor.
//! 2. **Negative pass** ([`configs::negative_checks`]) — asserts that
//!    deliberately broken configurations (projector input dim off by one,
//!    1-bit quantizer, batch size 1, …) are *rejected* with
//!    layer-attributed errors, guarding the validators themselves against
//!    rot.
//! 3. **Lint pass** ([`lint`]) — scans the workspace sources, denying
//!    `unwrap`/`expect` in library code (escape hatch: a
//!    `cq-check: allow — <reason>` marker on the same or preceding line)
//!    and requiring every `Layer` impl to carry gradcheck coverage.
//!
//! The `cq-check` binary runs all three and exits non-zero on any
//! violation, making it usable as a CI gate.

#![deny(missing_docs)]

pub mod configs;
pub mod lint;

/// One finding of any pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Pass that produced the finding (`configs`, `negative`, `lint`).
    pub pass: &'static str,
    /// Where: a config label or `file:line`.
    pub location: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.pass, self.location, self.message)
    }
}
