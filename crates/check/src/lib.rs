//! # cq-check
//!
//! Static analyzer for the contrastive-quant training stack (see
//! DESIGN.md §12 "Static analysis architecture"). Six passes share one
//! finding model ([`analysis::Finding`]) and one suppression/baseline
//! system:
//!
//! 1. **Config pass** ([`configs`]) — symbolically interprets every
//!    built-in table/figure configuration (all scales × regimes ×
//!    architectures × pipelines) through the [`cq_nn::spec::Plan`] IR,
//!    proving shapes, parameter counts and FLOPs are well-defined without
//!    allocating a single tensor.
//! 2. **Negative pass** ([`configs::negative_checks`]) — asserts that
//!    deliberately broken configurations (projector input dim off by one,
//!    1-bit quantizer, batch size 1, …) are *rejected* with
//!    layer-attributed errors, guarding the validators themselves against
//!    rot.
//! 3. **Graph pass** ([`graphcheck`]) — lowers every built-in encoder
//!    config to the [`cq_nn::graph::Graph`] op IR and proves plan and
//!    graph agree on shapes, FLOPs, and per-layer attribution, and that
//!    the statically predicted fusable elementwise chains exist.
//! 4. **Quant dataflow** ([`quantflow`]) — propagates per-layer clip
//!    bounds through every built-in encoder plan, verifying grid
//!    representability at every supported bit-width and i32-accumulator
//!    fit at the integer-inference widths.
//! 5. **Lint pass** ([`lint`]) — token-aware source lints (no-unwrap,
//!    no-println, obs-names, no-raw-threads, one-train-loop,
//!    gradcheck-coverage, no-eager-forward) over the workspace's library
//!    crates.
//! 6. **Determinism pass** ([`determinism`]) — audits numeric code for
//!    hash-order iteration, wall-clock reads, unblessed float
//!    accumulation, and RNG construction outside the engine/loader.
//!
//! The token stream comes from the vendored zero-dependency lexer in
//! [`lexer`]; passes plug in via the [`analysis::Analysis`] trait.
//! Justified findings are excused inline with `cq-allow(<lint>): <reason>`
//! comments or centrally via a committed baseline file; the binary's exit
//! codes (0 clean / 1 errors / 2 usage / 3 warnings-only) are a stable CI
//! contract documented in [`analysis`].

#![deny(missing_docs)]

pub mod analysis;
pub mod configs;
pub mod determinism;
pub mod graphcheck;
pub mod lexer;
pub mod lint;
pub mod quantflow;

pub use analysis::{Analysis, Finding, Severity};
