//! `cq-check` — static analysis gate for the contrastive-quant stack.
//!
//! Runs three passes (config validation, negative checks, source lints)
//! and exits non-zero on any violation. Usage:
//!
//! ```text
//! cq-check [--root <workspace>] [--verbose]
//! ```
//!
//! `--verbose` prints a per-config table (feature/projector dims,
//! parameter counts, FLOPs) for every built-in experiment configuration.

use std::path::PathBuf;
use std::process::ExitCode;

use cq_check::{configs, lint};

fn main() -> ExitCode {
    let mut root = lint::default_root();
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                if let Some(v) = args.next() {
                    root = PathBuf::from(v);
                }
            }
            "--verbose" | "-v" => verbose = true,
            other => {
                eprintln!("cq-check: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let mut violations = Vec::new();

    let (reports, mut config_violations) = configs::validate_builtin();
    println!(
        "[configs]  {} built-in encoder configs statically sound, {} violations",
        reports.len(),
        config_violations.len()
    );
    if verbose {
        println!(
            "  {:<40} {:>6} {:>6} {:>10} {:>14}",
            "config", "feat", "out", "params", "flops"
        );
        for r in &reports {
            println!(
                "  {:<40} {:>6} {:>6} {:>10} {:>14}",
                r.label, r.feat_dim, r.out_dim, r.params, r.flops
            );
        }
    }
    violations.append(&mut config_violations);

    let mut negative_violations = configs::negative_checks();
    println!(
        "[negative] broken-config rejection checks: {} violations",
        negative_violations.len()
    );
    violations.append(&mut negative_violations);

    let mut lint_violations = lint::lint_workspace(&root);
    let scanned = lint::workspace_sources(&root).len();
    println!(
        "[lint]     scanned {scanned} library sources under {}: {} violations",
        root.display(),
        lint_violations.len()
    );
    // An empty scan means the root is wrong (typo'd --root, moved tree);
    // reporting PASS over zero files would make the gate vacuous.
    if scanned == 0 {
        violations.push(cq_check::Violation {
            pass: "lint",
            location: root.display().to_string(),
            message: "no library sources found under this root (wrong --root?)".into(),
        });
    }
    violations.append(&mut lint_violations);

    if violations.is_empty() {
        println!("cq-check: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("cq-check: FAIL ({} violations)", violations.len());
        ExitCode::FAILURE
    }
}
