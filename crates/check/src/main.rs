//! `cq-check` — static analysis gate for the contrastive-quant stack.
//!
//! Runs six passes (config validation, negative checks, graph lowering,
//! quant-soundness dataflow, source lints, determinism audit) over the
//! workspace. Usage:
//!
//! ```text
//! cq-check [--root <workspace>] [--verbose] [--json]
//!          [--baseline <file>] [--write-baseline <file>]
//!          [--deny-warnings]
//! ```
//!
//! Exit codes (stable contract for CI consumers):
//!
//! | code | meaning                                          |
//! |------|--------------------------------------------------|
//! | 0    | no unsuppressed findings                         |
//! | 1    | at least one unsuppressed error-severity finding |
//! | 2    | usage error (unknown flag, unreadable baseline)  |
//! | 3    | unsuppressed warnings only (no errors)           |
//!
//! `--deny-warnings` promotes exit 3 to exit 1. `--json` prints the full
//! finding list (suppressed included) as a JSON array on stdout and
//! nothing else; exit codes are unchanged. `--write-baseline` snapshots
//! the current unsuppressed findings to a baseline file that a later
//! `--baseline` run tolerates (and reports stale entries of).

use std::path::PathBuf;
use std::process::ExitCode;

use cq_check::analysis::{findings_to_json, Baseline};
use cq_check::{configs, graphcheck, lint, quantflow, Finding, Severity};

/// Parsed command line.
struct Opts {
    root: PathBuf,
    verbose: bool,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    deny_warnings: bool,
}

/// Parses argv; `Err` carries a usage message (exit 2).
fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: lint::default_root(),
        verbose: false,
        json: false,
        baseline: None,
        write_baseline: None,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(
                    args.next().ok_or("--write-baseline needs a path")?,
                ));
            }
            "--verbose" | "-v" => opts.verbose = true,
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Collects every pass's findings in a stable order.
fn run_all(opts: &Opts, status: &mut Vec<String>) -> Vec<Finding> {
    let mut findings = Vec::new();

    let (reports, mut config_findings) = configs::validate_builtin();
    status.push(format!(
        "[configs]     {} built-in encoder configs statically sound, {} findings",
        reports.len(),
        config_findings.len()
    ));
    if opts.verbose && !opts.json {
        println!(
            "  {:<40} {:>6} {:>6} {:>10} {:>14}",
            "config", "feat", "out", "params", "flops"
        );
        for r in &reports {
            println!(
                "  {:<40} {:>6} {:>6} {:>10} {:>14}",
                r.label, r.feat_dim, r.out_dim, r.params, r.flops
            );
        }
    }
    findings.append(&mut config_findings);

    let mut negative_findings = configs::negative_checks();
    status.push(format!(
        "[negative]    broken-config rejection checks: {} findings",
        negative_findings.len()
    ));
    findings.append(&mut negative_findings);

    let (greports, mut graph_findings) = graphcheck::graph_soundness_builtin();
    let total_chains: usize = greports.iter().map(|r| r.fused_chains).sum();
    status.push(format!(
        "[graph]       {} configs lowered to the op graph, {} fusable chains predicted, {} findings",
        greports.len(),
        total_chains,
        graph_findings.len()
    ));
    if opts.verbose && !opts.json {
        println!(
            "  {:<40} {:>6} {:>14} {:>7} {:>9} {:>7}",
            "config", "nodes", "flops", "chains", "max chain", "quant"
        );
        for r in &greports {
            println!(
                "  {:<40} {:>6} {:>14} {:>7} {:>9} {:>7}",
                r.label, r.nodes, r.flops, r.fused_chains, r.max_chain_len, r.quantize_nodes
            );
        }
    }
    findings.append(&mut graph_findings);

    let (qreports, mut quant_findings) = quantflow::quant_soundness_builtin();
    let min_int_bits = qreports.iter().map(|r| r.max_int_bits).min().unwrap_or(0);
    status.push(format!(
        "[quant]       {} configs bound-propagated, min proven int-inference width {} bits, {} findings",
        qreports.len(),
        min_int_bits,
        quant_findings.len()
    ));
    if opts.verbose && !opts.json {
        println!(
            "  {:<40} {:>7} {:>12} {:>12} {:>9}",
            "config", "layers", "worst K", "max bound", "int bits"
        );
        for r in &qreports {
            println!(
                "  {:<40} {:>7} {:>12} {:>12.1} {:>9}",
                r.label, r.layers, r.worst_mac_taps, r.max_bound, r.max_int_bits
            );
        }
    }
    findings.append(&mut quant_findings);

    // One combined pass over the sources: lint_workspace runs the lints
    // and the determinism audit together so suppressions of either
    // family match (see its docs).
    let mut source_findings = lint::lint_workspace(&opts.root);
    let scanned = lint::workspace_sources(&opts.root).len();
    status.push(format!(
        "[lint+det]    scanned {scanned} library sources under {}: {} findings",
        opts.root.display(),
        source_findings.len()
    ));
    // An empty scan means the root is wrong (typo'd --root, moved tree);
    // reporting PASS over zero files would make the gate vacuous.
    if scanned == 0 {
        findings.push(Finding::error(
            "lint",
            "empty-scan",
            opts.root.display().to_string(),
            0,
            "no library sources found under this root (wrong --root?)",
        ));
    }
    findings.append(&mut source_findings);
    findings
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("cq-check: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut status = Vec::new();
    let mut findings = run_all(&opts, &mut status);

    if let Some(path) = &opts.baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let bl = Baseline::parse(&text);
                let mut stale = bl.apply(&mut findings);
                status.push(format!(
                    "[baseline]    {} entries from {}, {} stale",
                    bl.len(),
                    path.display(),
                    stale.len()
                ));
                findings.append(&mut stale);
            }
            Err(e) => {
                eprintln!("cq-check: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &opts.write_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cq-check: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        status.push(format!("[baseline]    wrote {}", path.display()));
    }

    let errors = findings
        .iter()
        .filter(|f| !f.suppressed && f.severity == Severity::Error)
        .count();
    let warnings = findings
        .iter()
        .filter(|f| !f.suppressed && f.severity == Severity::Warning)
        .count();
    let suppressed = findings.iter().filter(|f| f.suppressed).count();

    if opts.json {
        println!("{}", findings_to_json(&findings));
    } else {
        for line in &status {
            println!("{line}");
        }
        for f in &findings {
            if !f.suppressed {
                eprintln!("{f}");
            } else if opts.verbose {
                println!("{f}");
            }
        }
        if errors == 0 && warnings == 0 {
            println!("cq-check: PASS ({suppressed} suppressed findings)");
        } else {
            eprintln!(
                "cq-check: FAIL ({errors} errors, {warnings} warnings, {suppressed} suppressed)"
            );
        }
    }

    if errors > 0 {
        ExitCode::from(1)
    } else if warnings > 0 {
        if opts.deny_warnings {
            ExitCode::from(1)
        } else {
            ExitCode::from(3)
        }
    } else {
        ExitCode::SUCCESS
    }
}
