//! A small zero-dependency Rust lexer for static analysis.
//!
//! Produces a flat token stream with byte spans and line numbers. Unlike
//! the raw line-greps it replaced, the stream distinguishes *code* from
//! *trivia*: string literals (plain, raw, byte, C-string), char literals,
//! line/doc comments and (nested) block comments each become a single
//! token, so an analysis that walks [`Token::is_code`] tokens can never
//! be fooled by a pattern spelled inside a string or a comment.
//!
//! The lexer is tolerant by construction — it never fails. Unterminated
//! literals or stray bytes degrade to best-effort tokens covering the
//! rest of the input, which is the right behaviour for an analyzer that
//! must keep scanning a file the compiler would reject anyway. It is
//! *not* a full Rust lexer (no shebang handling, no float-suffix
//! splitting); it covers exactly what the analyses in this crate need:
//! identifiers, punctuation, literals and comments, correctly delimited.

use std::fmt;

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime (`'a`) or loop label (`'outer`).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A single punctuation byte (`.`, `:`, `(`, `!`, …).
    Punct,
    /// Line comment, including `///` and `//!` doc comments.
    LineComment,
    /// Block comment `/* … */`, nesting-aware, including `/** … */`.
    BlockComment,
    /// A byte the lexer does not recognise (kept for span continuity).
    Unknown,
}

/// One token: its kind, byte span in the source, and 1-based line number
/// of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within `src` (the same source it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whether the token participates in program semantics (not a
    /// comment). String/char literals *are* code — they are data the
    /// program manipulates — but analyses matching call or path patterns
    /// should match [`TokenKind::Ident`]/[`TokenKind::Punct`] sequences,
    /// which literals can never satisfy.
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether the token is a comment (line, doc or block).
    pub fn is_comment(&self) -> bool {
        !self.is_code()
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Ident => "ident",
            TokenKind::Lifetime => "lifetime",
            TokenKind::Number => "number",
            TokenKind::Str => "string",
            TokenKind::Char => "char",
            TokenKind::Punct => "punct",
            TokenKind::LineComment => "line-comment",
            TokenKind::BlockComment => "block-comment",
            TokenKind::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Lexes `src` into a token stream. Whitespace is skipped; every other
/// byte is covered by exactly one token. Never fails (see module docs).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' | b'c' => self.ident_or_prefixed_literal(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii() => self.push1(TokenKind::Punct),
                _ => self.unknown_utf8(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: usize) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line: start_line,
        });
    }

    fn push1(&mut self, kind: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        self.push(kind, start, self.line);
    }

    /// Advances past one byte, bumping the line counter on `\n`.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, start_line);
    }

    /// Nesting-aware block comment; an unterminated comment swallows the
    /// rest of the input (matching rustc's recovery).
    fn block_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, start, start_line);
    }

    /// A plain (escaped) string literal starting at its opening quote;
    /// `start` may precede `pos` when a `b`/`c` prefix was consumed.
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' if self.pos + 1 < self.bytes.len() => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Str, start, start_line);
    }

    /// A raw string literal: `pos` sits on the first `#` or the opening
    /// quote (after `r` / `br` / `cr`); `start` is the literal's start.
    fn raw_string(&mut self, start: usize) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            // `r#ident` raw identifier (or stray `r#`): rewind the hashes
            // and lex as an identifier instead.
            self.pos = start;
            self.raw_ident();
            return;
        }
        self.pos += 1; // opening quote
        'scan: while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                // A close needs `"` followed by exactly `hashes` `#`s.
                let mut seen = 0usize;
                while seen < hashes && self.peek(1 + seen) == Some(b'#') {
                    seen += 1;
                }
                if seen == hashes {
                    self.pos += 1 + hashes;
                    break 'scan;
                }
            }
            self.bump();
        }
        self.push(TokenKind::Str, start, start_line);
    }

    /// `r#ident` — the `r` and `#` bytes are part of the identifier.
    fn raw_ident(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 1; // `r`
        if self.peek(0) == Some(b'#') {
            self.pos += 1;
        }
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, start_line);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'`.
    fn char_or_lifetime(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        // Lifetime: `'` + ident-start, NOT followed by a closing `'`.
        if let Some(n1) = self.peek(1) {
            if is_ident_start(n1) && self.peek(2) != Some(b'\'') {
                self.pos += 2;
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.pos += 1;
                }
                self.push(TokenKind::Lifetime, start, start_line);
                return;
            }
        }
        // Char literal (possibly escaped or multibyte).
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' if self.pos + 1 < self.bytes.len() => {
                    self.bump();
                    self.bump();
                }
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // unterminated char: stop at end of line
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Char, start, start_line);
    }

    /// An identifier that may actually prefix a literal: `r"…"`, `r#"…"#`,
    /// `b"…"`, `b'…'`, `br#"…"#`, `c"…"`, `cr"…"`, `r#ident`.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        let b0 = self.bytes[self.pos];
        match (b0, self.peek(1)) {
            (b'r', Some(b'"' | b'#')) => {
                self.pos += 1;
                self.raw_string(start);
            }
            (b'b' | b'c', Some(b'"')) => {
                self.pos += 1;
                self.string(start);
            }
            (b'b', Some(b'\'')) => {
                self.pos += 1;
                // Reuse char scanning; the quote handler never produces a
                // lifetime after `b`, which rustc also forbids.
                let quote = self.pos;
                let start_line = self.line;
                self.pos = quote + 1;
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'\\' if self.pos + 1 < self.bytes.len() => {
                            self.bump();
                            self.bump();
                        }
                        b'\'' => {
                            self.pos += 1;
                            break;
                        }
                        b'\n' => break,
                        _ => self.bump(),
                    }
                }
                self.push(TokenKind::Char, start, start_line);
            }
            (b'b' | b'c', Some(b'r')) if matches!(self.peek(2), Some(b'"' | b'#')) => {
                self.pos += 2;
                self.raw_string(start);
            }
            _ => self.ident(),
        }
    }

    fn ident(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            // Defensive: caller guaranteed an ident-start byte.
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, start_line);
    }

    /// Numbers, including `0x…`/`0b…`/`0o…`, `1_000`, `1.5e-3`, `1f32`.
    /// The goal is span correctness, not numeric validation.
    fn number(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 1;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let is_num = b.is_ascii_alphanumeric() || b == b'_';
            // `1.5` continues the number; `1.max(2)` and `0..n` do not.
            let is_float_dot = b == b'.'
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                && self.bytes[self.pos - 1] != b'.';
            // Exponent sign: `1e-3` / `2.5E+10`.
            let is_exp_sign = (b == b'+' || b == b'-')
                && matches!(self.bytes[self.pos - 1], b'e' | b'E')
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                && self.bytes[start..self.pos]
                    .iter()
                    .any(|&c| c.is_ascii_digit());
            if is_num || is_float_dot || is_exp_sign {
                self.pos += 1;
            } else {
                break;
            }
        }
        // Trailing `1.` (float with no fractional digits, e.g. `1. + x`):
        // only when not part of `..`.
        if self.peek(0) == Some(b'.')
            && self.peek(1) != Some(b'.')
            && !self.peek(1).is_some_and(is_ident_start)
        {
            self.pos += 1;
        }
        self.push(TokenKind::Number, start, start_line);
    }

    /// A non-ASCII byte sequence outside any literal: cover the full
    /// UTF-8 scalar so spans stay on char boundaries.
    fn unknown_utf8(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        let ch_len = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.pos += ch_len;
        self.push(TokenKind::Unknown, start, start_line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("let x = foo.bar(1_000, 2.5e-3);");
        assert_eq!(toks[0], (TokenKind::Ident, "let"));
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
        assert_eq!(toks[2], (TokenKind::Punct, "="));
        assert!(toks.contains(&(TokenKind::Number, "1_000")));
        assert!(toks.contains(&(TokenKind::Number, "2.5e-3")));
    }

    #[test]
    fn range_dots_do_not_join_numbers() {
        let toks = kinds("for i in 0..n { a[i] = 1..=8; }");
        assert!(toks.contains(&(TokenKind::Number, "0")));
        assert!(toks.contains(&(TokenKind::Number, "1")));
        assert!(toks.contains(&(TokenKind::Number, "8")));
        assert!(!toks.iter().any(|(_, s)| s.contains("..")));
    }

    #[test]
    fn method_call_on_number_literal() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Number, "1"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[2], (TokenKind::Ident, "max"));
    }

    #[test]
    fn strings_swallow_contents() {
        let toks = kinds(r#"f("call .unwrap() inside", x)"#);
        assert!(toks.contains(&(TokenKind::Str, r#""call .unwrap() inside""#)));
        assert!(!toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && *s == "unwrap"));
    }

    #[test]
    fn escaped_quotes_stay_in_string() {
        let toks = kinds(r#"let s = "a\"b"; s.len()"#);
        assert!(toks.contains(&(TokenKind::Str, r#""a\"b""#)));
        assert!(toks.contains(&(TokenKind::Ident, "len")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"no "escape" here"#; t()"###;
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Str, r###"r#"no "escape" here"#"###)));
        assert!(toks.contains(&(TokenKind::Ident, "t")));
    }

    #[test]
    fn byte_and_cstrings() {
        let toks = kinds(r##"(b"bytes", br#"raw"#, c"cstr", b'\n')"##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3, "{toks:?}");
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Char && s.starts_with("b'")));
    }

    #[test]
    fn raw_ident_is_ident() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#fn")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert!(toks.contains(&(TokenKind::Char, "'a'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'")));
    }

    #[test]
    fn line_and_doc_comments() {
        let src = "// plain\n/// doc mentions .unwrap()\n//! inner\ncode()";
        let toks = lex(src);
        let comments: Vec<_> = toks.iter().filter(|t| t.is_comment()).collect();
        assert_eq!(comments.len(), 3);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "code" && t.line == 4));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ after()";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text(src).ends_with("comment */"));
        assert!(toks.iter().any(|t| t.text(src) == "after"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\n/* b\nc */\nlast";
        let toks = lex(src);
        let last = toks.iter().find(|t| t.text(src) == "last").unwrap();
        assert_eq!(last.line, 6);
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'", "x 'a"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
            // Every byte is covered or skipped; no panic, no loop.
        }
    }

    #[test]
    fn non_ascii_outside_literals() {
        let toks = kinds("let x = 1; // π in comment\nlet y = \"π\";");
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s.contains('π')));
    }
}
