//! # cq-quant
//!
//! Quantization substrate for the Contrastive Quant reproduction: the
//! paper's linear quantizer (Eq. 10), fake quantization with a
//! straight-through estimator, and the precision sets (§4.1) from which
//! Contrastive Quant samples bit-widths every training iteration.
//!
//! The paper uses quantization *as an augmentation*: the same weights θ are
//! evaluated under two bit-widths `q1`, `q2` sampled from a precision set
//! (e.g. 6–16), and feature consistency between the two quantized forward
//! passes is enforced. Everything needed for that lives here.
//!
//! # Example
//!
//! ```
//! use cq_quant::{PrecisionSet, Precision, QuantConfig};
//! use rand::SeedableRng;
//!
//! let set = PrecisionSet::range(6, 16)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let (q1, q2) = set.sample_pair(&mut rng);
//! let cfg = QuantConfig::uniform(q1);
//! assert!(matches!(cfg.weight, Precision::Bits(_)));
//! # Ok::<(), cq_quant::QuantError>(())
//! ```

#![deny(missing_docs)]

pub mod intmath;
mod precision;
mod quantizer;

pub use precision::{Precision, PrecisionSet, QuantError};
pub use quantizer::{
    fake_quant, fake_quant_into, fake_quant_scanned, quant_mse, quant_snr_db, QuantConfig,
    QuantMode, RangeScan,
};
