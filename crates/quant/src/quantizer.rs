//! The linear quantizer of Eq. 10 and fake-quantization helpers.
//!
//! Eq. 10 of the paper:
//!
//! ```text
//! A_q = S_a * round(A / S_a),   S_a = A_range / (2^q - 1)
//! ```
//!
//! where `A_range` is the dynamic range (max − min) of the tensor being
//! quantized. The paper prints the bracket as ⌊·⌋; its reference [5]
//! (Jacob et al.) and all standard linear quantizers round to nearest, so
//! rounding is the default here and floor is available as
//! [`QuantMode::Floor`] for an exact-notation ablation (see the
//! `quant_mode` bench).
//!
//! *Fake* quantization maps a float tensor onto the quantized grid while
//! staying in `f32`, so the surrounding network code is unchanged; the
//! backward pass uses the straight-through estimator (gradients pass
//! unchanged), the standard choice in quantization-aware training.

use cq_tensor::Tensor;

use crate::Precision;

// Fake-quantized element counter; no-op unless a cq-obs sink is installed.
static FAKE_QUANT_ELEMS: cq_obs::Counter = cq_obs::Counter::new("quant.fake_quant.elems");

/// Rounding rule used when projecting onto the quantization grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantMode {
    /// Round to nearest grid point (standard linear quantizer, default).
    #[default]
    Round,
    /// Floor to the grid point below (the paper's literal Eq. 10 notation).
    Floor,
}

/// Per-forward-pass quantization configuration: the precision applied to
/// weights and to activations, plus the rounding mode.
///
/// Contrastive Quant quantizes *both* weights and activations (§3.4); the
/// two fields let ablations decouple them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantConfig {
    /// Precision applied to model weights.
    pub weight: Precision,
    /// Precision applied to intermediate activations.
    pub act: Precision,
    /// Rounding rule.
    pub mode: QuantMode,
}

impl QuantConfig {
    /// Full-precision configuration (no quantization anywhere).
    pub fn fp() -> Self {
        QuantConfig {
            weight: Precision::Fp,
            act: Precision::Fp,
            mode: QuantMode::Round,
        }
    }

    /// Same precision for weights and activations — how the paper uses its
    /// sampled `q` values.
    pub fn uniform(p: Precision) -> Self {
        QuantConfig {
            weight: p,
            act: p,
            mode: QuantMode::Round,
        }
    }

    /// Whether this config performs any quantization.
    pub fn is_quantized(&self) -> bool {
        self.weight.is_quantized() || self.act.is_quantized()
    }

    /// Returns a copy using the given rounding mode.
    pub fn with_mode(mut self, mode: QuantMode) -> Self {
        self.mode = mode;
        self
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig::fp()
    }
}

/// Applies the Eq. 10 linear quantizer to `t`, returning the fake-quantized
/// tensor. `Precision::Fp` and constant tensors (zero dynamic range) are
/// returned unchanged.
pub fn fake_quant(t: &Tensor, precision: Precision, mode: QuantMode) -> Tensor {
    let mut out = t.clone();
    fake_quant_into(out.as_mut_slice(), precision, mode);
    out
}

/// Accumulated min/max/finiteness of a value stream — the reduction half
/// of [`fake_quant_into`], split out so a producing pass (e.g. the fused
/// graph executor) can gather it while each value is still in a register
/// and hand it to [`fake_quant_scanned`], eliding the quantizer's own
/// whole-buffer re-read.
///
/// Fold order is immaterial to the quantized output bits: `finite` is an
/// AND; `f32::min`/`f32::max` skip NaN and are associative and
/// commutative on every pair except the `-0.0`/`+0.0` tie, whose
/// representative may depend on fold order but can never change the
/// downstream result — `hi - lo` produces identical bits for either zero
/// (`x - (-0.0)` ≡ `x - (+0.0)` for all finite `x`), and an all-zero
/// tensor fails the `range > 0` gate with either sign. Merging per-chunk
/// partials in any deterministic order is therefore bit-identical to the
/// sequential sweep.
#[derive(Debug, Clone, Copy)]
pub struct RangeScan {
    lo: f32,
    hi: f32,
    finite: bool,
}

impl RangeScan {
    /// The fold identity: empty range, finite.
    pub fn new() -> Self {
        RangeScan {
            lo: f32::INFINITY,
            hi: f32::NEG_INFINITY,
            finite: true,
        }
    }

    /// Folds one value into the scan.
    #[inline]
    pub fn observe(&mut self, v: f32) {
        // f32::min/max skip NaN, so lo/hi alone can come out finite for a
        // tensor that contains NaN — track finiteness explicitly or the
        // finite entries would get snapped while the NaN slips through.
        self.finite &= v.is_finite();
        self.lo = self.lo.min(v);
        self.hi = self.hi.max(v);
    }

    /// Combines two partial scans (see the type docs for why any combine
    /// order yields identical quantized bits).
    pub fn merge(&mut self, other: RangeScan) {
        self.finite &= other.finite;
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
    }

    /// Sequential scan of a slice — exactly the sweep
    /// [`fake_quant_into`] performs internally.
    pub fn scan(data: &[f32]) -> Self {
        let mut s = RangeScan::new();
        for &v in data {
            s.observe(v);
        }
        s
    }
}

impl Default for RangeScan {
    fn default() -> Self {
        RangeScan::new()
    }
}

/// In-place variant of [`fake_quant`] operating on a raw slice; used on
/// hot paths to avoid an allocation.
pub fn fake_quant_into(data: &mut [f32], precision: Precision, mode: QuantMode) {
    if matches!(precision, Precision::Fp) || data.is_empty() {
        return;
    }
    let scan = RangeScan::scan(data);
    fake_quant_scanned(data, scan, precision, mode);
}

/// Applies the grid projection of [`fake_quant_into`] given a
/// precomputed [`RangeScan`] of exactly the current contents of `data`.
/// Bit-identical to [`fake_quant_into`] — same warnings, counters,
/// histogram and grid — without the quantizer's whole-buffer re-read;
/// the caller is responsible for `scan` matching `data`.
pub fn fake_quant_scanned(
    data: &mut [f32],
    scan: RangeScan,
    precision: Precision,
    mode: QuantMode,
) {
    let q = match precision {
        Precision::Fp => return,
        Precision::Bits(q) => q,
    };
    if data.is_empty() {
        return;
    }
    let RangeScan { lo, hi, finite } = scan;
    if !finite {
        cq_obs::warn_with(|| {
            format!(
                "fake_quant: tensor of {} elements contains NaN/Inf; left unquantized",
                data.len()
            )
        });
        return;
    }
    let range = hi - lo;
    if range <= 0.0 {
        return; // constant tensor: nothing to quantize
    }
    // Guarded 2^q − 1: a Precision::Bits(q) constructed outside 2..=16
    // (bypassing the parse-time validation in Precision::bits) must not
    // silently wrap the shift — warn and leave the tensor unquantized.
    let steps = match crate::intmath::grid_steps(q) {
        Ok(s) => s,
        Err(e) => {
            cq_obs::warn_with(|| format!("fake_quant: {e}; left unquantized"));
            return;
        }
    };
    // Clip-range and volume observability: the dynamic range drives the
    // quantization step (Eq. 10), so its distribution over a run is the
    // first thing to inspect when quantization noise looks wrong.
    cq_obs::histogram(cq_obs::names::QUANT_CLIP_RANGE, range as f64);
    FAKE_QUANT_ELEMS.add(data.len() as u64);
    let step = range / steps as f32;
    match mode {
        QuantMode::Round => {
            // Round-half-away-from-zero: the pinned grid-projection rule
            // shared with the i8 requantizer (see crate::intmath).
            for v in data.iter_mut() {
                *v = step * crate::intmath::round_half_away(*v / step);
            }
        }
        QuantMode::Floor => {
            for v in data.iter_mut() {
                *v = step * (*v / step).floor();
            }
        }
    }
    // The grid is anchored at 0, so quantized values may legitimately land
    // up to one step outside [lo, hi]; anything further is a quantizer bug.
    #[cfg(feature = "sanitize")]
    if cq_tensor::sanitize::is_enabled() {
        if let Some(v) =
            cq_tensor::sanitize::scan_quant("fake_quant", &[data.len()], data, lo, hi, step)
        {
            cq_tensor::sanitize::record(v);
        }
    }
}

/// Mean squared quantization error of `t` at the given precision — the
/// magnitude of the "augmentation noise" Contrastive Quant injects.
pub fn quant_mse(t: &Tensor, precision: Precision, mode: QuantMode) -> f32 {
    let q = fake_quant(t, precision, mode);
    t.as_slice()
        .iter()
        .zip(q.as_slice())
        .map(|(&a, &b)| (a - b) * (a - b))
        // cq-allow(det-float-accum): element-order sum over one tensor's slice
        .sum::<f32>()
        / t.len().max(1) as f32
}

/// Signal-to-quantization-noise ratio in dB. Returns `f32::INFINITY` when
/// the error is zero (e.g. FP precision).
pub fn quant_snr_db(t: &Tensor, precision: Precision, mode: QuantMode) -> f32 {
    let noise = quant_mse(t, precision, mode);
    if noise == 0.0 {
        return f32::INFINITY;
    }
    let signal = t.sq_norm() / t.len().max(1) as f32;
    10.0 * (signal / noise).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fp_is_identity() {
        let t = Tensor::from_slice(&[0.1, -0.7, 3.2]);
        assert_eq!(fake_quant(&t, Precision::Fp, QuantMode::Round), t);
    }

    #[test]
    fn constant_tensor_unchanged() {
        let t = Tensor::full(&[8], 2.5);
        assert_eq!(fake_quant(&t, Precision::Bits(4), QuantMode::Round), t);
    }

    #[test]
    fn values_land_on_grid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = Tensor::randn(&[256], 0.0, 1.0, &mut rng);
        let q = fake_quant(&t, Precision::Bits(4), QuantMode::Round);
        let lo = t.min();
        let hi = t.max();
        let step = (hi - lo) / 15.0;
        for &v in q.as_slice() {
            let k = v / step;
            assert!(
                (k - k.round()).abs() < 1e-3,
                "{v} not on grid (step {step})"
            );
        }
    }

    #[test]
    fn scanned_path_is_bitwise_identical_to_into() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for mode in [QuantMode::Round, QuantMode::Floor] {
            for bits in [2u8, 5, 8, 16] {
                let t = Tensor::randn(&[1023], 0.3, 1.7, &mut rng);
                let mut a = t.as_slice().to_vec();
                let mut b = a.clone();
                fake_quant_into(&mut a, Precision::Bits(bits), mode);
                let scan = RangeScan::scan(&b);
                fake_quant_scanned(&mut b, scan, Precision::Bits(bits), mode);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bits={bits} mode={mode:?}");
                }
            }
        }
    }

    #[test]
    fn chunked_scan_merge_matches_sequential_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let t = Tensor::randn(&[997], -0.4, 2.1, &mut rng);
        let mut data = t.as_slice().to_vec();
        // Adversarial extras: both zero signs and exact duplicates.
        data.extend_from_slice(&[0.0, -0.0, 2.5, 2.5, -3.0, -3.0]);
        let mut seq = data.clone();
        let mut chunked = data.clone();
        // Merge odd-sized chunk partials in reverse order — the least
        // sequential fold imaginable must still give identical bits.
        let mut scan = RangeScan::new();
        for chunk in data.chunks(123).rev() {
            scan.merge(RangeScan::scan(chunk));
        }
        fake_quant_into(&mut seq, Precision::Bits(7), QuantMode::Round);
        fake_quant_scanned(&mut chunked, scan, Precision::Bits(7), QuantMode::Round);
        for (x, y) in seq.iter().zip(&chunked) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn scanned_path_leaves_nonfinite_input_alone() {
        let mut data = vec![1.0, f32::NAN, 3.0];
        let orig = data.clone();
        let scan = RangeScan::scan(&data);
        fake_quant_scanned(&mut data, scan, Precision::Bits(8), QuantMode::Round);
        assert_eq!(data[0], orig[0]);
        assert!(data[1].is_nan());
        assert_eq!(data[2], orig[2]);
    }

    #[test]
    fn round_error_bounded_by_half_step() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = Tensor::randn(&[512], 0.0, 2.0, &mut rng);
        let q = fake_quant(&t, Precision::Bits(6), QuantMode::Round);
        let step = (t.max() - t.min()) / 63.0;
        for (&a, &b) in t.as_slice().iter().zip(q.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn floor_error_bounded_by_step_and_biased_down() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = Tensor::randn(&[512], 0.0, 2.0, &mut rng);
        let q = fake_quant(&t, Precision::Bits(6), QuantMode::Floor);
        let step = (t.max() - t.min()) / 63.0;
        for (&a, &b) in t.as_slice().iter().zip(q.as_slice()) {
            let e = a - b;
            assert!(
                e >= -1e-6 && e <= step + 1e-6,
                "floor error {e} out of [0, step]"
            );
        }
    }

    #[test]
    fn more_bits_less_error() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let t = Tensor::randn(&[1024], 0.0, 1.0, &mut rng);
        let e4 = quant_mse(&t, Precision::Bits(4), QuantMode::Round);
        let e8 = quant_mse(&t, Precision::Bits(8), QuantMode::Round);
        let e16 = quant_mse(&t, Precision::Bits(16), QuantMode::Round);
        assert!(e4 > e8 && e8 > e16, "{e4} {e8} {e16}");
    }

    #[test]
    fn snr_increases_with_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let t = Tensor::randn(&[1024], 0.0, 1.0, &mut rng);
        let s4 = quant_snr_db(&t, Precision::Bits(4), QuantMode::Round);
        let s8 = quant_snr_db(&t, Precision::Bits(8), QuantMode::Round);
        assert!(s8 > s4 + 10.0, "expect ~6dB/bit: {s4} -> {s8}");
        assert_eq!(
            quant_snr_db(&t, Precision::Fp, QuantMode::Round),
            f32::INFINITY
        );
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let t = Tensor::randn(&[128], 0.0, 1.0, &mut rng);
        let q1 = fake_quant(&t, Precision::Bits(5), QuantMode::Round);
        // Re-quantizing the already-quantized tensor at the same precision
        // keeps values on (a refinement of) the same grid: every value must
        // move by strictly less than half the original step.
        let q2 = fake_quant(&q1, Precision::Bits(5), QuantMode::Round);
        let step = (t.max() - t.min()) / 31.0;
        for (&a, &b) in q1.as_slice().iter().zip(q2.as_slice()) {
            assert!((a - b).abs() < step / 2.0);
        }
    }

    #[test]
    fn config_constructors() {
        let fp = QuantConfig::fp();
        assert!(!fp.is_quantized());
        let u = QuantConfig::uniform(Precision::Bits(8));
        assert!(u.is_quantized());
        assert_eq!(u.weight, u.act);
        assert_eq!(u.with_mode(QuantMode::Floor).mode, QuantMode::Floor);
        assert_eq!(QuantConfig::default(), fp);
    }

    #[test]
    fn empty_slice_is_noop() {
        let mut v: Vec<f32> = vec![];
        fake_quant_into(&mut v, Precision::Bits(4), QuantMode::Round);
        assert!(v.is_empty());
    }

    #[test]
    fn nonfinite_input_left_alone() {
        // Deliberately off-grid finite values: with lo=0.3, hi=0.7 the
        // 4-bit grid step is (0.7-0.3)/15, and neither 0.3 nor 0.7 is an
        // exact multiple of it, so any quantization would visibly move
        // them. (The old test used 1.0/2.0, which happened to round-trip
        // the grid exactly and masked a partial-quantization bug: min/max
        // skip NaN, so the finite entries were being snapped.)
        let cases: [&[f32]; 3] = [
            &[f32::NAN, 0.3, 0.7],
            &[0.3, f32::INFINITY, 0.7],
            &[0.3, 0.7, f32::NEG_INFINITY, f32::NAN],
        ];
        for case in cases {
            let mut v = case.to_vec();
            fake_quant_into(&mut v, Precision::Bits(4), QuantMode::Round);
            for (got, want) in v.iter().zip(case) {
                if want.is_nan() {
                    assert!(got.is_nan());
                } else {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "finite value {want} was modified in {case:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fake_quant_obeys_shared_rounding_contract() {
        // Run the fake-quant grid projection through the shared contract:
        // anchor the tensor range to exactly 255·32 at 8 bits so the step is
        // exactly 32.0 (a power of two, so scaling the probe in and out is
        // lossless), then the recovered code equals round(x).
        crate::intmath::assert_round_half_away(|x| {
            // Anchors at ±127.5·32 cover every contract case (|x| ≤ 127.5)
            // without shifting lo/hi.
            let mut v = vec![-4080.0, 4080.0, x * 32.0];
            fake_quant_into(&mut v, Precision::Bits(8), QuantMode::Round);
            v[2] / 32.0
        });
    }

    #[test]
    fn out_of_range_bits_left_unquantized_with_warning() {
        // Bits(q) outside 2..=16 built directly (not via Precision::bits)
        // must not wrap `1u32 << q` — the tensor stays untouched.
        let sink = std::sync::Arc::new(cq_obs::sink::MemorySink::new());
        cq_obs::install(sink.clone());
        for q in [1u8, 31, 32, 64] {
            let orig = [0.3f32, -0.9, 0.7];
            let mut v = orig.to_vec();
            fake_quant_into(&mut v, Precision::Bits(q), QuantMode::Round);
            assert_eq!(v, orig, "q={q} must be a guarded no-op");
        }
        cq_obs::uninstall();
        let warned = sink.snapshot().iter().any(|e| {
            matches!(e, cq_obs::Event::Warning { message }
                if message.contains("outside supported range 2..=16"))
        });
        assert!(warned, "expected an out-of-range bit-width warning");
    }

    #[test]
    fn nonfinite_input_emits_warning() {
        let sink = std::sync::Arc::new(cq_obs::sink::MemorySink::new());
        cq_obs::install(sink.clone());
        let mut v = vec![f32::NAN, 0.3, 0.7];
        fake_quant_into(&mut v, Precision::Bits(4), QuantMode::Round);
        cq_obs::uninstall();
        let warned = sink.snapshot().iter().any(|e| {
            matches!(e, cq_obs::Event::Warning { message } if message.contains("left unquantized"))
        });
        assert!(warned, "expected a fake_quant NaN/Inf warning");
    }
}
