//! Shared integer-inference math: the single source of truth for the
//! rounding rule and the `2^q − 1` / i32 MAC-headroom arithmetic that the
//! f32 fake-quant path (this crate), the static quantflow proof
//! (`cq-check`) and the i8 requantizer (`cq-infer`) must all agree on.
//!
//! # The rounding contract
//!
//! Every projection onto a quantization grid — fake-quant in f32, weight
//! requantization to i8, activation quantization at inference time —
//! rounds **half away from zero**: ties at grid midpoints go to the grid
//! point of larger magnitude (`0.5 → 1`, `-0.5 → -1`). This is exactly
//! Rust's `f32::round`, pinned here as [`round_half_away`] so a future
//! "optimization" to round-half-even (or a C-style truncation) in any one
//! crate fails the shared contract test instead of silently desynchronizing
//! the integer and float paths. [`assert_round_half_away`] is the shared
//! unit test; `cq-quant`, `cq-check` and `cq-infer` all run their own
//! rounding through it.
//!
//! # Guarded `2^q − 1` arithmetic
//!
//! `1u32 << q` silently wraps for `q ≥ 32` and `2^1 − 1 = 1` collapses the
//! grid to a single step; [`grid_levels`] / [`grid_steps`] reject any `q`
//! outside the supported `2..=16` with an explicit [`QuantError`] instead.
//!
//! # i32 accumulator headroom
//!
//! [`acc_worst`] / [`acc_fits_i32`] are the formulas the quantflow pass
//! proves against every built-in config: a `K`-tap MAC of `q`-bit
//! magnitudes accumulates at worst `K·(2^q−1)² + (2^q−1)`, which must fit
//! `i32`. The i8 inference path re-checks the same formula at model load
//! time (see `cq-infer`), so the static proof and the runtime assertion
//! can never drift apart.

use crate::QuantError;

/// Largest bit-width the i8/i32 integer-inference path supports. Above
/// this, a single `(2^q−1)²` product can exceed `i32::MAX`, so wider
/// precisions stay on the float fake-quant path by construction.
pub const INT_INFER_MAX_BITS: u8 = 8;

/// Rounds half away from zero — the pinned grid-projection rule (this is
/// `f32::round`, named so call sites document which tie-break they rely
/// on).
#[inline]
pub fn round_half_away(x: f32) -> f32 {
    x.round()
}

/// Number of grid levels `2^q`, guarded: `q` outside the supported
/// `2..=16` is an explicit error, never a shift overflow or a degenerate
/// two-level grid.
///
/// # Errors
///
/// Returns [`QuantError::InvalidBits`] for `q` outside `2..=16`.
pub fn grid_levels(q: u8) -> Result<u32, QuantError> {
    if !(2..=16).contains(&q) {
        return Err(QuantError::InvalidBits(q));
    }
    Ok(1u32 << q)
}

/// Number of grid steps `2^q − 1` (the Eq. 10 divisor), guarded like
/// [`grid_levels`].
///
/// # Errors
///
/// Returns [`QuantError::InvalidBits`] for `q` outside `2..=16`.
pub fn grid_steps(q: u8) -> Result<u32, QuantError> {
    Ok(grid_levels(q)? - 1)
}

/// Worst-case integer accumulation of a `taps`-wide MAC at bit-width `q`:
/// `taps·(2^q−1)² + (2^q−1)` (products of maximal `q`-bit magnitudes plus
/// a `q`-bit bias term).
///
/// # Errors
///
/// Returns [`QuantError::InvalidBits`] for `q` outside `2..=16`.
pub fn acc_worst(taps: u64, q: u8) -> Result<u128, QuantError> {
    let m = grid_steps(q)? as u128;
    Ok(taps as u128 * m * m + m)
}

/// Whether a `taps`-wide MAC accumulation fits an `i32` accumulator at
/// bit-width `q` — the property quantflow proves statically and the i8
/// loader asserts at conversion time.
///
/// # Errors
///
/// Returns [`QuantError::InvalidBits`] for `q` outside `2..=16`.
pub fn acc_fits_i32(taps: u64, q: u8) -> Result<bool, QuantError> {
    Ok(acc_worst(taps, q)? <= i32::MAX as u128)
}

/// Tie and boundary cases every grid-projection rounding must satisfy:
/// `(input, expected)` under round-half-away-from-zero.
pub const ROUND_HALF_AWAY_CASES: &[(f32, f32)] = &[
    // Exact midpoint ties round away from zero, both signs.
    (0.5, 1.0),
    (-0.5, -1.0),
    (1.5, 2.0),
    (-1.5, -2.0),
    (2.5, 3.0),
    (-2.5, -3.0),
    // The i8 code-range boundaries (weight requantization ties).
    (126.5, 127.0),
    (-126.5, -127.0),
    (127.5, 128.0),
    (-127.5, -128.0),
    // Non-tie neighbours must still round to nearest.
    (0.49999997, 0.0),
    (-0.49999997, 0.0),
    (1.4999999, 1.0),
    (2.5000002, 3.0),
    // Grid points are fixed points.
    (0.0, 0.0),
    (3.0, 3.0),
    (-3.0, -3.0),
];

/// Shared contract test: asserts `round` implements round-half-away-from-
/// zero on every case in [`ROUND_HALF_AWAY_CASES`]. `cq-quant`, `cq-check`
/// and `cq-infer` each run their rounding through this from their own unit
/// tests, so the three crates cannot silently disagree on tie-breaks.
///
/// # Panics
///
/// Panics (test-style assert) on the first violated case.
pub fn assert_round_half_away(round: impl Fn(f32) -> f32) {
    for &(input, expected) in ROUND_HALF_AWAY_CASES {
        let got = round(input);
        assert!(
            got == expected,
            "rounding contract violated: round({input}) = {got}, expected {expected} \
             (round-half-away-from-zero)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_half_away_satisfies_its_own_contract() {
        assert_round_half_away(round_half_away);
    }

    #[test]
    fn clip_boundary_values_stay_on_grid() {
        // A value exactly at the clip boundary of a zero-anchored grid
        // rounds to a code within half a step of the boundary — the same
        // code in the f32 fake-quant and the i8 requantizer.
        let (lo, hi, q) = (-3.0f32, 3.0f32, 8u8);
        let step = (hi - lo) / grid_steps(q).unwrap() as f32;
        for v in [lo, hi, 0.0] {
            let code = round_half_away(v / step);
            assert!((v - code * step).abs() <= step / 2.0 + f32::EPSILON);
            // Re-projecting the grid point is the identity (idempotence).
            assert_eq!(round_half_away(code * step / step), code);
        }
    }

    #[test]
    fn grid_levels_guards_degenerate_and_overflowing_widths() {
        assert_eq!(grid_levels(2), Ok(4));
        assert_eq!(grid_levels(8), Ok(256));
        assert_eq!(grid_levels(16), Ok(65536));
        // q=1 is a degenerate two-level grid; q≥31 would overflow u32/i32.
        for q in [0, 1, 17, 31, 32, 64, 255] {
            assert_eq!(grid_levels(q), Err(QuantError::InvalidBits(q)), "q={q}");
            assert_eq!(grid_steps(q), Err(QuantError::InvalidBits(q)), "q={q}");
            assert!(acc_worst(1, q).is_err(), "q={q}");
        }
    }

    #[test]
    fn acc_headroom_matches_quantflow_formula() {
        // 8-bit: K·255² + 255 ≤ i32::MAX iff K ≤ 33025.
        assert!(acc_fits_i32(33_000, 8).unwrap());
        assert!(!acc_fits_i32(33_026, 8).unwrap());
        // 16-bit never fits: one product alone exceeds i32::MAX.
        assert!(!acc_fits_i32(1, 16).unwrap());
        // Typical ResNet worst case (512·3·3 taps).
        assert!(acc_fits_i32(4608, 8).unwrap());
        assert!(acc_fits_i32(4608, 9).unwrap());
        assert!(!acc_fits_i32(4608, 10).unwrap());
        assert_eq!(acc_worst(2, 8).unwrap(), 2 * 255 * 255 + 255);
    }

    #[test]
    fn int_infer_ceiling_is_consistent() {
        // The exported ceiling must actually fit for every built-in MAC
        // width the plans produce (≤ 33025 taps at 8 bits).
        assert_eq!(INT_INFER_MAX_BITS, 8);
        assert!(acc_fits_i32(4608, INT_INFER_MAX_BITS).unwrap());
    }
}
