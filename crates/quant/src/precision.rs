//! Bit-width precisions and the precision sets of §4.1.

use rand::Rng;
use std::fmt;

/// Error type for invalid precision specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// A bit-width outside the supported `2..=16` range.
    InvalidBits(u8),
    /// A precision range with `lo > hi`.
    EmptyRange {
        /// Lower bound requested.
        lo: u8,
        /// Upper bound requested.
        hi: u8,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidBits(b) => write!(f, "bit-width {b} outside supported range 2..=16"),
            QuantError::EmptyRange { lo, hi } => write!(f, "empty precision range {lo}-{hi}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// A numeric precision: full floating point, or a fixed-point bit-width.
///
/// The paper's encoder is evaluated at precisions drawn from a
/// [`PrecisionSet`]; `Fp` is used for full-precision fine-tuning and as the
/// no-quantization baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// A `q`-bit fixed-point precision (2 ≤ q ≤ 16).
    Bits(u8),
    /// Full 32-bit floating point (no quantization). Ordered above any
    /// bit-width.
    Fp,
}

impl Precision {
    /// Creates a bit-width precision, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] outside `2..=16`.
    pub fn bits(q: u8) -> Result<Self, QuantError> {
        if (2..=16).contains(&q) {
            Ok(Precision::Bits(q))
        } else {
            Err(QuantError::InvalidBits(q))
        }
    }

    /// Number of quantization levels (`2^q`), or `None` for FP.
    ///
    /// Routed through [`crate::intmath::grid_levels`], so a `Bits(q)`
    /// constructed directly with `q` outside `2..=16` (bypassing
    /// [`Precision::bits`]) yields `None` rather than a shift overflow
    /// (`q ≥ 32`) or a degenerate two-level grid (`q = 1`).
    pub fn levels(&self) -> Option<u32> {
        match self {
            Precision::Bits(q) => crate::intmath::grid_levels(*q).ok(),
            Precision::Fp => None,
        }
    }

    /// Whether this precision quantizes at all.
    pub fn is_quantized(&self) -> bool {
        matches!(self, Precision::Bits(_))
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Bits(q) => write!(f, "{q}-bit"),
            Precision::Fp => write!(f, "FP"),
        }
    }
}

/// A set of candidate bit-widths from which Contrastive Quant samples the
/// pair `(q1, q2)` each training iteration (paper §4.1: 4–16, 6–16, 8–16).
///
/// # Example
///
/// ```
/// use cq_quant::PrecisionSet;
///
/// let set = PrecisionSet::range(8, 16)?;
/// assert_eq!(set.as_slice().len(), 9);
/// assert_eq!(set.to_string(), "8-16");
/// # Ok::<(), cq_quant::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PrecisionSet {
    bits: Vec<u8>,
}

impl PrecisionSet {
    /// Every integer bit-width in `lo..=hi` (the paper's "4-16" notation).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid bounds or an empty range.
    pub fn range(lo: u8, hi: u8) -> Result<Self, QuantError> {
        if lo > hi {
            return Err(QuantError::EmptyRange { lo, hi });
        }
        Precision::bits(lo)?;
        Precision::bits(hi)?;
        Ok(PrecisionSet {
            bits: (lo..=hi).collect(),
        })
    }

    /// An explicit list of bit-widths (deduplicated, sorted).
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or any bit-width is invalid.
    pub fn from_bits(bits: &[u8]) -> Result<Self, QuantError> {
        if bits.is_empty() {
            return Err(QuantError::EmptyRange { lo: 1, hi: 0 });
        }
        let mut v = bits.to_vec();
        for &b in &v {
            Precision::bits(b)?;
        }
        v.sort_unstable();
        v.dedup();
        Ok(PrecisionSet { bits: v })
    }

    /// The candidate bit-widths, ascending.
    pub fn as_slice(&self) -> &[u8] {
        &self.bits
    }

    /// Samples one precision uniformly. Each draw is recorded in the
    /// `quant.bits` observability histogram (a no-op without a sink), which
    /// is how runs verify the sampled distribution matches the configured
    /// set — the paper's core augmentation mechanism.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Precision {
        let i = rng.gen_range(0..self.bits.len());
        let q = self.bits[i];
        cq_obs::histogram(cq_obs::names::QUANT_BITS, q as f64);
        Precision::Bits(q)
    }

    /// Samples the iteration's precision pair `(q1, q2)` — two independent
    /// uniform draws, exactly as the paper describes ("randomly selected
    /// from a precision set during training"). The two draws may coincide.
    pub fn sample_pair<R: Rng>(&self, rng: &mut R) -> (Precision, Precision) {
        (self.sample(rng), self.sample(rng))
    }

    /// Diversity of the set measured as the number of distinct levels —
    /// used by the Table 8 analysis ("more diverse precision settings
    /// achieve a better accuracy").
    pub fn diversity(&self) -> usize {
        self.bits.len()
    }
}

impl fmt::Display for PrecisionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let contiguous = self.bits.windows(2).all(|w| w[1] == w[0] + 1);
        if contiguous && self.bits.len() > 1 {
            write!(f, "{}-{}", self.bits[0], self.bits[self.bits.len() - 1])
        } else {
            let strs: Vec<String> = self.bits.iter().map(|b| b.to_string()).collect();
            write!(f, "{{{}}}", strs.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bits_validation() {
        assert!(Precision::bits(2).is_ok());
        assert!(Precision::bits(16).is_ok());
        assert!(Precision::bits(1).is_err());
        assert!(Precision::bits(17).is_err());
    }

    #[test]
    fn levels_counts() {
        assert_eq!(Precision::Bits(4).levels(), Some(16));
        assert_eq!(Precision::Fp.levels(), None);
        assert!(Precision::Bits(4).is_quantized());
        assert!(!Precision::Fp.is_quantized());
    }

    #[test]
    fn levels_guards_out_of_range_widths() {
        // Directly-constructed Bits(q) outside 2..=16 must not wrap or
        // panic: q=1 is a degenerate grid, q>=31 would overflow `1u32 << q`.
        for q in [0u8, 1, 17, 31, 32, 64, 255] {
            assert_eq!(Precision::Bits(q).levels(), None, "q={q}");
        }
        assert_eq!(Precision::Bits(16).levels(), Some(65536));
    }

    #[test]
    fn parse_time_rejection_message_is_pinned() {
        // Config parse time (Precision::bits / PrecisionSet::range) rejects
        // q outside 2..=16 with this exact message.
        assert_eq!(
            Precision::bits(1).unwrap_err().to_string(),
            "bit-width 1 outside supported range 2..=16"
        );
        assert_eq!(
            Precision::bits(31).unwrap_err().to_string(),
            "bit-width 31 outside supported range 2..=16"
        );
        assert_eq!(
            PrecisionSet::range(1, 8).unwrap_err().to_string(),
            "bit-width 1 outside supported range 2..=16"
        );
        assert_eq!(
            PrecisionSet::from_bits(&[8, 40]).unwrap_err().to_string(),
            "bit-width 40 outside supported range 2..=16"
        );
    }

    #[test]
    fn fp_orders_above_bits() {
        assert!(Precision::Fp > Precision::Bits(16));
        assert!(Precision::Bits(4) < Precision::Bits(8));
    }

    #[test]
    fn range_sets_match_paper_notation() {
        let s = PrecisionSet::range(4, 16).unwrap();
        assert_eq!(s.as_slice().len(), 13);
        assert_eq!(s.to_string(), "4-16");
        assert_eq!(s.diversity(), 13);
        assert!(PrecisionSet::range(10, 4).is_err());
        assert!(PrecisionSet::range(1, 16).is_err());
    }

    #[test]
    fn from_bits_dedups_and_sorts() {
        let s = PrecisionSet::from_bits(&[8, 4, 8, 16]).unwrap();
        assert_eq!(s.as_slice(), &[4, 8, 16]);
        assert_eq!(s.to_string(), "{4,8,16}");
        assert!(PrecisionSet::from_bits(&[]).is_err());
    }

    #[test]
    fn sampling_stays_in_set_and_covers_it() {
        let s = PrecisionSet::range(6, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let (a, b) = s.sample_pair(&mut rng);
            for p in [a, b] {
                match p {
                    Precision::Bits(q) => {
                        assert!((6..=8).contains(&q));
                        seen.insert(q);
                    }
                    Precision::Fp => panic!("sample must be quantized"),
                }
            }
        }
        assert_eq!(seen.len(), 3, "all members should be hit in 400 draws");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let s = PrecisionSet::range(4, 16).unwrap();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(s.sample_pair(&mut a), s.sample_pair(&mut b));
        }
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Precision::Bits(4).to_string(), "4-bit");
        assert_eq!(Precision::Fp.to_string(), "FP");
        assert!(!QuantError::InvalidBits(40).to_string().is_empty());
    }
}
