//! Property-based tests of the quantizer — the noise source Contrastive
//! Quant turns into an augmentation.

use cq_quant::{fake_quant, quant_mse, Precision, PrecisionSet, QuantMode};
use cq_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vecf(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grid_has_at_most_2_pow_q_levels(data in vecf(64), bits in 2u8..=8) {
        let t = Tensor::from_slice(&data);
        let q = fake_quant(&t, Precision::Bits(bits), QuantMode::Round);
        let mut levels: Vec<f32> = q.as_slice().to_vec();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        levels.dedup();
        prop_assert!(levels.len() <= (1usize << bits));
    }

    #[test]
    fn floor_never_exceeds_value(data in vecf(64), bits in 2u8..=16) {
        let t = Tensor::from_slice(&data);
        let q = fake_quant(&t, Precision::Bits(bits), QuantMode::Floor);
        for (&orig, &quant) in t.as_slice().iter().zip(q.as_slice()) {
            prop_assert!(quant <= orig + 1e-4 * orig.abs().max(1.0));
        }
    }

    #[test]
    fn round_beats_or_ties_floor_in_mse(data in vecf(64), bits in 2u8..=12) {
        let t = Tensor::from_slice(&data);
        let er = quant_mse(&t, Precision::Bits(bits), QuantMode::Round);
        let ef = quant_mse(&t, Precision::Bits(bits), QuantMode::Floor);
        prop_assert!(er <= ef + 1e-9, "round {er} vs floor {ef}");
    }

    #[test]
    fn quantization_preserves_ordering_up_to_grid(data in vecf(32), bits in 4u8..=16) {
        // quantization is monotone: a <= b implies Q(a) <= Q(b)
        let t = Tensor::from_slice(&data);
        let q = fake_quant(&t, Precision::Bits(bits), QuantMode::Round);
        for i in 0..data.len() {
            for j in 0..data.len() {
                if data[i] < data[j] {
                    prop_assert!(q.as_slice()[i] <= q.as_slice()[j] + 1e-5);
                }
            }
        }
    }

    #[test]
    fn affine_shift_commutes_with_quantization(data in vecf(32), shift in -10.0f32..10.0) {
        // Q(x + c) == Q(x) + c up to float error: the grid is anchored to
        // the dynamic range, which shifts with the data.
        let t = Tensor::from_slice(&data);
        let shifted = t.add_scalar(shift);
        let q1 = fake_quant(&t, Precision::Bits(8), QuantMode::Round).add_scalar(shift);
        let q2 = fake_quant(&shifted, Precision::Bits(8), QuantMode::Round);
        let range = t.max() - t.min();
        if range > 1.0 {
            let step = range / 255.0;
            for (a, b) in q1.as_slice().iter().zip(q2.as_slice()) {
                prop_assert!((a - b).abs() < step, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn precision_sets_sample_uniformly_enough(lo in 2u8..=8, span in 1u8..=8, seed in 0u64..500) {
        let hi = (lo + span).min(16);
        let set = PrecisionSet::range(lo, hi).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..200 {
            if let Precision::Bits(b) = set.sample(&mut rng) {
                *counts.entry(b).or_insert(0usize) += 1;
            }
        }
        // every member hit at least once in 200 draws (p_miss < 1e-9 for
        // the largest set)
        prop_assert_eq!(counts.len(), set.as_slice().len());
    }
}
