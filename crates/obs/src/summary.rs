//! In-process aggregation and the human-readable summary report.
//!
//! Every event emitted while a sink is installed also updates a global
//! [`struct@Aggregate`] (span totals, histogram buckets, metric stats), so
//! bench binaries can print a per-phase time breakdown and a bit-width
//! histogram regardless of which sink is active. `BTreeMap`s keep the
//! rendered report deterministic.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, MutexGuard};

use crate::health::Verdict;
use crate::Event;

/// One aggregated health verdict, as kept for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthLine {
    /// Detector that fired.
    pub detector: &'static str,
    /// Severity.
    pub verdict: Verdict,
    /// Step of the triggering observation.
    pub step: u64,
    /// Explanation.
    pub message: String,
}

/// Accumulated span statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed scopes.
    pub calls: u64,
    /// Total time across all scopes, nanoseconds.
    pub total_ns: u64,
    /// Minimum nesting depth observed (0 = top level); used to indent the
    /// report roughly like the runtime call tree.
    pub min_depth: u16,
}

/// Accumulated statistics for one timeline lane (a `(category, name)`
/// pair such as `("pool", "pool.busy")` or `("span", "train.step")`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineStat {
    /// Number of intervals recorded.
    pub events: u64,
    /// Total interval time across all threads, nanoseconds.
    pub total_ns: u64,
    /// Distinct thread ids the lane was observed on.
    pub threads: BTreeSet<u64>,
}

/// Accumulated statistics for one metric name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricStat {
    /// Number of observations.
    pub count: u64,
    /// Most recent value.
    pub last: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Sum of observed values (for means).
    pub sum: f64,
}

#[derive(Debug, Default)]
pub(crate) struct Aggregate {
    spans: BTreeMap<&'static str, SpanStat>,
    // histogram name -> (rounded bucket -> count)
    hists: BTreeMap<&'static str, BTreeMap<i64, u64>>,
    metrics: BTreeMap<&'static str, MetricStat>,
    // (category, name) -> interval stats
    timeline: BTreeMap<(&'static str, &'static str), TimelineStat>,
    warnings: Vec<String>,
    health: Vec<HealthLine>,
    worst_health: Verdict,
}

static AGGREGATE: Mutex<Option<Aggregate>> = Mutex::new(None);

fn lock() -> MutexGuard<'static, Option<Aggregate>> {
    AGGREGATE.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn aggregate(ev: &Event) {
    let mut guard = lock();
    let agg = guard.get_or_insert_with(Aggregate::default);
    match ev {
        Event::SpanStart { .. } => {}
        Event::SpanEnd { name, depth, nanos } => {
            let st = agg.spans.entry(name).or_insert(SpanStat {
                calls: 0,
                total_ns: 0,
                min_depth: *depth,
            });
            st.calls += 1;
            st.total_ns += nanos;
            st.min_depth = st.min_depth.min(*depth);
        }
        Event::Counter { .. } => {} // counters live in their own registry
        Event::Histogram { name, value } => {
            let bucket = if value.is_finite() {
                value.round() as i64
            } else {
                i64::MIN
            };
            *agg.hists
                .entry(name)
                .or_default()
                .entry(bucket)
                .or_insert(0) += 1;
        }
        Event::Metric {
            name,
            step: _,
            value,
        } => {
            let st = agg.metrics.entry(name).or_insert(MetricStat {
                count: 0,
                last: *value,
                min: *value,
                max: *value,
                sum: 0.0,
            });
            st.count += 1;
            st.last = *value;
            st.min = st.min.min(*value);
            st.max = st.max.max(*value);
            st.sum += *value;
        }
        Event::Timeline {
            name,
            cat,
            tid,
            start_ns: _,
            dur_ns,
        } => {
            let st = agg.timeline.entry((cat, name)).or_default();
            st.events += 1;
            st.total_ns += dur_ns;
            st.threads.insert(*tid);
        }
        Event::Warning { message } => {
            // Bounded: warnings are rare by contract, but cap defensively.
            if agg.warnings.len() < 64 {
                agg.warnings.push(message.clone());
            }
        }
        Event::Health {
            detector,
            verdict,
            step,
            value: _,
            message,
        } => {
            agg.worst_health = agg.worst_health.max(*verdict);
            // The monitor already caps per-detector fire volume; this cap
            // just bounds the report against hand-emitted events.
            if agg.health.len() < 64 {
                agg.health.push(HealthLine {
                    detector,
                    verdict: *verdict,
                    step: *step,
                    message: message.clone(),
                });
            }
        }
    }
}

pub(crate) fn reset_aggregate() {
    *lock() = None;
}

/// Deterministic snapshot of everything aggregated so far, plus counter
/// totals, renderable via [`Report::render`].
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-span-name timing stats, sorted by name.
    pub spans: Vec<(&'static str, SpanStat)>,
    /// Per-histogram bucket counts (bucket = rounded value), sorted.
    pub histograms: Vec<(&'static str, Vec<(i64, u64)>)>,
    /// Per-metric stats, sorted by name.
    pub metrics: Vec<(&'static str, MetricStat)>,
    /// Per-timeline-lane stats (`(category, name)`), sorted. Non-empty
    /// only for profiled runs (see [`crate::prof`]).
    pub timeline: Vec<((&'static str, &'static str), TimelineStat)>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Collected warning messages, in arrival order.
    pub warnings: Vec<String>,
    /// Health verdicts, in firing order (capped).
    pub health: Vec<HealthLine>,
    /// Worst health verdict seen (including capped-away repeats).
    pub worst_health: Verdict,
}

/// Builds a [`Report`] from the current aggregate and counter registry.
pub fn summary_report() -> Report {
    let guard = lock();
    let mut report = Report {
        counters: crate::counter_totals(),
        ..Report::default()
    };
    if let Some(agg) = guard.as_ref() {
        report.spans = agg.spans.iter().map(|(k, v)| (*k, *v)).collect();
        report.histograms = agg
            .hists
            .iter()
            .map(|(k, m)| (*k, m.iter().map(|(b, c)| (*b, *c)).collect()))
            .collect();
        report.metrics = agg.metrics.iter().map(|(k, v)| (*k, *v)).collect();
        report.timeline = agg.timeline.iter().map(|(k, v)| (*k, v.clone())).collect();
        report.warnings = agg.warnings.clone();
        report.health = agg.health.clone();
        report.worst_health = agg.worst_health;
    }
    report
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        format!("{n}")
    }
}

impl Report {
    /// Whether nothing was recorded (render would be empty).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.histograms.is_empty()
            && self.metrics.is_empty()
            && self.timeline.is_empty()
            && self.counters.is_empty()
            && self.warnings.is_empty()
            && self.health.is_empty()
    }

    /// Renders the report as a plain-text block: per-phase time breakdown,
    /// histograms (with ASCII bars), metric stats and counter totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("== time breakdown ==\n");
            let top_total: u64 = self
                .spans
                .iter()
                .filter(|(_, s)| s.min_depth == 0)
                .map(|(_, s)| s.total_ns)
                .sum();
            for (name, s) in &self.spans {
                let indent = "  ".repeat(s.min_depth as usize);
                let pct = if top_total > 0 && s.min_depth == 0 {
                    format!(" ({:.1}%)", 100.0 * s.total_ns as f64 / top_total as f64)
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "  {indent}{name:<28} {:>8} calls  {:>10}{pct}\n",
                    fmt_count(s.calls),
                    fmt_ns(s.total_ns)
                ));
            }
        }
        for (name, buckets) in &self.histograms {
            out.push_str(&format!("== histogram: {name} ==\n"));
            let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
            let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
            for (bucket, count) in buckets {
                let bar_len = ((count * 40) / max) as usize;
                out.push_str(&format!(
                    "  {bucket:>6}  {count:>8}  {:<40} {:.1}%\n",
                    "#".repeat(bar_len),
                    100.0 * *count as f64 / total.max(1) as f64
                ));
            }
        }
        if !self.metrics.is_empty() {
            out.push_str("== metrics ==\n");
            for (name, m) in &self.metrics {
                let mean = if m.count > 0 {
                    m.sum / m.count as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {name:<28} n={:<6} last={:<12.5} mean={:<12.5} min={:<12.5} max={:.5}\n",
                    m.count, m.last, mean, m.min, m.max
                ));
            }
        }
        if !self.timeline.is_empty() {
            out.push_str("== timeline lanes ==\n");
            for ((cat, name), st) in &self.timeline {
                out.push_str(&format!(
                    "  {cat:<6} {name:<21} {:>8} events  {:>10}  {} thread{}\n",
                    fmt_count(st.events),
                    fmt_ns(st.total_ns),
                    st.threads.len(),
                    if st.threads.len() == 1 { "" } else { "s" }
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            for (name, total) in &self.counters {
                out.push_str(&format!(
                    "  {name:<28} {:>12} ({total})\n",
                    fmt_count(*total)
                ));
            }
        }
        if !self.warnings.is_empty() {
            out.push_str("== warnings ==\n");
            for w in &self.warnings {
                out.push_str(&format!("  {w}\n"));
            }
        }
        if !self.health.is_empty() {
            out.push_str(&format!("== health: {} ==\n", self.worst_health));
            for h in &self.health {
                out.push_str(&format!(
                    "  [{:<8}] {:<16} step {:<6} {}\n",
                    h.verdict, h.detector, h.step, h.message
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    #[test]
    fn report_aggregates_spans_histograms_metrics() {
        let _g = crate::test_lock();
        crate::install(Arc::new(MemorySink::new()));
        crate::reset();
        {
            let _a = crate::span("phase.outer");
            let _b = crate::span("phase.inner");
        }
        {
            let _a = crate::span("phase.outer");
        }
        crate::histogram("quant.bits", 4.0);
        crate::histogram("quant.bits", 8.0);
        crate::histogram("quant.bits", 8.0);
        crate::metric("train.loss", 0, 2.0);
        crate::metric("train.loss", 1, 1.0);
        crate::warn_with(|| "something odd".to_string());
        let report = summary_report();
        crate::uninstall();
        crate::reset();

        let spans: std::collections::BTreeMap<_, _> = report.spans.iter().cloned().collect();
        assert_eq!(spans["phase.outer"].calls, 2);
        assert_eq!(spans["phase.inner"].calls, 1);
        assert_eq!(spans["phase.inner"].min_depth, 1);
        assert!(spans["phase.outer"].total_ns >= spans["phase.inner"].total_ns);

        assert_eq!(report.histograms.len(), 1);
        let (name, buckets) = &report.histograms[0];
        assert_eq!(*name, "quant.bits");
        assert_eq!(buckets.as_slice(), &[(4, 1), (8, 2)]);

        let metrics: std::collections::BTreeMap<_, _> = report.metrics.iter().cloned().collect();
        let loss = metrics["train.loss"];
        assert_eq!(loss.count, 2);
        assert_eq!(loss.last, 1.0);
        assert_eq!(loss.min, 1.0);
        assert_eq!(loss.max, 2.0);
        assert_eq!(loss.sum, 3.0);

        assert_eq!(report.warnings, vec!["something odd".to_string()]);

        let text = report.render();
        assert!(text.contains("time breakdown"));
        assert!(text.contains("quant.bits"));
        assert!(text.contains("train.loss"));
        assert!(text.contains("something odd"));
    }

    #[test]
    fn empty_report_is_empty() {
        let _g = crate::test_lock();
        crate::reset();
        let report = summary_report();
        assert!(report.is_empty());
        assert_eq!(report.render(), "");
    }

    #[test]
    fn fmt_helpers_cover_ranges() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
        assert_eq!(fmt_count(42), "42");
        assert_eq!(fmt_count(12_000), "12.0k");
        assert_eq!(fmt_count(3_400_000), "3.40M");
        assert_eq!(fmt_count(2_000_000_000), "2.00G");
    }
}
