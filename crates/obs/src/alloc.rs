//! Opt-in allocation counting and peak-RSS inspection.
//!
//! Libraries cannot install a `#[global_allocator]`, so the counting
//! allocator lives here as a wrapper that *binaries* opt into:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cq_obs::alloc::CountingAlloc = cq_obs::alloc::CountingAlloc::system();
//! ```
//!
//! Every `alloc`/`alloc_zeroed`/`realloc` call bumps one relaxed atomic;
//! `dealloc` is passed through untouched. [`alloc_calls`] reads the
//! counter, returning `None` in processes that never installed the
//! wrapper (the counter is necessarily non-zero before `main` runs when
//! it is installed — the Rust runtime allocates during startup).
//!
//! The training engine samples [`alloc_calls`] and [`peak_rss_kb`] at
//! phase boundaries and emits the deltas as `mem.*` step metrics, which
//! is how peak memory and allocation churn per phase surface in traces
//! and the summary report.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` wrapper that counts allocation calls (alloc,
/// alloc_zeroed, realloc) into a process-global atomic. Deallocation is
/// uncounted: the metric of interest is allocation churn.
#[derive(Debug, Default)]
pub struct CountingAlloc<A = System> {
    inner: A,
}

impl CountingAlloc<System> {
    /// Counting wrapper around the system allocator.
    pub const fn system() -> Self {
        CountingAlloc { inner: System }
    }
}

impl<A> CountingAlloc<A> {
    /// Counting wrapper around an arbitrary inner allocator.
    pub const fn new(inner: A) -> Self {
        CountingAlloc { inner }
    }
}

// SAFETY: defers every operation to the inner allocator unchanged; the
// counter increment has no effect on the returned memory.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        self.inner.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        self.inner.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        self.inner.realloc(ptr, layout, new_size)
    }
}

/// Total allocation calls since process start, or `None` when no
/// [`CountingAlloc`] is installed as the global allocator (detected by
/// the counter never having moved — an installed wrapper counts runtime
/// startup allocations before any caller can read it).
pub fn alloc_calls() -> Option<u64> {
    match ALLOC_CALLS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_alloc_counts_through() {
        let a = CountingAlloc::system();
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let layout = Layout::from_size_align(64, 8).expect("layout");
        // SAFETY: valid layout; freed immediately below.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
            let p = a.alloc_zeroed(layout);
            assert!(!p.is_null());
            assert_eq!(*p, 0);
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            a.dealloc(p2, Layout::from_size_align(128, 8).expect("layout"));
        }
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(after - before, 3, "alloc + alloc_zeroed + realloc");
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("procfs VmHWM");
            assert!(kb > 0);
        }
    }
}
