//! # cq-obs
//!
//! Runtime observability for the contrastive-quant stack: scoped span
//! timers, monotonic counters, value histograms, step-level metrics and a
//! pluggable event [`Sink`] (no-op by default, in-memory for tests, JSONL
//! file writer for runs — see [`sink`]).
//!
//! ## Design
//!
//! All hooks are gated on one global [`AtomicBool`]: while no sink is
//! installed every hook ([`span`], [`Counter::add`], [`histogram`],
//! [`metric`], [`warn`]) is a **branch-on-atomic-load no-op** — no
//! allocation, no lock, no time read — so instrumented hot paths cost one
//! relaxed load when observability is off. This is the invariant the
//! overhead-guard tests pin down.
//!
//! While a sink *is* installed:
//!
//! - [`span`] emits [`Event::SpanStart`]/[`Event::SpanEnd`] with a
//!   per-thread nesting depth and a monotonic duration.
//! - [`Counter`]s accumulate into static atomics (readable any time via
//!   [`counter_totals`]); totals are emitted as [`Event::Counter`] records
//!   on [`flush`] rather than per increment, keeping the event stream
//!   proportional to flushes, not kernel calls.
//! - [`histogram`] and [`metric`] stream one event per observation.
//! - every event also feeds an internal aggregate from which
//!   [`summary_report`] builds the per-phase time breakdown and histogram
//!   tables printed by the bench binaries.
//!
//! Names are `&'static str` by construction so the enabled path allocates
//! only inside sinks that need it (e.g. JSONL formatting).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! let sink = Arc::new(cq_obs::sink::MemorySink::new());
//! cq_obs::install(sink.clone());
//! {
//!     let _outer = cq_obs::span("step");
//!     let _inner = cq_obs::span("forward");
//! }
//! cq_obs::metric("loss", 0, 4.5);
//! cq_obs::uninstall();
//! let events = sink.take();
//! assert_eq!(events.len(), 5); // 2 starts, 2 ends, 1 metric
//! ```

#![deny(missing_docs)]

pub mod alloc;
pub mod health;
pub mod names;
pub mod prof;
pub mod sink;
pub mod summary;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub use summary::{summary_report, Report};

/// One observability event, as delivered to the installed [`Sink`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A scoped timer opened (`depth` is the per-thread nesting level).
    SpanStart {
        /// Static span name (e.g. `"train.step"`, a layer kind).
        name: &'static str,
        /// Nesting depth on the emitting thread (0 = top level).
        depth: u16,
    },
    /// A scoped timer closed.
    SpanEnd {
        /// Static span name, matching the corresponding start.
        name: &'static str,
        /// Nesting depth on the emitting thread (0 = top level).
        depth: u16,
        /// Monotonic elapsed time of the scope, in nanoseconds.
        nanos: u64,
    },
    /// A counter total, emitted by [`flush`] (not per increment).
    Counter {
        /// Static counter name (e.g. `"tensor.matmul.flops"`).
        name: &'static str,
        /// Total accumulated since the counter was last [`reset`].
        total: u64,
    },
    /// One histogram observation (e.g. a sampled bit-width).
    Histogram {
        /// Static histogram name (e.g. `"quant.bits"`).
        name: &'static str,
        /// Observed value.
        value: f64,
    },
    /// One step-attributed scalar metric (loss, grad norm, LR, ...).
    Metric {
        /// Static metric name (e.g. `"train.loss"`).
        name: &'static str,
        /// Training step the value belongs to.
        step: u64,
        /// The value.
        value: f64,
    },
    /// A rare diagnostic warning (e.g. rejected `CQ_THREADS` value).
    Warning {
        /// Human-readable message.
        message: String,
    },
    /// One profiling timeline interval on one thread (opt-in; emitted
    /// only while [`prof`] is enabled, so default traces never carry
    /// these — see the gating contract in the [`prof`] module docs).
    Timeline {
        /// Interval name (a span name, `"pool.busy"`, `"pool.park"`).
        name: &'static str,
        /// Lane category (`"span"` or `"pool"`).
        cat: &'static str,
        /// Dense process-local id of the thread the interval ran on.
        tid: u64,
        /// Start, nanoseconds since the process profiling epoch.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// A non-Ok verdict from the online health monitor (see [`health`]).
    Health {
        /// Detector that fired (`nan_sentinel`, `grad_anomaly`, ...).
        detector: &'static str,
        /// Severity of the verdict.
        verdict: health::Verdict,
        /// Step of the metric observation that triggered it.
        step: u64,
        /// The offending value.
        value: f64,
        /// Human-readable explanation.
        message: String,
    },
}

/// Receiver of [`Event`]s. Implementations must be cheap enough to sit on
/// instrumented paths and safe to call from multiple threads.
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn event(&self, ev: &Event);
    /// Flushes any buffered output (called by [`flush`]).
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);

thread_local! {
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A sink that panicked mid-event must not wedge observability for the
    // rest of the process; the data it protects stays consistent.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether a sink is currently installed. This is the one load every
/// disabled hook pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the global event receiver and enables all hooks.
/// Replaces any previously installed sink.
pub fn install(sink: Arc<dyn Sink>) {
    *lock(&SINK) = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables all hooks and removes the installed sink, returning it so
/// callers can drain or flush it.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    ENABLED.store(false, Ordering::SeqCst);
    lock(&SINK).take()
}

/// Delivers an event to the installed sink (if any) and to the summary
/// aggregate. Instrumentation sites normally use the typed helpers
/// ([`span`], [`histogram`], [`metric`], [`warn`]) instead.
pub fn emit(ev: Event) {
    if !enabled() {
        return;
    }
    summary::aggregate(&ev);
    let sink = lock(&SINK).clone();
    if let Some(s) = sink {
        s.event(&ev);
    }
}

/// RAII scope timer returned by [`span`]. When observability is disabled
/// the guard is inert (no time read, no event).
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(&'static str, u16, Instant)>,
    /// Epoch-relative start, captured only while [`prof`] is enabled, so
    /// the closed scope can double as a timeline interval.
    prof_start_ns: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, depth, start)) = self.inner.take() {
            let nanos = start.elapsed().as_nanos() as u64;
            if let Some(start_ns) = self.prof_start_ns.take() {
                // Reuse the already-measured duration: the timeline
                // interval matches the SpanEnd record exactly and costs
                // no extra clock read.
                prof::record(name, prof::CAT_SPAN, start_ns, start_ns + nanos);
            }
            emit(Event::SpanEnd { name, depth, nanos });
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
}

/// Opens a scoped, nestable span timer; the scope closes (and its duration
/// is recorded) when the returned guard drops. A no-op when disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            inner: None,
            prof_start_ns: None,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v.saturating_add(1));
        v
    });
    emit(Event::SpanStart { name, depth });
    let prof_start_ns = prof::enabled().then(prof::now_ns);
    SpanGuard {
        inner: Some((name, depth, Instant::now())),
        prof_start_ns,
    }
}

/// A named monotonic counter. Declare one `static` per instrumentation
/// site; [`Counter::add`] is wait-free after the first enabled increment
/// (which registers the counter in the global table).
///
/// # Example
///
/// ```
/// static FLOPS: cq_obs::Counter = cq_obs::Counter::new("example.flops");
/// FLOPS.add(128); // no-op: nothing installed in this doctest
/// ```
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

static REGISTRY: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

impl Counter {
    /// Creates a counter (usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `delta` when observability is enabled; a branch-on-atomic-load
    /// no-op otherwise.
    #[inline]
    pub fn add(&'static self, delta: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REGISTRY).push(self);
        }
    }

    /// Current accumulated total.
    pub fn total(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Snapshot of every counter that has ever incremented while enabled,
/// sorted by name for deterministic output.
pub fn counter_totals() -> Vec<(&'static str, u64)> {
    let mut v: Vec<(&'static str, u64)> = lock(&REGISTRY)
        .iter()
        .map(|c| (c.name, c.total()))
        .collect();
    v.sort_unstable_by_key(|&(n, _)| n);
    v
}

/// Records one histogram observation. A no-op when disabled.
#[inline]
pub fn histogram(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    emit(Event::Histogram { name, value });
}

/// Records one step-attributed metric value and feeds it to the health
/// monitor (see [`health`]). With no sink and health off, this is a
/// branch-on-two-atomic-loads no-op.
#[inline]
pub fn metric(name: &'static str, step: u64, value: f64) {
    if enabled() {
        emit(Event::Metric { name, step, value });
    }
    if health::enabled() {
        health::observe_metric(name, step, value);
    }
}

/// Emits a diagnostic warning event. Library crates route rare diagnostics
/// through this instead of `println!` (enforced by the cq-check lint). A
/// no-op when disabled; the message closure keeps the disabled path
/// allocation-free.
#[inline]
pub fn warn_with<F: FnOnce() -> String>(message: F) {
    if !enabled() {
        return;
    }
    emit(Event::Warning { message: message() });
}

/// Emits all counter totals as [`Event::Counter`] records and flushes the
/// sink. Call at natural boundaries (end of a run, end of a phase).
pub fn flush() {
    if !enabled() {
        return;
    }
    prof::drain_thread();
    for (name, total) in counter_totals() {
        emit(Event::Counter { name, total });
    }
    let sink = lock(&SINK).clone();
    if let Some(s) = sink {
        s.flush();
    }
}

/// Resets every counter and the summary aggregate (events already
/// delivered to sinks are unaffected). Tests use this for isolation.
pub fn reset() {
    for c in lock(&REGISTRY).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    summary::reset_aggregate();
}

#[cfg(test)]
pub(crate) fn test_lock() -> MutexGuard<'static, ()> {
    // Serialises tests that install/uninstall the global sink.
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_hooks_are_inert() {
        let _g = test_lock();
        assert!(!enabled());
        static C: Counter = Counter::new("test.inert");
        C.add(5);
        assert_eq!(C.total(), 0);
        let _sp = span("never");
        drop(_sp);
        histogram("never", 1.0);
        metric("never", 0, 1.0);
        warn_with(|| panic!("message closure must not run when disabled"));
        flush();
    }

    #[test]
    fn span_nesting_depths_and_durations() {
        let _g = test_lock();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        {
            let _a = span("outer");
            let _b = span("inner");
        }
        uninstall();
        reset();
        let ev = sink.take();
        assert_eq!(
            ev[0],
            Event::SpanStart {
                name: "outer",
                depth: 0
            }
        );
        assert_eq!(
            ev[1],
            Event::SpanStart {
                name: "inner",
                depth: 1
            }
        );
        match (&ev[2], &ev[3]) {
            (
                Event::SpanEnd {
                    name: "inner",
                    depth: 1,
                    ..
                },
                Event::SpanEnd {
                    name: "outer",
                    depth: 0,
                    nanos,
                },
            ) => assert!(*nanos > 0),
            other => panic!("bad end order: {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate_and_flush_emits_totals() {
        let _g = test_lock();
        static C: Counter = Counter::new("test.flops");
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        reset();
        C.add(3);
        C.add(4);
        assert_eq!(C.total(), 7);
        assert!(counter_totals().contains(&("test.flops", 7)));
        flush();
        let ev = sink.take();
        assert!(ev.contains(&Event::Counter {
            name: "test.flops",
            total: 7
        }));
        uninstall();
        reset();
    }

    #[test]
    fn warn_and_metric_events_flow_to_sink() {
        let _g = test_lock();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        warn_with(|| "CQ_THREADS=0 rejected".to_string());
        metric("train.loss", 3, 1.25);
        histogram("quant.bits", 8.0);
        uninstall();
        reset();
        let ev = sink.take();
        assert_eq!(ev.len(), 3);
        assert!(matches!(&ev[0], Event::Warning { message } if message.contains("CQ_THREADS")));
        assert_eq!(
            ev[1],
            Event::Metric {
                name: "train.loss",
                step: 3,
                value: 1.25
            }
        );
        assert_eq!(
            ev[2],
            Event::Histogram {
                name: "quant.bits",
                value: 8.0
            }
        );
    }

    #[test]
    fn install_replaces_and_uninstall_returns_sink() {
        let _g = test_lock();
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        install(a.clone());
        install(b.clone());
        metric("m", 0, 1.0);
        let got = uninstall().expect("a sink was installed");
        reset();
        assert!(a.take().is_empty(), "replaced sink must see nothing");
        assert_eq!(b.take().len(), 1);
        drop(got);
        assert!(uninstall().is_none());
    }
}
