//! Canonical metric/histogram name constants — the telemetry schema.
//!
//! Every `cq_obs::metric`/`cq_obs::histogram` call site in library code
//! must reference one of these constants instead of an ad-hoc string
//! literal (enforced by the cq-check `obs-names` lint), so a typo'd name
//! can never silently fork a metric series, and offline tooling
//! (`cq-trace`, the health detectors) can match on one spelling.
//!
//! Span names are not centralized: they are structural (layer kinds,
//! phase labels) rather than schema, and several are computed
//! (`layer_kind()`).

/// Per-step training loss (one observation per optimizer step; exploded
/// steps report their non-finite/oversized value too, so the health
/// sentinels can see the divergence).
pub const TRAIN_LOSS: &str = "train.loss";

/// Per-step global gradient norm (also reported for exploded steps).
pub const TRAIN_GRAD_NORM: &str = "train.grad_norm";

/// Per-step learning rate after schedule.
pub const TRAIN_LR: &str = "train.lr";

/// End-of-epoch throughput in images per second.
pub const TRAIN_IMAGES_PER_SEC: &str = "train.images_per_sec";

/// Per-epoch count of non-finite entries excluded from the epoch
/// loss/grad-norm means (skipped/exploded steps).
pub const TRAIN_NONFINITE_STEPS: &str = "train.nonfinite_steps";

/// Sampled quantization bit-width (one observation per draw).
pub const QUANT_BITS: &str = "quant.bits";

/// Dynamic range (`hi - lo`) seen by the fake-quantizer.
pub const QUANT_CLIP_RANGE: &str = "quant.clip_range";

/// Checkpoints written by the training engine (counter). Everything under
/// the `ckpt.` prefix is run-lifecycle telemetry, which `cq-trace diff`
/// reports but does not gate (a resumed run legitimately loads one
/// checkpoint more than an uninterrupted one).
pub const CKPT_SAVED: &str = "ckpt.saved";

/// Checkpoints restored by the training engine (counter). See
/// [`CKPT_SAVED`] for the `ckpt.` gating exemption.
pub const CKPT_LOADED: &str = "ckpt.loaded";

/// Per-step worker-pool utilization: pool busy time during the step
/// divided by `step wall time x pool width`, in (0, 1] when the pool ran
/// (0 when the step never dispatched). Timing-dependent by nature, so
/// `cq-trace diff` reports but never gates this series.
pub const POOL_UTILIZATION: &str = "pool.utilization";

/// Per-step chunk-claim imbalance: mean over the step's pool jobs of
/// `max claims by one worker / ideal claims per worker` (1.0 = perfectly
/// balanced). Claim order is scheduling-dependent, so `cq-trace diff`
/// reports but never gates this series.
pub const POOL_CHUNK_IMBALANCE: &str = "pool.chunk_imbalance";

/// Per-phase peak resident set size in kilobytes (`VmHWM` sampled at the
/// phase boundary). Environment-dependent: report-only in diffs via the
/// `mem.` prefix.
pub const MEM_PEAK_RSS_KB: &str = "mem.peak_rss_kb";

/// Per-phase allocation calls (delta of the opt-in counting allocator —
/// see [`crate::alloc`]); 0 when no counting allocator is installed.
pub const MEM_ALLOC_COUNT: &str = "mem.alloc_count";

/// Per-step bytes of intermediate-tensor memory traffic elided by the
/// graph executor's elementwise fusion pass (delta of the cumulative
/// `fusion.pass_elided_bytes` counter across the step). Deterministic
/// for a fixed fusion mode; a `CQ_FUSION=on` vs `off` diff exempts the
/// `fusion.` prefix explicitly (`cq-trace diff --exempt-prefix fusion.`).
pub const FUSION_PASS_ELIDED_BYTES: &str = "fusion.pass_elided_bytes";

/// Per-epoch collapse probe: mean per-dimension standard deviation of the
/// L2-normalized projector embeddings, scaled by `sqrt(d)` so a healthy
/// (isotropic) representation sits near 1.0 and a collapsed one at 0.
pub const EMBED_FEATURE_STD: &str = "embed.feature_std";

/// Per-epoch collapse probe: mean cosine similarity between the
/// projections of the two views of the same image (positive pairs).
pub const EMBED_POS_COSINE: &str = "embed.pos_cosine";

/// Per-epoch alignment statistic (Wang & Isola): mean squared distance
/// between normalized positive-pair projections; 0 = perfectly aligned.
pub const EMBED_ALIGNMENT: &str = "embed.alignment";

/// Per-epoch uniformity statistic (Wang & Isola):
/// `log E exp(-2 ||z_i - z_j||^2)` over distinct normalized projections;
/// 0 means all embeddings coincide (collapse), healthy values are
/// clearly negative.
pub const EMBED_UNIFORMITY: &str = "embed.uniformity";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_unique_and_dotted() {
        let all = [
            super::TRAIN_LOSS,
            super::TRAIN_GRAD_NORM,
            super::TRAIN_LR,
            super::TRAIN_IMAGES_PER_SEC,
            super::TRAIN_NONFINITE_STEPS,
            super::QUANT_BITS,
            super::QUANT_CLIP_RANGE,
            super::CKPT_SAVED,
            super::CKPT_LOADED,
            super::POOL_UTILIZATION,
            super::POOL_CHUNK_IMBALANCE,
            super::MEM_PEAK_RSS_KB,
            super::MEM_ALLOC_COUNT,
            super::FUSION_PASS_ELIDED_BYTES,
            super::EMBED_FEATURE_STD,
            super::EMBED_POS_COSINE,
            super::EMBED_ALIGNMENT,
            super::EMBED_UNIFORMITY,
        ];
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate telemetry name");
        assert!(all.iter().all(|n| n.contains('.')), "names are namespaced");
    }
}
