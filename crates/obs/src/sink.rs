//! Event sinks: in-memory (tests), JSONL file writer (runs), and the
//! `CQ_OBS` environment-variable selector.
//!
//! ## JSONL schema
//!
//! One JSON object per line, discriminated by `"t"`:
//!
//! ```text
//! {"t":"span","name":"train.step","depth":0,"ns":1234567}
//! {"t":"counter","name":"tensor.matmul.flops","total":98304}
//! {"t":"hist","name":"quant.bits","v":8}
//! {"t":"metric","name":"train.loss","step":3,"v":4.125}
//! {"t":"warn","msg":"CQ_THREADS=0 rejected; using 1"}
//! {"t":"health","detector":"nan_sentinel","verdict":"critical","step":3,"v":null,"msg":"loss is NaN at step 3"}
//! {"t":"tl","name":"pool.busy","cat":"pool","tid":2,"ts":1048576,"dur":524288}
//! ```
//!
//! `tl` records (per-thread timeline intervals, `ts`/`dur` in
//! nanoseconds since the process profiling epoch) appear only when
//! profiling is enabled (`CQ_PROF=1`) — see [`crate::prof`].
//!
//! `SpanStart` events are not written — the `SpanEnd` record carries the
//! name, depth and duration, which halves trace volume without losing
//! information (ordering within a thread is reconstructible from depth).

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::{Event, Sink};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Records events in memory, in arrival order. For tests, and as the
/// aggregation-only sink behind `CQ_OBS=mem`. Optionally bounded: when a
/// capacity is set, the oldest events are evicted first and the eviction
/// count is tracked, so long runs cannot grow memory without limit.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<VecDeque<Event>>,
    capacity: Option<usize>,
    evicted: AtomicU64,
    evicted_timeline: AtomicU64,
}

impl MemorySink {
    /// Creates an unbounded sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sink that retains at most `capacity` events, evicting
    /// oldest-first. A capacity of 0 retains nothing (every event is
    /// counted as evicted).
    pub fn with_capacity(capacity: usize) -> Self {
        MemorySink {
            events: Mutex::new(VecDeque::new()),
            capacity: Some(capacity),
            evicted: AtomicU64::new(0),
            evicted_timeline: AtomicU64::new(0),
        }
    }

    /// Returns all retained events, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *lock(&self.events)).into()
    }

    /// Clones the retained events without draining them.
    pub fn snapshot(&self) -> Vec<Event> {
        lock(&self.events).iter().cloned().collect()
    }

    /// Number of events retained right now.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of non-timeline events evicted to respect the capacity
    /// bound.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Number of [`Event::Timeline`] records evicted to respect the
    /// capacity bound. Tracked separately: a profiled run emits orders of
    /// magnitude more timeline events than anything else, and this
    /// counter shows when the cap is trimming the timeline rather than
    /// the primary telemetry.
    pub fn evicted_timeline(&self) -> u64 {
        self.evicted_timeline.load(Ordering::Relaxed)
    }

    fn count_eviction(&self, ev: &Event) {
        let ctr = match ev {
            Event::Timeline { .. } => &self.evicted_timeline,
            _ => &self.evicted,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }
}

impl Sink for MemorySink {
    fn event(&self, ev: &Event) {
        let mut events = lock(&self.events);
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.count_eviction(ev);
                return;
            }
            while events.len() >= cap {
                if let Some(old) = events.pop_front() {
                    self.count_eviction(&old);
                }
            }
        }
        events.push_back(ev.clone());
    }
}

/// Counts events without storing them. Used by overhead-guard tests to
/// assert that instrumented paths emit nothing while uninstalled.
#[derive(Debug, Default)]
pub struct CountingSink {
    count: std::sync::atomic::AtomicU64,
}

impl CountingSink {
    /// Creates a sink with a zero count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events seen.
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Sink for CountingSink {
    fn event(&self, _ev: &Event) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Streams events as JSON Lines to a buffered file (schema above).
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

/// Minimal JSON string escaping for warning messages (the only free-form
/// strings in the schema).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats `v` so the output is valid JSON (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Round-trippable, and integral values print without a ".0" tail
        // matching what a histogram of bit-widths looks like.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

impl Sink for JsonlSink {
    fn event(&self, ev: &Event) {
        let line = match ev {
            // Start records carry no information the end record lacks.
            Event::SpanStart { .. } => return,
            Event::SpanEnd { name, depth, nanos } => {
                format!("{{\"t\":\"span\",\"name\":\"{name}\",\"depth\":{depth},\"ns\":{nanos}}}")
            }
            Event::Counter { name, total } => {
                format!("{{\"t\":\"counter\",\"name\":\"{name}\",\"total\":{total}}}")
            }
            Event::Histogram { name, value } => {
                format!(
                    "{{\"t\":\"hist\",\"name\":\"{name}\",\"v\":{}}}",
                    json_f64(*value)
                )
            }
            Event::Metric { name, step, value } => format!(
                "{{\"t\":\"metric\",\"name\":\"{name}\",\"step\":{step},\"v\":{}}}",
                json_f64(*value)
            ),
            Event::Warning { message } => {
                format!("{{\"t\":\"warn\",\"msg\":\"{}\"}}", escape_json(message))
            }
            Event::Timeline {
                name,
                cat,
                tid,
                start_ns,
                dur_ns,
            } => format!(
                "{{\"t\":\"tl\",\"name\":\"{name}\",\"cat\":\"{cat}\",\"tid\":{tid},\"ts\":{start_ns},\"dur\":{dur_ns}}}"
            ),
            Event::Health {
                detector,
                verdict,
                step,
                value,
                message,
            } => format!(
                "{{\"t\":\"health\",\"detector\":\"{detector}\",\"verdict\":\"{}\",\"step\":{step},\"v\":{},\"msg\":\"{}\"}}",
                verdict.as_str(),
                json_f64(*value),
                escape_json(message)
            ),
        };
        let mut w = lock(&self.writer);
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = lock(&self.writer).flush();
    }
}

/// Installs a sink according to the `CQ_OBS` environment variable and
/// returns a human-readable description of what was installed.
///
/// - unset or empty → no sink (all hooks stay no-ops), returns `None`
/// - `jsonl` → [`JsonlSink`] writing to `CQ_OBS_PATH` (default
///   `cq-obs.jsonl`)
/// - `mem` → [`MemorySink`] (aggregation only; useful to enable the
///   summary report without a trace file). `CQ_OBS_MEM_CAP=<n>` bounds it
///   to the most recent `n` events (unbounded when unset/unparsable).
/// - anything else → no sink, returns `None`
///
/// When a sink was installed and `CQ_PROF` is set to `1`, `on` or
/// `timeline`, per-thread timeline profiling (see [`crate::prof`]) is
/// enabled on top of it; without a sink `CQ_PROF` has no effect.
pub fn init_from_env() -> Option<String> {
    let mode = std::env::var("CQ_OBS").ok()?;
    let installed = match mode.as_str() {
        "jsonl" => {
            let path = std::env::var("CQ_OBS_PATH").unwrap_or_else(|_| "cq-obs.jsonl".to_string());
            match JsonlSink::create(&path) {
                Ok(sink) => {
                    crate::install(Arc::new(sink));
                    Some(format!("jsonl trace -> {path}"))
                }
                Err(e) => {
                    // Cannot route through cq-obs (no sink could be made);
                    // stderr is the only channel left.
                    eprintln!("cq-obs: cannot create {path}: {e}");
                    None
                }
            }
        }
        "mem" => {
            let cap = std::env::var("CQ_OBS_MEM_CAP")
                .ok()
                .and_then(|v| v.parse::<usize>().ok());
            match cap {
                Some(cap) => {
                    crate::install(Arc::new(MemorySink::with_capacity(cap)));
                    Some(format!("in-memory sink (summary only, cap {cap} events)"))
                }
                None => {
                    crate::install(Arc::new(MemorySink::new()));
                    Some("in-memory sink (summary only)".to_string())
                }
            }
        }
        _ => None,
    }?;
    let prof_on = matches!(
        std::env::var("CQ_PROF").ok().as_deref(),
        Some("1" | "on" | "timeline")
    );
    if prof_on {
        crate::prof::set_enabled(true);
        Some(format!("{installed} + timeline profiling (CQ_PROF)"))
    } else {
        Some(installed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_schema_lines() {
        let _g = crate::test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cq-obs-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("temp file");
        sink.event(&Event::SpanStart {
            name: "skipped",
            depth: 0,
        });
        sink.event(&Event::SpanEnd {
            name: "train.step",
            depth: 1,
            nanos: 42,
        });
        sink.event(&Event::Counter {
            name: "tensor.matmul.flops",
            total: 7,
        });
        sink.event(&Event::Histogram {
            name: "quant.bits",
            value: 8.0,
        });
        sink.event(&Event::Metric {
            name: "train.loss",
            step: 2,
            value: 0.5,
        });
        sink.event(&Event::Warning {
            message: "a \"quoted\"\nmessage".to_string(),
        });
        Sink::flush(&sink);
        let text = std::fs::read_to_string(&path).expect("trace readable");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "SpanStart must be skipped: {lines:?}");
        assert_eq!(
            lines[0],
            "{\"t\":\"span\",\"name\":\"train.step\",\"depth\":1,\"ns\":42}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":\"counter\",\"name\":\"tensor.matmul.flops\",\"total\":7}"
        );
        assert_eq!(lines[2], "{\"t\":\"hist\",\"name\":\"quant.bits\",\"v\":8}");
        assert_eq!(
            lines[3],
            "{\"t\":\"metric\",\"name\":\"train.loss\",\"step\":2,\"v\":0.5}"
        );
        assert_eq!(
            lines[4],
            "{\"t\":\"warn\",\"msg\":\"a \\\"quoted\\\"\\nmessage\"}"
        );
    }

    #[test]
    fn json_f64_handles_specials() {
        assert_eq!(json_f64(8.0), "8");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn memory_sink_capacity_evicts_oldest_first() {
        let s = MemorySink::with_capacity(3);
        for step in 0..5 {
            s.event(&Event::Metric {
                name: "m",
                step,
                value: step as f64,
            });
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        let kept: Vec<u64> = s
            .snapshot()
            .iter()
            .map(|e| match e {
                Event::Metric { step, .. } => *step,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted first");

        let zero = MemorySink::with_capacity(0);
        zero.event(&Event::Histogram {
            name: "h",
            value: 1.0,
        });
        assert!(zero.is_empty());
        assert_eq!(zero.evicted(), 1);

        let unbounded = MemorySink::new();
        for step in 0..100 {
            unbounded.event(&Event::Metric {
                name: "m",
                step,
                value: 0.0,
            });
        }
        assert_eq!(unbounded.len(), 100);
        assert_eq!(unbounded.evicted(), 0);
    }

    #[test]
    fn jsonl_timeline_record_schema() {
        let _g = crate::test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cq-obs-tl-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("temp file");
        sink.event(&Event::Timeline {
            name: "pool.busy",
            cat: "pool",
            tid: 2,
            start_ns: 1_048_576,
            dur_ns: 524_288,
        });
        Sink::flush(&sink);
        let text = std::fs::read_to_string(&path).expect("trace readable");
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            text.trim(),
            "{\"t\":\"tl\",\"name\":\"pool.busy\",\"cat\":\"pool\",\"tid\":2,\"ts\":1048576,\"dur\":524288}"
        );
    }

    #[test]
    fn memory_sink_counts_timeline_evictions_separately() {
        let tl = |i: u64| Event::Timeline {
            name: "pool.busy",
            cat: "pool",
            tid: 0,
            start_ns: i,
            dur_ns: 1,
        };
        let s = MemorySink::with_capacity(2);
        // Timeline events count toward the cap like everything else...
        s.event(&tl(0));
        s.event(&tl(1));
        s.event(&Event::Histogram {
            name: "h",
            value: 1.0,
        });
        s.event(&Event::Histogram {
            name: "h",
            value: 2.0,
        });
        assert_eq!(s.len(), 2);
        // ...but their evictions are tallied on their own counter.
        assert_eq!(s.evicted_timeline(), 2);
        assert_eq!(s.evicted(), 0);
        s.event(&tl(2));
        assert_eq!(s.evicted(), 1, "the evicted histogram");
        assert_eq!(s.evicted_timeline(), 2);

        let zero = MemorySink::with_capacity(0);
        zero.event(&tl(0));
        assert_eq!(zero.evicted_timeline(), 1);
        assert_eq!(zero.evicted(), 0);
    }

    #[test]
    fn jsonl_health_record_schema() {
        let _g = crate::test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cq-obs-health-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("temp file");
        sink.event(&Event::Health {
            detector: "nan_sentinel",
            verdict: crate::health::Verdict::Critical,
            step: 3,
            value: f64::NAN,
            message: "loss is NaN at step 3".to_string(),
        });
        Sink::flush(&sink);
        let text = std::fs::read_to_string(&path).expect("trace readable");
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            text.trim(),
            "{\"t\":\"health\",\"detector\":\"nan_sentinel\",\"verdict\":\"critical\",\"step\":3,\"v\":null,\"msg\":\"loss is NaN at step 3\"}"
        );
    }

    #[test]
    fn counting_sink_counts() {
        let s = CountingSink::new();
        s.event(&Event::Histogram {
            name: "h",
            value: 1.0,
        });
        s.event(&Event::Histogram {
            name: "h",
            value: 2.0,
        });
        assert_eq!(s.count(), 2);
    }
}
