//! cq-prof: opt-in per-thread timeline profiling on top of cq-obs.
//!
//! A timeline event is a closed interval on one thread — a span scope, a
//! worker's busy stretch inside a pool job, or the park wait between two
//! jobs — carrying a dense process-local thread id and monotonic
//! nanosecond timestamps relative to a per-process epoch. Events are
//! staged in per-thread buffers (the hot path is a thread-local
//! `Vec::push` — no lock, no syscall, no allocation once the buffer is
//! warm) and drained through the installed [`Sink`](crate::Sink) in
//! batches: at job boundaries on pool workers, at buffer-high-water, and
//! on [`flush`](crate::flush) for the calling thread.
//!
//! ## Gating and determinism
//!
//! Profiling is a second gate ON TOP of the sink gate:
//!
//! - `CQ_OBS` unset → every hook (including these) stays a
//!   branch-on-atomic-load no-op; no clock is read.
//! - sink installed, profiling off (the default) → the event stream is
//!   byte-identical to an unprofiled run, so golden traces, the
//!   `cq-trace diff` gates and the exact-event tests never see timeline
//!   records by accident.
//! - sink installed + `CQ_PROF=1` → timeline records flow as *extra*
//!   events. Profiling reads clocks and thread ids, never RNG state,
//!   chunk order or accumulation order, so losses and sampled bit
//!   sequences stay bitwise identical with profiling on or off (pinned
//!   by `tests/timeline_profile.rs`).
//!
//! Thread ids are assigned in first-use order and are only stable within
//! one process; they exist to separate lanes in a timeline view
//! (`cq-trace timeline`), not to name threads across runs.

use crate::{emit, Event};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Timeline category for span scopes (mirrors the span event stream).
pub const CAT_SPAN: &str = "span";

/// Timeline category for worker-pool intervals (busy/park lanes).
pub const CAT_POOL: &str = "pool";

/// Timeline name for a worker's busy stretch inside one pool job.
pub const POOL_BUSY: &str = "pool.busy";

/// Timeline name for a worker's park wait between two pool jobs.
pub const POOL_PARK: &str = "pool.park";

static PROF: AtomicBool = AtomicBool::new(false);

/// Bumped on every enable so buffers staged during a previous profiling
/// session can never drain into a sink installed later (test isolation:
/// pool workers outlive any single profiled scope).
static GENERATION: AtomicU64 = AtomicU64::new(0);

static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Buffer high-water mark that forces a drain from `record` — bounds
/// per-thread memory while keeping drains rare relative to events.
const DRAIN_AT: usize = 256;

#[derive(Debug)]
struct Interval {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    end_ns: u64,
}

#[derive(Debug)]
struct ThreadBuf {
    generation: u64,
    events: Vec<Interval>,
}

thread_local! {
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    static BUF: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf { generation: 0, events: Vec::new() })
    };
}

/// Whether timeline profiling is active: a sink is installed AND the
/// profiling gate is on. This is the check every profiling hook pays.
#[inline]
pub fn enabled() -> bool {
    crate::enabled() && PROF.load(Ordering::Relaxed)
}

/// Turns the profiling gate on or off. Normally driven by `CQ_PROF`
/// through [`sink::init_from_env`](crate::sink::init_from_env); tests
/// toggle it directly (under the same serialisation they already use for
/// [`install`](crate::install)).
pub fn set_enabled(on: bool) {
    if on {
        GENERATION.fetch_add(1, Ordering::Relaxed);
    }
    PROF.store(on, Ordering::SeqCst);
}

/// Dense process-local id of the calling thread, assigned on first use.
pub fn thread_id() -> u64 {
    TID.with(|t| {
        if t.get() == u64::MAX {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Monotonic nanoseconds since the process profiling epoch (the first
/// call). All timeline timestamps share this origin so intervals from
/// different threads are directly comparable.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Stages one closed interval `[start_ns, end_ns)` for the calling
/// thread. A no-op unless [`enabled`]. The interval reaches the sink on
/// the next drain of this thread's buffer.
pub fn record(name: &'static str, cat: &'static str, start_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let full = BUF.with(|b| {
        let mut b = b.borrow_mut();
        if b.generation != generation {
            b.events.clear();
            b.generation = generation;
        }
        b.events.push(Interval {
            name,
            cat,
            start_ns,
            end_ns,
        });
        b.events.len() >= DRAIN_AT
    });
    if full {
        drain_thread();
    }
}

/// Drains the calling thread's staged intervals through the installed
/// sink as [`Event::Timeline`] records. Pool workers call this after
/// each job; [`flush`](crate::flush) calls it for the flushing thread.
/// A no-op unless [`enabled`].
pub fn drain_thread() {
    if !enabled() {
        return;
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let staged = BUF.with(|b| {
        let mut b = b.borrow_mut();
        if b.generation != generation {
            b.events.clear();
            b.generation = generation;
            return Vec::new();
        }
        std::mem::take(&mut b.events)
    });
    if staged.is_empty() {
        return;
    }
    let tid = thread_id();
    for iv in staged {
        emit(Event::Timeline {
            name: iv.name,
            cat: iv.cat,
            tid,
            start_ns: iv.start_ns,
            dur_ns: iv.end_ns.saturating_sub(iv.start_ns),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    #[test]
    fn disabled_gate_stages_nothing() {
        let _g = crate::test_lock();
        assert!(!enabled());
        record("x", CAT_SPAN, 0, 10);
        drain_thread(); // must not panic or emit
        let sink = Arc::new(MemorySink::new());
        crate::install(sink.clone());
        // Sink on, profiling gate still off: stream stays timeline-free.
        record("x", CAT_SPAN, 0, 10);
        crate::flush();
        crate::uninstall();
        crate::reset();
        assert!(sink
            .take()
            .iter()
            .all(|e| !matches!(e, Event::Timeline { .. })));
    }

    #[test]
    fn record_and_drain_round_trip() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemorySink::new());
        crate::install(sink.clone());
        set_enabled(true);
        record("a", CAT_SPAN, 5, 15);
        record(POOL_BUSY, CAT_POOL, 20, 30);
        drain_thread();
        set_enabled(false);
        crate::uninstall();
        crate::reset();
        let tl: Vec<Event> = sink
            .take()
            .into_iter()
            .filter(|e| matches!(e, Event::Timeline { .. }))
            .collect();
        let tid = thread_id();
        assert_eq!(
            tl,
            vec![
                Event::Timeline {
                    name: "a",
                    cat: CAT_SPAN,
                    tid,
                    start_ns: 5,
                    dur_ns: 10
                },
                Event::Timeline {
                    name: POOL_BUSY,
                    cat: CAT_POOL,
                    tid,
                    start_ns: 20,
                    dur_ns: 10
                },
            ]
        );
    }

    #[test]
    fn stale_generation_buffers_are_discarded() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemorySink::new());
        crate::install(sink.clone());
        set_enabled(true);
        record("stale", CAT_SPAN, 0, 1);
        // Simulate a new profiling session before the buffer drained.
        set_enabled(false);
        set_enabled(true);
        drain_thread();
        set_enabled(false);
        crate::uninstall();
        crate::reset();
        assert!(
            sink.take()
                .iter()
                .all(|e| !matches!(e, Event::Timeline { .. })),
            "stale interval must not leak into the new session"
        );
    }

    #[test]
    fn spans_emit_timeline_intervals_when_profiled() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemorySink::new());
        crate::install(sink.clone());
        set_enabled(true);
        {
            let _a = crate::span("outer");
            let _b = crate::span("inner");
        }
        crate::flush();
        set_enabled(false);
        crate::uninstall();
        crate::reset();
        let events = sink.take();
        let tl: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::Timeline { .. }))
            .collect();
        assert_eq!(tl.len(), 2, "one interval per span scope: {events:?}");
        match (tl[0], tl[1]) {
            (
                Event::Timeline {
                    name: "inner",
                    cat: "span",
                    dur_ns: inner,
                    start_ns: s_inner,
                    ..
                },
                Event::Timeline {
                    name: "outer",
                    cat: "span",
                    dur_ns: outer,
                    start_ns: s_outer,
                    ..
                },
            ) => {
                assert!(s_outer <= s_inner, "outer opened first");
                assert!(
                    s_inner + inner <= s_outer + outer,
                    "inner nests inside outer"
                );
            }
            other => panic!("unexpected timeline records: {other:?}"),
        }
        // The regular span stream is still present and unchanged in shape.
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::SpanEnd { name: "outer", .. })));
    }
}
