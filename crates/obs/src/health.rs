//! Online training-health monitor: streaming detectors over the metric
//! stream that turn raw telemetry into [`Verdict`]s.
//!
//! ## Detectors
//!
//! | detector | watches | math |
//! |---|---|---|
//! | `nan_sentinel` | `train.loss`, `train.grad_norm`, `train.nonfinite_steps` | non-finite value (or a positive non-finite-step count) → Critical |
//! | `grad_anomaly` | `train.grad_norm` | EWMA mean/variance z-score; after a warmup of `ewma_warmup` samples, `abs(z) > warn_z` → Warn, `> crit_z` → Critical |
//! | `loss_plateau` | `train.loss` | no relative improvement over the best loss by `plateau_min_delta` for `plateau_patience` observations → Warn |
//! | `collapse_probe` | `embed.feature_std`, `embed.pos_cosine`, `embed.uniformity` | SSL collapse thresholds (feature std → 0, positive cosine → 1, uniformity → 0) |
//!
//! ## Wiring
//!
//! The monitor is process-global, like the sink. [`crate::metric`] feeds
//! every observation to [`observe_metric`] while the monitor is installed
//! — gated on one extra relaxed atomic load, so with `CQ_OBS_HEALTH=off`
//! (or unset) the hot path cost is unchanged and the PR-2 zero-allocation
//! guard still holds. Non-Ok verdicts are emitted as
//! [`Event::Health`](crate::Event::Health) records (reaching the JSONL
//! trace and the summary aggregate whenever a sink is installed) and kept
//! in an internal capped log readable via [`verdicts`].
//!
//! ## Policy
//!
//! `CQ_OBS_HEALTH=off|warn|abort` selects the [`HealthPolicy`]: `warn`
//! records verdicts but never interferes with the run; `abort` latches an
//! abort request on the first Critical verdict, which the trainers check
//! once per step ([`abort_requested`]) and surface as an error.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::names;

/// Health state of one detector observation: ordered, `Critical` worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Verdict {
    /// Nothing suspicious.
    #[default]
    Ok,
    /// Suspicious but survivable; recorded, never aborts.
    Warn,
    /// The run is damaged (NaN loss, collapsed encoder, exploding
    /// gradients); aborts the run under [`HealthPolicy::Abort`].
    Critical,
}

impl Verdict {
    /// Stable lowercase spelling (used by the JSONL schema and cq-trace).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "warn",
            Verdict::Critical => "critical",
        }
    }

    /// Parses the spelling produced by [`Verdict::as_str`].
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "ok" => Some(Verdict::Ok),
            "warn" => Some(Verdict::Warn),
            "critical" => Some(Verdict::Critical),
            _ => None,
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What the process does with verdicts (`CQ_OBS_HEALTH`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthPolicy {
    /// Monitor not installed; hooks stay no-ops.
    #[default]
    Off,
    /// Record verdicts (events + log), never interfere with the run.
    Warn,
    /// Additionally latch an abort request on the first Critical verdict.
    Abort,
}

impl HealthPolicy {
    /// Parses a `CQ_OBS_HEALTH` value; unknown spellings mean [`Off`].
    ///
    /// [`Off`]: HealthPolicy::Off
    pub fn parse(s: &str) -> HealthPolicy {
        match s.to_ascii_lowercase().as_str() {
            "warn" => HealthPolicy::Warn,
            "abort" => HealthPolicy::Abort,
            _ => HealthPolicy::Off,
        }
    }
}

/// Detector thresholds. The defaults are deliberately conservative: a
/// healthy run should produce no Critical verdict, and Warn verdicts only
/// under genuinely odd telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// EWMA smoothing factor for the gradient-norm mean/variance.
    pub ewma_alpha: f64,
    /// Observations before the z-score fires (the EWMA needs history).
    pub ewma_warmup: u32,
    /// `abs(z)` above this → Warn.
    pub ewma_warn_z: f64,
    /// `abs(z)` above this → Critical.
    pub ewma_crit_z: f64,
    /// Loss observations without relative improvement before Warn.
    pub plateau_patience: u32,
    /// Minimum relative improvement over the best loss that counts.
    pub plateau_min_delta: f64,
    /// `embed.feature_std` below this → Warn (collapse forming).
    pub std_warn: f64,
    /// `embed.feature_std` below this → Critical (collapsed).
    pub std_crit: f64,
    /// `embed.pos_cosine` above this → Warn.
    pub cos_warn: f64,
    /// `embed.pos_cosine` above this → Critical.
    pub cos_crit: f64,
    /// `embed.uniformity` above this (i.e. toward 0) → Warn.
    pub uniformity_warn: f64,
    /// `embed.uniformity` above this → Critical.
    pub uniformity_crit: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            ewma_alpha: 0.2,
            ewma_warmup: 4,
            ewma_warn_z: 4.0,
            ewma_crit_z: 8.0,
            plateau_patience: 200,
            plateau_min_delta: 1e-3,
            std_warn: 0.2,
            std_crit: 0.05,
            cos_warn: 0.995,
            cos_crit: 0.9999,
            uniformity_warn: -0.05,
            uniformity_crit: -0.005,
        }
    }
}

/// One non-Ok detector firing.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictEvent {
    /// Detector that fired (`nan_sentinel`, `grad_anomaly`, ...).
    pub detector: &'static str,
    /// Severity.
    pub verdict: Verdict,
    /// Step of the observation that fired.
    pub step: u64,
    /// The observed value.
    pub value: f64,
    /// Human-readable explanation.
    pub message: String,
}

/// Streaming EWMA mean/variance z-score detector (gradient anomalies).
#[derive(Debug, Clone, Default)]
pub struct EwmaZScore {
    mean: f64,
    var: f64,
    seen: u32,
}

impl EwmaZScore {
    /// Feeds one observation; returns the z-score of `x` against the
    /// pre-update EWMA once `warmup` samples have been absorbed. The EWMA
    /// is only updated with non-anomalous values (|z| below `crit_z`), so
    /// one explosion does not swallow the next.
    pub fn observe(&mut self, x: f64, cfg: &HealthConfig) -> Option<f64> {
        if !x.is_finite() {
            return None; // the NaN sentinel owns non-finite values
        }
        let z = if self.seen >= cfg.ewma_warmup && self.var > 0.0 {
            Some((x - self.mean) / self.var.sqrt().max(1e-12))
        } else {
            None
        };
        let anomalous = z.is_some_and(|z| z.abs() > cfg.ewma_crit_z);
        if !anomalous {
            if self.seen == 0 {
                self.mean = x;
                // Seed the variance from the first magnitude so early
                // z-scores are conservative rather than infinite.
                self.var = (x * x).max(1e-12);
            } else {
                let a = cfg.ewma_alpha;
                let d = x - self.mean;
                self.mean += a * d;
                self.var = (1.0 - a) * (self.var + a * d * d);
            }
            self.seen += 1;
        }
        z
    }

    /// Observations absorbed into the EWMA so far.
    pub fn seen(&self) -> u32 {
        self.seen
    }
}

/// Streaming loss-plateau detector.
#[derive(Debug, Clone)]
pub struct Plateau {
    best: f64,
    since_improve: u32,
    fired: bool,
}

impl Default for Plateau {
    fn default() -> Self {
        Plateau {
            best: f64::INFINITY,
            since_improve: 0,
            fired: false,
        }
    }
}

impl Plateau {
    /// Feeds one loss observation; returns `true` exactly once, when the
    /// loss has not improved on its best value by `plateau_min_delta`
    /// (relative) for `plateau_patience` observations. A later
    /// improvement re-arms the detector.
    pub fn observe(&mut self, loss: f64, cfg: &HealthConfig) -> bool {
        if !loss.is_finite() {
            return false;
        }
        let improved = loss < self.best - cfg.plateau_min_delta * self.best.abs().max(1e-12);
        if improved || self.best.is_infinite() {
            self.best = self.best.min(loss);
            self.since_improve = 0;
            self.fired = false;
            return false;
        }
        self.since_improve += 1;
        if self.since_improve >= cfg.plateau_patience && !self.fired {
            self.fired = true;
            return true;
        }
        false
    }

    /// Observations since the last improvement.
    pub fn since_improve(&self) -> u32 {
        self.since_improve
    }
}

const MAX_LOGGED: usize = 64;
const MAX_FIRES_PER_DETECTOR: u32 = 8;

/// The full detector set, usable standalone (cq-trace replays traces
/// through one) or behind the process-global monitor.
#[derive(Debug, Clone)]
pub struct HealthEngine {
    cfg: HealthConfig,
    grad: EwmaZScore,
    plateau: Plateau,
    worst: Verdict,
    log: Vec<VerdictEvent>,
    fires: [(&'static str, u32); 4],
    last_step: Option<u64>,
}

const DET_NAN: &str = "nan_sentinel";
const DET_GRAD: &str = "grad_anomaly";
const DET_PLATEAU: &str = "loss_plateau";
const DET_COLLAPSE: &str = "collapse_probe";

impl Default for HealthEngine {
    fn default() -> Self {
        HealthEngine::new(HealthConfig::default())
    }
}

impl HealthEngine {
    /// Creates an engine with the given thresholds.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthEngine {
            cfg,
            grad: EwmaZScore::default(),
            plateau: Plateau::default(),
            worst: Verdict::Ok,
            log: Vec::new(),
            fires: [
                (DET_NAN, 0),
                (DET_GRAD, 0),
                (DET_PLATEAU, 0),
                (DET_COLLAPSE, 0),
            ],
            last_step: None,
        }
    }

    /// Feeds one metric observation through every detector that watches
    /// it. Returns the verdict events that fired (usually none — the
    /// healthy path allocates nothing beyond this empty `Vec`).
    pub fn observe(&mut self, name: &str, step: u64, value: f64) -> Vec<VerdictEvent> {
        // A step counter moving backwards means a new training phase in
        // the same process (bench binaries chain pretrain → fine-tune →
        // linear probe, each restarting at step 0). Per-run state must
        // not leak across the boundary: a fine-tune's small grad norms
        // would otherwise make the next pretrain's normal ones look like
        // a many-sigma anomaly.
        match self.last_step {
            Some(last) if step < last => {
                self.grad = EwmaZScore::default();
                self.plateau = Plateau::default();
                self.last_step = Some(step);
            }
            Some(last) => self.last_step = Some(last.max(step)),
            None => self.last_step = Some(step),
        }
        let mut fired = Vec::new();
        match name {
            n if n == names::TRAIN_LOSS => {
                if !value.is_finite() {
                    self.fire(&mut fired, DET_NAN, Verdict::Critical, step, value, || {
                        format!("loss is {value} at step {step}")
                    });
                } else if self.plateau.observe(value, &self.cfg) {
                    let patience = self.cfg.plateau_patience;
                    let best = self.plateau.best;
                    self.fire(&mut fired, DET_PLATEAU, Verdict::Warn, step, value, || {
                        format!("loss has not improved for {patience} steps (best {best:.6})")
                    });
                }
            }
            n if n == names::TRAIN_GRAD_NORM => {
                if !value.is_finite() {
                    self.fire(&mut fired, DET_NAN, Verdict::Critical, step, value, || {
                        format!("gradient norm is {value} at step {step}")
                    });
                } else if let Some(z) = self.grad.observe(value, &self.cfg) {
                    let za = z.abs();
                    if za > self.cfg.ewma_crit_z {
                        self.fire(&mut fired, DET_GRAD, Verdict::Critical, step, value, || {
                            format!("grad norm {value:.4e} is {za:.1} EWMA sigmas from the mean")
                        });
                    } else if za > self.cfg.ewma_warn_z {
                        self.fire(&mut fired, DET_GRAD, Verdict::Warn, step, value, || {
                            format!("grad norm {value:.4e} is {za:.1} EWMA sigmas from the mean")
                        });
                    }
                }
            }
            n if n == names::TRAIN_NONFINITE_STEPS && value > 0.0 => {
                self.fire(&mut fired, DET_NAN, Verdict::Critical, step, value, || {
                    format!("{value:.0} steps this epoch had non-finite loss/gradients")
                });
            }
            n if n == names::EMBED_FEATURE_STD => {
                let (wt, ct) = (self.cfg.std_warn, self.cfg.std_crit);
                if value < ct {
                    self.fire(&mut fired, DET_COLLAPSE, Verdict::Critical, step, value, || {
                        format!("projector feature std {value:.4} < {ct} — representation collapsed")
                    });
                } else if value < wt {
                    self.fire(&mut fired, DET_COLLAPSE, Verdict::Warn, step, value, || {
                        format!("projector feature std {value:.4} < {wt} — collapse forming")
                    });
                }
            }
            n if n == names::EMBED_POS_COSINE => {
                let (wt, ct) = (self.cfg.cos_warn, self.cfg.cos_crit);
                if value > ct {
                    self.fire(
                        &mut fired,
                        DET_COLLAPSE,
                        Verdict::Critical,
                        step,
                        value,
                        || {
                            format!(
                                "positive-pair cosine {value:.6} > {ct} — views indistinguishable"
                            )
                        },
                    );
                } else if value > wt {
                    self.fire(&mut fired, DET_COLLAPSE, Verdict::Warn, step, value, || {
                        format!("positive-pair cosine {value:.6} > {wt}")
                    });
                }
            }
            n if n == names::EMBED_UNIFORMITY => {
                let (wt, ct) = (self.cfg.uniformity_warn, self.cfg.uniformity_crit);
                if value > ct {
                    self.fire(
                        &mut fired,
                        DET_COLLAPSE,
                        Verdict::Critical,
                        step,
                        value,
                        || format!("uniformity {value:.4} > {ct} — embeddings concentrated"),
                    );
                } else if value > wt {
                    self.fire(&mut fired, DET_COLLAPSE, Verdict::Warn, step, value, || {
                        format!("uniformity {value:.4} > {wt}")
                    });
                }
            }
            _ => {}
        }
        fired
    }

    fn fire<F: FnOnce() -> String>(
        &mut self,
        out: &mut Vec<VerdictEvent>,
        detector: &'static str,
        verdict: Verdict,
        step: u64,
        value: f64,
        message: F,
    ) {
        self.worst = self.worst.max(verdict);
        let slot = self.fires.iter_mut().find(|(d, _)| *d == detector);
        if let Some((_, n)) = slot {
            // Bound event volume: a NaN loss fires every step of a dead
            // run; eight records carry the signal, the rest is noise.
            if *n >= MAX_FIRES_PER_DETECTOR {
                return;
            }
            *n += 1;
        }
        let ev = VerdictEvent {
            detector,
            verdict,
            step,
            value,
            message: message(),
        };
        if self.log.len() < MAX_LOGGED {
            self.log.push(ev.clone());
        }
        out.push(ev);
    }

    /// Worst verdict seen so far (including suppressed repeats).
    pub fn worst(&self) -> Verdict {
        self.worst
    }

    /// Worst verdict a specific detector has produced.
    pub fn worst_of(&self, detector: &str) -> Verdict {
        self.log
            .iter()
            .filter(|e| e.detector == detector)
            .map(|e| e.verdict)
            .max()
            .unwrap_or(Verdict::Ok)
    }

    /// The capped verdict log, in firing order.
    pub fn log(&self) -> &[VerdictEvent] {
        &self.log
    }

    /// The thresholds this engine runs with.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }
}

// ---------------------------------------------------------------------
// Process-global monitor (the online half).
// ---------------------------------------------------------------------

static HEALTH_ENABLED: AtomicBool = AtomicBool::new(false);
static ABORT_LATCHED: AtomicBool = AtomicBool::new(false);
static MONITOR: Mutex<Option<(HealthEngine, HealthPolicy)>> = Mutex::new(None);
static ABORT_MSG: Mutex<Option<String>> = Mutex::new(None);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether the health monitor is installed. This is the one extra load
/// the metric hook pays while health is off.
#[inline]
pub fn enabled() -> bool {
    HEALTH_ENABLED.load(Ordering::Relaxed)
}

/// Installs the global monitor under `policy` (a fresh engine; any
/// previous verdict log and abort latch are cleared). `Off` uninstalls.
pub fn install(policy: HealthPolicy, cfg: HealthConfig) {
    ABORT_LATCHED.store(false, Ordering::SeqCst);
    *lock(&ABORT_MSG) = None;
    if policy == HealthPolicy::Off {
        HEALTH_ENABLED.store(false, Ordering::SeqCst);
        *lock(&MONITOR) = None;
        return;
    }
    *lock(&MONITOR) = Some((HealthEngine::new(cfg), policy));
    HEALTH_ENABLED.store(true, Ordering::SeqCst);
}

/// Uninstalls the monitor, returning its engine (verdict log included).
pub fn uninstall() -> Option<HealthEngine> {
    HEALTH_ENABLED.store(false, Ordering::SeqCst);
    ABORT_LATCHED.store(false, Ordering::SeqCst);
    *lock(&ABORT_MSG) = None;
    lock(&MONITOR).take().map(|(engine, _)| engine)
}

/// Reads `CQ_OBS_HEALTH` and installs the monitor accordingly; returns
/// the selected policy. Call next to `cq_obs::sink::init_from_env`.
pub fn init_from_env() -> HealthPolicy {
    let policy = std::env::var("CQ_OBS_HEALTH")
        .map(|v| HealthPolicy::parse(&v))
        .unwrap_or(HealthPolicy::Off);
    install(policy, HealthConfig::default());
    policy
}

/// Feeds one metric observation to the monitor (no-op when health is
/// off). Verdicts are emitted as [`Event::Health`](crate::Event::Health)
/// and, under [`HealthPolicy::Abort`], latch the abort request.
pub(crate) fn observe_metric(name: &str, step: u64, value: f64) {
    let fired = {
        let mut guard = lock(&MONITOR);
        let Some((engine, policy)) = guard.as_mut() else {
            return;
        };
        let fired = engine.observe(name, step, value);
        if *policy == HealthPolicy::Abort
            && fired.iter().any(|e| e.verdict == Verdict::Critical)
            && !ABORT_LATCHED.swap(true, Ordering::SeqCst)
        {
            if let Some(first) = fired.iter().find(|e| e.verdict == Verdict::Critical) {
                *lock(&ABORT_MSG) = Some(format!("[{}] {}", first.detector, first.message));
            }
        }
        fired
    };
    // Emit outside the monitor lock: sinks may be slow, and the Health
    // events should follow the metric that caused them in the trace.
    for ev in fired {
        crate::emit(crate::Event::Health {
            detector: ev.detector,
            verdict: ev.verdict,
            step: ev.step,
            value: ev.value,
            message: ev.message,
        });
    }
}

/// Returns the abort message once a Critical verdict has latched under
/// [`HealthPolicy::Abort`]. Trainers poll this once per step.
pub fn abort_requested() -> Option<String> {
    if !ABORT_LATCHED.load(Ordering::Relaxed) {
        return None;
    }
    lock(&ABORT_MSG).clone()
}

/// Snapshot of the monitor's verdict log (empty when health is off).
pub fn verdicts() -> Vec<VerdictEvent> {
    lock(&MONITOR)
        .as_ref()
        .map(|(e, _)| e.log().to_vec())
        .unwrap_or_default()
}

/// Worst verdict the monitor has seen (Ok when health is off).
pub fn worst() -> Verdict {
    lock(&MONITOR)
        .as_ref()
        .map(|(e, _)| e.worst())
        .unwrap_or(Verdict::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    #[test]
    fn verdict_order_and_spelling() {
        assert!(Verdict::Ok < Verdict::Warn);
        assert!(Verdict::Warn < Verdict::Critical);
        for v in [Verdict::Ok, Verdict::Warn, Verdict::Critical] {
            assert_eq!(Verdict::parse(v.as_str()), Some(v));
        }
        assert_eq!(Verdict::parse("bogus"), None);
        assert_eq!(HealthPolicy::parse("ABORT"), HealthPolicy::Abort);
        assert_eq!(HealthPolicy::parse("warn"), HealthPolicy::Warn);
        assert_eq!(HealthPolicy::parse("nope"), HealthPolicy::Off);
    }

    #[test]
    fn ewma_flags_synthetic_spike_not_steady_series() {
        let c = cfg();
        let mut d = EwmaZScore::default();
        // Steady series with mild noise: no z beyond warn threshold.
        for i in 0..50 {
            let x = 5.0 + 0.1 * ((i % 7) as f64 - 3.0);
            if let Some(z) = d.observe(x, &c) {
                assert!(z.abs() < c.ewma_warn_z, "steady series fired: z={z}");
            }
        }
        // A 100x spike must exceed the critical threshold.
        let z = d.observe(500.0, &c).expect("past warmup");
        assert!(z.abs() > c.ewma_crit_z, "spike z={z}");
        // The spike was not absorbed: the next normal value is quiet.
        let z2 = d.observe(5.0, &c).expect("past warmup");
        assert!(z2.abs() < c.ewma_warn_z, "post-spike z={z2}");
    }

    #[test]
    fn ewma_warmup_suppresses_early_scores() {
        let c = cfg();
        let mut d = EwmaZScore::default();
        for i in 0..c.ewma_warmup {
            assert_eq!(d.observe(1.0 + i as f64, &c), None, "warmup sample {i}");
        }
        assert!(d.observe(1.0, &c).is_some());
    }

    #[test]
    fn plateau_fires_once_and_rearms_on_improvement() {
        let mut c = cfg();
        c.plateau_patience = 5;
        let mut p = Plateau::default();
        assert!(!p.observe(1.0, &c));
        for i in 0..4 {
            assert!(!p.observe(1.0, &c), "observation {i}");
        }
        assert!(p.observe(1.0, &c), "patience exhausted");
        assert!(!p.observe(1.0, &c), "fires only once");
        // A genuine improvement re-arms.
        assert!(!p.observe(0.5, &c));
        assert_eq!(p.since_improve(), 0);
        for i in 0..4 {
            assert!(!p.observe(0.5, &c), "observation {i}");
        }
        assert!(p.observe(0.5, &c), "re-armed after improvement");
    }

    #[test]
    fn engine_nan_sentinel_and_fire_cap() {
        let mut e = HealthEngine::default();
        for step in 0..20 {
            e.observe(names::TRAIN_LOSS, step, f64::NAN);
        }
        assert_eq!(e.worst(), Verdict::Critical);
        assert_eq!(e.worst_of(DET_NAN), Verdict::Critical);
        let nan_fires = e.log().iter().filter(|v| v.detector == DET_NAN).count();
        assert_eq!(nan_fires as u32, MAX_FIRES_PER_DETECTOR, "volume bounded");
    }

    #[test]
    fn engine_collapse_thresholds() {
        let mut e = HealthEngine::default();
        e.observe(names::EMBED_FEATURE_STD, 0, 0.9); // healthy
        assert_eq!(e.worst(), Verdict::Ok);
        e.observe(names::EMBED_FEATURE_STD, 1, 0.1); // forming
        assert_eq!(e.worst(), Verdict::Warn);
        e.observe(names::EMBED_FEATURE_STD, 2, 0.01); // collapsed
        assert_eq!(e.worst(), Verdict::Critical);
        assert_eq!(e.worst_of(DET_COLLAPSE), Verdict::Critical);

        let mut e = HealthEngine::default();
        e.observe(names::EMBED_POS_COSINE, 0, 0.997);
        assert_eq!(e.worst(), Verdict::Warn);
        e.observe(names::EMBED_UNIFORMITY, 0, -0.001);
        assert_eq!(e.worst(), Verdict::Critical);
    }

    #[test]
    fn engine_nonfinite_step_count_trips_sentinel() {
        let mut e = HealthEngine::default();
        e.observe(names::TRAIN_NONFINITE_STEPS, 3, 0.0);
        assert_eq!(e.worst(), Verdict::Ok);
        e.observe(names::TRAIN_NONFINITE_STEPS, 6, 2.0);
        assert_eq!(e.worst_of(DET_NAN), Verdict::Critical);
    }

    #[test]
    fn engine_resets_run_state_when_step_counter_restarts() {
        let mut e = HealthEngine::default();
        // Phase one: a fine-tune with small, steady grad norms — enough
        // to complete the EWMA warmup.
        for step in 0..12 {
            e.observe(names::TRAIN_GRAD_NORM, step, 0.05);
        }
        // Phase two restarts at step 0 with 100x larger (but internally
        // steady) grad norms: without the phase reset these would read
        // as a many-sigma anomaly against phase one's statistics.
        for step in 0..12 {
            e.observe(names::TRAIN_GRAD_NORM, step, 5.0 + 0.05 * (step % 3) as f64);
        }
        assert_eq!(e.worst(), Verdict::Ok, "{:?}", e.log());
        // Within-phase spikes still fire.
        e.observe(names::TRAIN_GRAD_NORM, 12, 500.0);
        assert_eq!(e.worst_of(DET_GRAD), Verdict::Critical);
    }

    #[test]
    fn global_monitor_latches_abort_only_under_abort_policy() {
        let _g = crate::test_lock();
        install(HealthPolicy::Warn, cfg());
        observe_metric(names::TRAIN_LOSS, 0, f64::INFINITY);
        assert_eq!(worst(), Verdict::Critical);
        assert_eq!(abort_requested(), None, "warn policy never aborts");
        install(HealthPolicy::Abort, cfg());
        assert_eq!(worst(), Verdict::Ok, "install resets the engine");
        observe_metric(names::TRAIN_LOSS, 3, f64::NAN);
        let msg = abort_requested().expect("critical under abort policy");
        assert!(msg.contains("nan_sentinel"), "{msg}");
        assert_eq!(verdicts().len(), 1);
        uninstall();
        assert_eq!(abort_requested(), None);
        assert!(!enabled());
    }
}
