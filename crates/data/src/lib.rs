//! # cq-data
//!
//! Synthetic vision datasets and the input-augmentation pipeline for the
//! Contrastive Quant reproduction.
//!
//! The paper evaluates on CIFAR-100 and ImageNet, neither of which is
//! available in this environment; per the substitution protocol
//! (DESIGN.md §1) this crate generates procedural image datasets whose
//! class identity is carried by *shape + colour + texture* latents that
//! survive augmentation, while nuisance factors (pose, scale, background,
//! lighting, noise) vary freely — exactly the structure contrastive
//! learning exploits. Two presets mirror the paper's small-scale vs
//! large-scale contrast:
//!
//! - [`DatasetConfig::cifarlike`]: 16×16, 10 classes, low diversity;
//! - [`DatasetConfig::imagenetlike`]: 24×24, 20 classes, higher nuisance
//!   diversity and more samples.
//!
//! # Example
//!
//! ```
//! use cq_data::{DatasetConfig, Dataset};
//!
//! let cfg = DatasetConfig::cifarlike().with_sizes(64, 16);
//! let (train, test) = Dataset::generate(&cfg);
//! assert_eq!(train.len(), 64);
//! assert_eq!(test.len(), 16);
//! assert_eq!(train.image(0).dims(), &[3, 16, 16]);
//! ```

#![deny(missing_docs)]

mod augment;
mod batch;
mod ppm;
mod synth;

pub use augment::{AugmentConfig, AugmentPipeline};
pub use batch::{BatchIter, TwoViewBatch, TwoViewLoader};
pub use ppm::{contact_sheet, write_ppm};
pub use synth::{Dataset, DatasetConfig};
