//! Binary PPM (P6) export for CHW `f32` images — lets users eyeball the
//! synthetic datasets, augmentations and detection scenes without any
//! image-crate dependency.

use std::io::Write;
use std::path::Path;

use cq_tensor::Tensor;

/// Writes a `[3, H, W]` image with values in `[0, 1]` as binary PPM.
///
/// # Errors
///
/// Returns an I/O error on write failure.
///
/// # Panics
///
/// Panics if the tensor is not CHW with 3 channels.
pub fn write_ppm(img: &Tensor, path: &Path) -> std::io::Result<()> {
    assert_eq!(img.rank(), 3, "write_ppm expects [3, H, W]");
    assert_eq!(img.dims()[0], 3, "write_ppm expects 3 channels");
    let (h, w) = (img.dims()[1], img.dims()[2]);
    let mut buf = Vec::with_capacity(32 + 3 * h * w);
    write!(buf, "P6\n{w} {h}\n255\n")?;
    let s = img.as_slice();
    for y in 0..h {
        for x in 0..w {
            for c in 0..3 {
                let v = (s[c * h * w + y * w + x].clamp(0.0, 1.0) * 255.0).round() as u8;
                buf.push(v);
            }
        }
    }
    std::fs::write(path, buf)
}

/// Tiles a list of same-sized images into one `cols`-wide contact sheet
/// (row-major, black padding for the ragged tail).
///
/// # Panics
///
/// Panics if `images` is empty, `cols == 0`, or sizes differ.
pub fn contact_sheet(images: &[&Tensor], cols: usize) -> Tensor {
    assert!(!images.is_empty(), "contact_sheet needs images");
    assert!(cols > 0, "cols must be positive");
    let (h, w) = (images[0].dims()[1], images[0].dims()[2]);
    for img in images {
        assert_eq!(img.dims(), &[3, h, w], "all tiles must share the size");
    }
    let rows = images.len().div_ceil(cols);
    let (sheet_h, sheet_w) = (rows * h, cols * w);
    let mut data = vec![0.0f32; 3 * sheet_h * sheet_w];
    for (i, img) in images.iter().enumerate() {
        let (r, ccol) = (i / cols, i % cols);
        let s = img.as_slice();
        for c in 0..3 {
            for y in 0..h {
                for x in 0..w {
                    data[c * sheet_h * sheet_w + (r * h + y) * sheet_w + (ccol * w + x)] =
                        s[c * h * w + y * w + x];
                }
            }
        }
    }
    Tensor::from_vec(data, &[3, sheet_h, sheet_w]).expect("sheet shape") // cq-check: allow — buffer length matches dims by construction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_header_and_size() {
        let img = Tensor::full(&[3, 2, 3], 0.5);
        let dir = std::env::temp_dir().join("cq_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        write_ppm(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
        // 0.5 -> 128
        assert_eq!(*bytes.last().unwrap(), 128);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn contact_sheet_tiles_row_major() {
        let a = Tensor::full(&[3, 2, 2], 1.0);
        let b = Tensor::zeros(&[3, 2, 2]);
        let sheet = contact_sheet(&[&a, &b, &a], 2);
        assert_eq!(sheet.dims(), &[3, 4, 4]);
        // top-left tile is ones, top-right zeros
        assert_eq!(sheet.at(&[0, 0, 0]), 1.0);
        assert_eq!(sheet.at(&[0, 0, 2]), 0.0);
        // bottom-left is the third image (ones), bottom-right padding (0)
        assert_eq!(sheet.at(&[0, 2, 0]), 1.0);
        assert_eq!(sheet.at(&[0, 2, 2]), 0.0);
    }

    #[test]
    #[should_panic(expected = "share the size")]
    fn contact_sheet_rejects_mixed_sizes() {
        let a = Tensor::zeros(&[3, 2, 2]);
        let b = Tensor::zeros(&[3, 3, 3]);
        contact_sheet(&[&a, &b], 2);
    }
}
