//! Batch iteration: shuffled supervised batches and the two-view
//! contrastive loader (augmentation parallelised over the batch).

use cq_tensor::par::parallel_chunks_mut_pair;
use cq_tensor::{CqRng, Tensor};
use rand::{Rng, SeedableRng};

use crate::{AugmentPipeline, Dataset};

// Images pushed through the two-view augmentation pipeline; no-op unless a
// cq-obs sink is installed.
static AUGMENTED_IMAGES: cq_obs::Counter = cq_obs::Counter::new("data.images");

/// Iterator over shuffled `(images, labels)` mini-batches of a dataset.
///
/// The last partial batch is dropped (standard for BN-based training).
#[derive(Debug)]
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a shuffled batch iterator for one epoch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new<R: Rng>(dataset: &'a Dataset, batch_size: usize, rng: &mut R) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        BatchIter {
            dataset,
            order: Tensor::permutation(dataset.len(), rng),
            batch_size,
            cursor: 0,
        }
    }

    /// Number of full batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.dataset.len() / self.batch_size
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor + self.batch_size > self.order.len() {
            return None;
        }
        let idxs = &self.order[self.cursor..self.cursor + self.batch_size];
        self.cursor += self.batch_size;
        Some(self.dataset.batch(idxs))
    }
}

/// A mini-batch carrying two augmented views of each image plus labels.
#[derive(Debug, Clone)]
pub struct TwoViewBatch {
    /// First augmented view, `[N, 3, H, W]`.
    pub view1: Tensor,
    /// Second augmented view, `[N, 3, H, W]`.
    pub view2: Tensor,
    /// Ground-truth labels (unused by SSL training; kept for diagnostics).
    pub labels: Vec<usize>,
}

/// Loader producing [`TwoViewBatch`]es for contrastive pre-training.
///
/// Augmentation is parallelised over the batch; determinism is preserved
/// by deriving an independent per-sample RNG seed from the loader's master
/// stream before fanning out. The master stream is a serializable
/// [`CqRng`] so a training run can checkpoint the loader mid-schedule and
/// resume with bit-identical augmentations.
#[derive(Debug)]
pub struct TwoViewLoader {
    pipeline: AugmentPipeline,
    rng: CqRng,
    batch_size: usize,
}

impl TwoViewLoader {
    /// Creates a loader with the given augmentation pipeline and seed.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(pipeline: AugmentPipeline, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        TwoViewLoader {
            pipeline,
            rng: CqRng::seed_from_u64(seed),
            batch_size,
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The master RNG state, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores a master RNG state captured by [`rng_state`].
    ///
    /// [`rng_state`]: TwoViewLoader::rng_state
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = CqRng::from_state(state);
    }

    /// Number of batches per epoch over `dataset`.
    pub fn batches_per_epoch(&self, dataset: &Dataset) -> usize {
        dataset.len() / self.batch_size
    }

    /// Produces all two-view batches of one shuffled epoch.
    pub fn epoch(&mut self, dataset: &Dataset) -> Vec<TwoViewBatch> {
        let _sp = cq_obs::span("data.epoch");
        let order = Tensor::permutation(dataset.len(), &mut self.rng);
        let nb = dataset.len() / self.batch_size;
        let mut out = Vec::with_capacity(nb);
        for b in 0..nb {
            let idxs = &order[b * self.batch_size..(b + 1) * self.batch_size];
            out.push(self.make_batch(dataset, idxs));
        }
        out
    }

    /// Builds one two-view batch from explicit sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn make_batch(&mut self, dataset: &Dataset, indices: &[usize]) -> TwoViewBatch {
        let _sp = cq_obs::span("data.make_batch");
        AUGMENTED_IMAGES.add(indices.len() as u64);
        let n = indices.len();
        let s = dataset.image_size();
        let chw = 3 * s * s;
        // Per-sample seeds drawn serially => deterministic regardless of
        // worker scheduling.
        let seeds: Vec<u64> = (0..n).map(|_| self.rng.gen()).collect();
        let mut v1 = vec![0.0f32; n * chw];
        let mut v2 = vec![0.0f32; n * chw];
        let pipeline = self.pipeline;
        // Each sample owns one disjoint chunk of each view buffer, so the
        // workers write lock-free.
        parallel_chunks_mut_pair(&mut v1, &mut v2, chw, chw, |i, c1, c2| {
            let mut srng = CqRng::seed_from_u64(seeds[i]);
            let img = dataset.image(indices[i]);
            let (a, b) = pipeline.two_views(img, &mut srng);
            c1.copy_from_slice(a.as_slice());
            c2.copy_from_slice(b.as_slice());
        });
        let labels = indices.iter().map(|&i| dataset.label(i)).collect();
        TwoViewBatch {
            view1: Tensor::from_vec(v1, &[n, 3, s, s]).expect("view1 shape"), // cq-check: allow — buffer length matches dims by construction
            view2: Tensor::from_vec(v2, &[n, 3, s, s]).expect("view2 shape"), // cq-check: allow — buffer length matches dims by construction
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AugmentConfig, DatasetConfig};
    use rand::rngs::StdRng;

    fn tiny() -> Dataset {
        Dataset::generate(&DatasetConfig::cifarlike().with_sizes(32, 8)).0
    }

    #[test]
    fn batch_iter_covers_dataset_once() {
        let ds = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let it = BatchIter::new(&ds, 8, &mut rng);
        assert_eq!(it.num_batches(), 4);
        let mut count = 0;
        for (x, labels) in it {
            assert_eq!(x.dims(), &[8, 3, 16, 16]);
            assert_eq!(labels.len(), 8);
            count += 1;
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn batch_iter_drops_ragged_tail() {
        let ds = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let it = BatchIter::new(&ds, 10, &mut rng);
        assert_eq!(it.count(), 3); // 32 / 10
    }

    #[test]
    fn two_view_loader_shapes_and_determinism() {
        let ds = tiny();
        let mut l1 = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::simclr()), 8, 42);
        let mut l2 = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::simclr()), 8, 42);
        let e1 = l1.epoch(&ds);
        let e2 = l2.epoch(&ds);
        assert_eq!(e1.len(), 4);
        assert_eq!(e1[0].view1.dims(), &[8, 3, 16, 16]);
        assert_eq!(e1[0].view1, e2[0].view1);
        assert_eq!(e1[2].view2, e2[2].view2);
        assert_ne!(e1[0].view1, e1[0].view2);
    }

    #[test]
    fn different_loader_seeds_give_different_views() {
        let ds = tiny();
        let mut l1 = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::simclr()), 8, 1);
        let mut l2 = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::simclr()), 8, 2);
        assert_ne!(l1.epoch(&ds)[0].view1, l2.epoch(&ds)[0].view1);
    }

    #[test]
    fn loader_rng_state_round_trip_resumes_stream() {
        let ds = tiny();
        let mut full = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::simclr()), 8, 42);
        let mut part = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::simclr()), 8, 42);
        full.epoch(&ds);
        let e2_full = full.epoch(&ds);

        // Simulate checkpoint/resume between epochs 1 and 2.
        part.epoch(&ds);
        let state = part.rng_state();
        let mut resumed = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::simclr()), 8, 0);
        resumed.set_rng_state(state);
        let e2_resumed = resumed.epoch(&ds);
        assert_eq!(e2_full[0].view1, e2_resumed[0].view1);
        assert_eq!(e2_full[3].view2, e2_resumed[3].view2);
    }

    #[test]
    fn none_augment_views_equal_source() {
        let ds = tiny();
        let mut loader = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::none()), 4, 7);
        let b = loader.make_batch(&ds, &[0, 1, 2, 3]);
        assert_eq!(b.view1, b.view2);
        assert_eq!(&b.view1.as_slice()[..768], ds.image(0).as_slice());
    }
}
