//! Procedural image dataset generator.
//!
//! Every sample is rendered from two groups of latent factors:
//!
//! - **class latents** (shared by all samples of a class): a shape
//!   archetype, a base hue, and a texture frequency signature;
//! - **nuisance latents** (per sample): object position/scale/rotation,
//!   background gradient, lighting, and pixel noise.
//!
//! A good representation must become invariant to the nuisance factors
//! while staying sensitive to the class latents — the same structure the
//! paper's augmentation-consistency objective targets on CIFAR/ImageNet.

use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Human-readable name ("cifarlike" / "imagenetlike").
    pub name: String,
    /// Square image side in pixels.
    pub image_size: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Strength of nuisance variation in `[0, 1]` — the "diversity" axis
    /// distinguishing the imagenetlike config from the cifarlike one.
    pub nuisance: f32,
    /// Master seed; train/test derive distinct streams from it.
    pub seed: u64,
}

impl DatasetConfig {
    /// Small-scale, low-diversity preset standing in for CIFAR-100.
    pub fn cifarlike() -> Self {
        DatasetConfig {
            name: "cifarlike".into(),
            image_size: 16,
            num_classes: 10,
            train_size: 2048,
            test_size: 512,
            nuisance: 0.45,
            seed: 1001,
        }
    }

    /// Larger, higher-diversity preset standing in for ImageNet.
    pub fn imagenetlike() -> Self {
        DatasetConfig {
            name: "imagenetlike".into(),
            image_size: 24,
            num_classes: 20,
            train_size: 4096,
            test_size: 1024,
            nuisance: 0.8,
            seed: 2002,
        }
    }

    /// Overrides the train/test sizes (scaled experiment protocol).
    pub fn with_sizes(mut self, train: usize, test: usize) -> Self {
        self.train_size = train;
        self.test_size = test;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Class-level latent description.
#[derive(Debug, Clone, Copy)]
struct ClassLatent {
    shape: u8,
    hue: f32,
    tex_freq: f32,
    tex_angle: f32,
}

/// An in-memory labelled image dataset (CHW `f32` images in `[0, 1]`).
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
    num_classes: usize,
    image_size: usize,
}

impl Dataset {
    /// Generates the train and test splits described by `cfg`.
    ///
    /// Both splits draw from the same class latents but disjoint nuisance
    /// streams, like a real dataset's i.i.d. split.
    pub fn generate(cfg: &DatasetConfig) -> (Dataset, Dataset) {
        let latents = class_latents(cfg);
        let train = Self::render_split(
            cfg,
            &latents,
            cfg.train_size,
            cfg.seed.wrapping_mul(0x9E37_79B9),
        );
        let test = Self::render_split(
            cfg,
            &latents,
            cfg.test_size,
            cfg.seed.wrapping_mul(0x85EB_CA6B).wrapping_add(1),
        );
        (train, test)
    }

    fn render_split(cfg: &DatasetConfig, latents: &[ClassLatent], n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % cfg.num_classes; // balanced classes
            let img = render_sample(cfg, &latents[class], &mut rng);
            images.push(img);
            labels.push(class);
        }
        // Shuffle so class order is not systematic.
        let perm = Tensor::permutation(n, &mut rng);
        let images = perm.iter().map(|&i| images[i].clone()).collect();
        let labels = perm.iter().map(|&i| labels[i]).collect();
        Dataset {
            images,
            labels,
            num_classes: cfg.num_classes,
            image_size: cfg.image_size,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image side length.
    pub fn image_size(&self) -> usize {
        self.image_size
    }

    /// The `i`-th image (`[3, H, W]`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn image(&self, i: usize) -> &Tensor {
        &self.images[i]
    }

    /// The `i`-th label.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Stacks the images at `indices` into an NCHW batch with labels.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let c = 3;
        let s = self.image_size;
        let mut data = Vec::with_capacity(indices.len() * c * s * s);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.images[i].as_slice());
            labels.push(self.labels[i]);
        }
        let t = Tensor::from_vec(data, &[indices.len(), c, s, s]).expect("batch assembly"); // cq-check: allow — buffer length matches dims by construction
        (t, labels)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Per-channel mean and standard deviation over the whole dataset —
    /// useful for normalisation and for verifying generator changes.
    pub fn channel_stats(&self) -> ([f32; 3], [f32; 3]) {
        let s = self.image_size;
        let mut mean = [0.0f64; 3];
        let mut var = [0.0f64; 3];
        let n = (self.images.len() * s * s).max(1) as f64;
        for img in &self.images {
            for (c, mv) in mean.iter_mut().enumerate() {
                for &v in &img.as_slice()[c * s * s..(c + 1) * s * s] {
                    *mv += v as f64;
                }
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        for img in &self.images {
            for c in 0..3 {
                for &v in &img.as_slice()[c * s * s..(c + 1) * s * s] {
                    let d = v as f64 - mean[c];
                    // cq-allow(no-naive-hot-loop): one-time per-channel variance pass over the dataset; f64 reduction, not a matmul
                    var[c] += d * d;
                }
            }
        }
        let mean_f = [mean[0] as f32, mean[1] as f32, mean[2] as f32];
        let std_f = [
            (var[0] / n).sqrt() as f32,
            (var[1] / n).sqrt() as f32,
            (var[2] / n).sqrt() as f32,
        ];
        (mean_f, std_f)
    }

    /// Class-stratified label subset of the given fraction — the paper's
    /// 10% / 1% semi-supervised fine-tuning splits. Guarantees at least
    /// one sample per class.
    pub fn stratified_subset(&self, fraction: f32, rng: &mut StdRng) -> Dataset {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut chosen = Vec::new();
        for idxs in &by_class {
            if idxs.is_empty() {
                continue;
            }
            let k = ((idxs.len() as f32 * fraction).round() as usize)
                .max(1)
                .min(idxs.len());
            let perm = Tensor::permutation(idxs.len(), rng);
            chosen.extend(perm[..k].iter().map(|&p| idxs[p]));
        }
        chosen.sort_unstable();
        Dataset {
            images: chosen.iter().map(|&i| self.images[i].clone()).collect(),
            labels: chosen.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
            image_size: self.image_size,
        }
    }
}

/// Golden-ratio-spaced hues plus shape/texture assignment per class.
fn class_latents(cfg: &DatasetConfig) -> Vec<ClassLatent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.num_classes)
        .map(|c| ClassLatent {
            shape: (c % 5) as u8,
            hue: (c as f32 * 0.618_034) % 1.0,
            tex_freq: 1.5 + (c / 5) as f32 * 1.7 + rng.gen_range(0.0..0.4),
            tex_angle: rng.gen_range(0.0..std::f32::consts::PI),
        })
        .collect()
}

/// HSV-ish hue to RGB (s = v = 1).
fn hue_to_rgb(h: f32) -> [f32; 3] {
    let h6 = (h % 1.0) * 6.0;
    let x = 1.0 - (h6 % 2.0 - 1.0).abs();
    match h6 as usize {
        0 => [1.0, x, 0.0],
        1 => [x, 1.0, 0.0],
        2 => [0.0, 1.0, x],
        3 => [0.0, x, 1.0],
        4 => [x, 0.0, 1.0],
        _ => [1.0, 0.0, x],
    }
}

/// Signed distance-ish membership of point `(u, v)` (object frame, roughly
/// `[-1, 1]`) in shape `id`. Positive inside.
fn shape_mask(id: u8, u: f32, v: f32) -> bool {
    match id {
        0 => u * u + v * v < 0.8,                             // disc
        1 => u.abs() < 0.75 && v.abs() < 0.75,                // square
        2 => v > -0.7 && v < 1.3 * (0.75 - u.abs()),          // triangle
        3 => (u * u + v * v < 0.9) && (u * u + v * v > 0.35), // ring
        _ => u.abs() + v.abs() < 0.95,                        // diamond
    }
}

/// Renders one sample: background gradient + textured class shape +
/// lighting + noise.
fn render_sample(cfg: &DatasetConfig, lat: &ClassLatent, rng: &mut StdRng) -> Tensor {
    let s = cfg.image_size;
    let nu = cfg.nuisance;
    // nuisance draws
    let cx = 0.5 + nu * rng.gen_range(-0.25..0.25);
    let cy = 0.5 + nu * rng.gen_range(-0.25..0.25);
    let scale = 0.34 * (1.0 + nu * rng.gen_range(-0.35..0.35));
    let rot = nu * rng.gen_range(-0.8..0.8f32);
    let (sin_r, cos_r) = rot.sin_cos();
    let bg_hue = rng.gen_range(0.0..1.0f32);
    let bg_angle = rng.gen_range(0.0..std::f32::consts::PI);
    let (bg_sin, bg_cos) = bg_angle.sin_cos();
    let bg_strength = 0.2 + 0.3 * nu;
    let light = 1.0 + nu * rng.gen_range(-0.3..0.3);
    let noise_sigma = 0.02 + 0.06 * nu;
    let phase = rng.gen_range(0.0..std::f32::consts::TAU);

    let fg = hue_to_rgb(lat.hue);
    let bg = hue_to_rgb(bg_hue);
    let (ta_sin, ta_cos) = lat.tex_angle.sin_cos();

    let mut data = vec![0.0f32; 3 * s * s];
    for y in 0..s {
        for x in 0..s {
            let fx = x as f32 / s as f32;
            let fy = y as f32 / s as f32;
            // object-frame coordinates
            let du = (fx - cx) / scale;
            let dv = (fy - cy) / scale;
            let u = cos_r * du - sin_r * dv;
            let v = sin_r * du + cos_r * dv;
            let inside = shape_mask(lat.shape, u, v);
            let px = if inside {
                // class texture: oriented sinusoid at the class frequency
                let t = ((u * ta_cos + v * ta_sin) * lat.tex_freq * std::f32::consts::PI + phase)
                    .sin()
                    * 0.5
                    + 0.5;
                [
                    fg[0] * (0.55 + 0.45 * t),
                    fg[1] * (0.55 + 0.45 * t),
                    fg[2] * (0.55 + 0.45 * t),
                ]
            } else {
                let g = 0.5 + bg_strength * ((fx - 0.5) * bg_cos + (fy - 0.5) * bg_sin);
                [bg[0] * g * 0.6, bg[1] * g * 0.6, bg[2] * g * 0.6]
            };
            for (ci, &val) in px.iter().enumerate() {
                let noisy = val * light + noise_sigma * gauss(rng);
                data[ci * s * s + y * s + x] = noisy.clamp(0.0, 1.0);
            }
        }
    }
    Tensor::from_vec(data, &[3, s, s]).expect("render buffer matches shape") // cq-check: allow — buffer length matches dims by construction
}

/// One standard-normal sample (Box–Muller, single value).
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> DatasetConfig {
        DatasetConfig::cifarlike().with_sizes(40, 20)
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = Dataset::generate(&tiny_cfg());
        let (b, _) = Dataset::generate(&tiny_cfg());
        assert_eq!(a.image(0), b.image(0));
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = Dataset::generate(&tiny_cfg());
        let (b, _) = Dataset::generate(&tiny_cfg().with_seed(999));
        assert_ne!(a.image(0), b.image(0));
    }

    #[test]
    fn images_are_valid_chw_unit_range() {
        let (train, test) = Dataset::generate(&tiny_cfg());
        for ds in [&train, &test] {
            for i in 0..ds.len() {
                let img = ds.image(i);
                assert_eq!(img.dims(), &[3, 16, 16]);
                assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn classes_are_balanced() {
        let (train, _) = Dataset::generate(&tiny_cfg());
        let mut counts = vec![0usize; train.num_classes()];
        for &l in train.labels() {
            counts[l] += 1;
        }
        assert_eq!(counts, vec![4; 10]);
    }

    #[test]
    fn same_class_samples_share_structure_more_than_cross_class() {
        // mean intra-class pixel distance must be below inter-class
        // distance — otherwise the class latents would carry no signal.
        let cfg = DatasetConfig::cifarlike().with_sizes(200, 10);
        let (train, _) = Dataset::generate(&cfg);
        let mut intra = (0.0f32, 0usize);
        let mut inter = (0.0f32, 0usize);
        for i in 0..60 {
            for j in (i + 1)..60 {
                let d = train.image(i).sub(train.image(j)).unwrap().sq_norm();
                if train.label(i) == train.label(j) {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        let intra_mean = intra.0 / intra.1.max(1) as f32;
        let inter_mean = inter.0 / inter.1.max(1) as f32;
        assert!(
            intra_mean < inter_mean,
            "intra {intra_mean} must be < inter {inter_mean}"
        );
    }

    #[test]
    fn batch_assembly() {
        let (train, _) = Dataset::generate(&tiny_cfg());
        let (x, labels) = train.batch(&[0, 3, 5]);
        assert_eq!(x.dims(), &[3, 3, 16, 16]);
        assert_eq!(labels.len(), 3);
        assert_eq!(&x.as_slice()[..768], train.image(0).as_slice());
    }

    #[test]
    fn stratified_subset_fraction_and_coverage() {
        let cfg = DatasetConfig::cifarlike().with_sizes(400, 10);
        let (train, _) = Dataset::generate(&cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let sub = train.stratified_subset(0.1, &mut rng);
        assert_eq!(sub.len(), 40); // 10% of 400, stratified
        let mut seen = [false; 10];
        for &l in sub.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "every class represented");
        // 1%: at least one per class
        let sub1 = train.stratified_subset(0.01, &mut rng);
        assert_eq!(sub1.len(), 10);
    }

    #[test]
    fn imagenetlike_is_larger_and_more_diverse() {
        let c = DatasetConfig::cifarlike();
        let i = DatasetConfig::imagenetlike();
        assert!(i.image_size > c.image_size);
        assert!(i.num_classes > c.num_classes);
        assert!(i.nuisance > c.nuisance);
        assert!(i.train_size > c.train_size);
    }

    #[test]
    fn class_counts_and_channel_stats() {
        let (train, _) = Dataset::generate(&tiny_cfg());
        assert_eq!(train.class_counts().iter().sum::<usize>(), train.len());
        let (mean, std) = train.channel_stats();
        for c in 0..3 {
            assert!((0.05..0.95).contains(&mean[c]), "mean[{c}] = {}", mean[c]);
            assert!(std[c] > 0.01, "std[{c}] = {}", std[c]);
        }
    }

    #[test]
    fn hue_wheel_produces_distinct_primaries() {
        assert_eq!(hue_to_rgb(0.0), [1.0, 0.0, 0.0]);
        let g = hue_to_rgb(2.0 / 6.0);
        assert!(g[1] == 1.0 && g[0] < 0.01);
    }
}
