//! Input augmentations — the `Aug_1`, `Aug_2` of Eq. 3.
//!
//! The pipeline follows SimCLR's recipe (random resized crop, horizontal
//! flip, colour jitter, random grayscale, Gaussian blur), implemented
//! directly on CHW `f32` images.

use cq_tensor::Tensor;

use rand::Rng;

/// Probabilities and strengths of each augmentation op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Minimum crop area fraction for the random resized crop.
    pub crop_min_scale: f32,
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// Colour-jitter strength (brightness/contrast/saturation factor
    /// range is `1 ± strength`).
    pub jitter: f32,
    /// Probability of converting to grayscale.
    pub grayscale_prob: f32,
    /// Probability of a 3×3 Gaussian blur.
    pub blur_prob: f32,
    /// Probability of a random rotation.
    pub rotation_prob: f32,
    /// Maximum rotation angle in radians (bilinear resampling; corners
    /// clamp to the border).
    pub rotation_max: f32,
    /// Probability of cutout (a random square erased to the image mean).
    pub cutout_prob: f32,
    /// Cutout square side as a fraction of the image side.
    pub cutout_frac: f32,
}

impl AugmentConfig {
    /// SimCLR-strength defaults (no rotation/cutout — matching the
    /// reference recipe).
    pub fn simclr() -> Self {
        AugmentConfig {
            crop_min_scale: 0.5,
            flip_prob: 0.5,
            jitter: 0.4,
            grayscale_prob: 0.2,
            blur_prob: 0.3,
            rotation_prob: 0.0,
            rotation_max: 0.0,
            cutout_prob: 0.0,
            cutout_frac: 0.0,
        }
    }

    /// Stronger-augmentation preset (rotation + cutout on top of the
    /// SimCLR recipe) — for studying the "stronger augmentations can
    /// distort the images' structures" effect the paper discusses via its
    /// ref 16.
    pub fn strong() -> Self {
        AugmentConfig {
            rotation_prob: 0.5,
            rotation_max: 0.5,
            cutout_prob: 0.5,
            cutout_frac: 0.35,
            ..Self::simclr()
        }
    }

    /// No-op configuration (used by the CQ-Quant ablation of Table 8,
    /// where quantization is the *only* augmentation).
    pub fn none() -> Self {
        AugmentConfig {
            crop_min_scale: 1.0,
            flip_prob: 0.0,
            jitter: 0.0,
            grayscale_prob: 0.0,
            blur_prob: 0.0,
            rotation_prob: 0.0,
            rotation_max: 0.0,
            cutout_prob: 0.0,
            cutout_frac: 0.0,
        }
    }
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self::simclr()
    }
}

/// Stateless augmentation pipeline applying the configured ops in the
/// SimCLR order.
#[derive(Debug, Clone, Copy, Default)]
pub struct AugmentPipeline {
    cfg: AugmentConfig,
}

impl AugmentPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(cfg: AugmentConfig) -> Self {
        AugmentPipeline { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> AugmentConfig {
        self.cfg
    }

    /// Applies one random augmentation chain to a `[3, H, W]` image.
    ///
    /// # Panics
    ///
    /// Panics if the image is not CHW with 3 channels.
    pub fn apply<R: Rng>(&self, img: &Tensor, rng: &mut R) -> Tensor {
        assert_eq!(img.rank(), 3, "augment expects [C, H, W]");
        assert_eq!(img.dims()[0], 3, "augment expects 3 channels");
        let mut out = random_resized_crop(img, self.cfg.crop_min_scale, rng);
        if rng.gen::<f32>() < self.cfg.flip_prob {
            out = hflip(&out);
        }
        if self.cfg.rotation_prob > 0.0 && rng.gen::<f32>() < self.cfg.rotation_prob {
            let angle = rng.gen_range(-self.cfg.rotation_max..self.cfg.rotation_max.max(1e-6));
            out = rotate(&out, angle);
        }
        if self.cfg.jitter > 0.0 {
            out = color_jitter(&out, self.cfg.jitter, rng);
        }
        if rng.gen::<f32>() < self.cfg.grayscale_prob {
            out = grayscale(&out);
        }
        if rng.gen::<f32>() < self.cfg.blur_prob {
            out = blur3(&out);
        }
        if self.cfg.cutout_prob > 0.0 && rng.gen::<f32>() < self.cfg.cutout_prob {
            out = cutout(&out, self.cfg.cutout_frac, rng);
        }
        out
    }

    /// Produces the two augmented views of Eq. 3.
    pub fn two_views<R: Rng>(&self, img: &Tensor, rng: &mut R) -> (Tensor, Tensor) {
        (self.apply(img, rng), self.apply(img, rng))
    }
}

fn dims(img: &Tensor) -> (usize, usize) {
    (img.dims()[1], img.dims()[2])
}

/// Bilinear sample of channel `ch` at fractional coordinates.
fn bilinear(img: &[f32], h: usize, w: usize, ch: usize, fy: f32, fx: f32) -> f32 {
    let fy = fy.clamp(0.0, (h - 1) as f32);
    let fx = fx.clamp(0.0, (w - 1) as f32);
    let y0 = fy.floor() as usize;
    let x0 = fx.floor() as usize;
    let y1 = (y0 + 1).min(h - 1);
    let x1 = (x0 + 1).min(w - 1);
    let dy = fy - y0 as f32;
    let dx = fx - x0 as f32;
    let base = ch * h * w;
    let v00 = img[base + y0 * w + x0];
    let v01 = img[base + y0 * w + x1];
    let v10 = img[base + y1 * w + x0];
    let v11 = img[base + y1 * w + x1];
    v00 * (1.0 - dy) * (1.0 - dx) + v01 * (1.0 - dy) * dx + v10 * dy * (1.0 - dx) + v11 * dy * dx
}

/// Random crop of area in `[min_scale, 1]`, bilinearly resized back to the
/// original resolution.
pub(crate) fn random_resized_crop<R: Rng>(img: &Tensor, min_scale: f32, rng: &mut R) -> Tensor {
    let (h, w) = dims(img);
    if min_scale >= 1.0 {
        return img.clone();
    }
    let scale = rng.gen_range(min_scale..1.0f32).sqrt();
    let ch = (h as f32 * scale).max(2.0);
    let cw = (w as f32 * scale).max(2.0);
    let y0 = rng.gen_range(0.0..(h as f32 - ch).max(f32::EPSILON));
    let x0 = rng.gen_range(0.0..(w as f32 - cw).max(f32::EPSILON));
    let src = img.as_slice();
    let mut out = vec![0.0f32; 3 * h * w];
    for c in 0..3 {
        for y in 0..h {
            for x in 0..w {
                let fy = y0 + (y as f32 + 0.5) / h as f32 * ch - 0.5;
                let fx = x0 + (x as f32 + 0.5) / w as f32 * cw - 0.5;
                out[c * h * w + y * w + x] = bilinear(src, h, w, c, fy, fx);
            }
        }
    }
    Tensor::from_vec(out, img.dims()).expect("crop preserves shape") // cq-check: allow — buffer length matches dims by construction
}

/// Horizontal flip.
pub(crate) fn hflip(img: &Tensor) -> Tensor {
    let (h, w) = dims(img);
    let src = img.as_slice();
    let mut out = vec![0.0f32; 3 * h * w];
    for c in 0..3 {
        for y in 0..h {
            for x in 0..w {
                out[c * h * w + y * w + x] = src[c * h * w + y * w + (w - 1 - x)];
            }
        }
    }
    Tensor::from_vec(out, img.dims()).expect("flip preserves shape") // cq-check: allow — buffer length matches dims by construction
}

/// Random brightness / contrast / saturation jitter of strength `s`.
pub(crate) fn color_jitter<R: Rng>(img: &Tensor, s: f32, rng: &mut R) -> Tensor {
    let brightness = 1.0 + rng.gen_range(-s..s);
    let contrast = 1.0 + rng.gen_range(-s..s);
    let saturation = 1.0 + rng.gen_range(-s..s);
    let (h, w) = dims(img);
    let src = img.as_slice();
    let mean = img.mean();
    let mut out = vec![0.0f32; 3 * h * w];
    for y in 0..h {
        for x in 0..w {
            let idx = y * w + x;
            let r = src[idx];
            let g = src[h * w + idx];
            let b = src[2 * h * w + idx];
            let gray = 0.299 * r + 0.587 * g + 0.114 * b;
            for (c, &v) in [r, g, b].iter().enumerate() {
                // saturation: mix with per-pixel gray; contrast: mix with
                // global mean; brightness: scale.
                let sat = gray + saturation * (v - gray);
                let con = mean + contrast * (sat - mean);
                out[c * h * w + idx] = (con * brightness).clamp(0.0, 1.0);
            }
        }
    }
    Tensor::from_vec(out, img.dims()).expect("jitter preserves shape") // cq-check: allow — buffer length matches dims by construction
}

/// Luminance grayscale, replicated across channels.
pub(crate) fn grayscale(img: &Tensor) -> Tensor {
    let (h, w) = dims(img);
    let src = img.as_slice();
    let mut out = vec![0.0f32; 3 * h * w];
    for idx in 0..h * w {
        let gray = 0.299 * src[idx] + 0.587 * src[h * w + idx] + 0.114 * src[2 * h * w + idx];
        out[idx] = gray;
        out[h * w + idx] = gray;
        out[2 * h * w + idx] = gray;
    }
    Tensor::from_vec(out, img.dims()).expect("grayscale preserves shape") // cq-check: allow — buffer length matches dims by construction
}

/// Rotation around the image center by `angle` radians, bilinear
/// resampling with border clamping.
pub(crate) fn rotate(img: &Tensor, angle: f32) -> Tensor {
    let (h, w) = dims(img);
    let src = img.as_slice();
    let (sin_a, cos_a) = angle.sin_cos();
    let (cy, cx) = ((h as f32 - 1.0) / 2.0, (w as f32 - 1.0) / 2.0);
    let mut out = vec![0.0f32; 3 * h * w];
    for c in 0..3 {
        for y in 0..h {
            for x in 0..w {
                let dy = y as f32 - cy;
                let dx = x as f32 - cx;
                // inverse mapping
                let sy = cy + dy * cos_a - dx * sin_a;
                let sx = cx + dy * sin_a + dx * cos_a;
                out[c * h * w + y * w + x] = bilinear(src, h, w, c, sy, sx);
            }
        }
    }
    Tensor::from_vec(out, img.dims()).expect("rotate preserves shape") // cq-check: allow — buffer length matches dims by construction
}

/// Erases a random square (side = `frac` of the image side) to the image
/// mean — cutout / random-erasing.
pub(crate) fn cutout<R: Rng>(img: &Tensor, frac: f32, rng: &mut R) -> Tensor {
    let (h, w) = dims(img);
    let side = ((h.min(w)) as f32 * frac).round().max(1.0) as usize;
    if side >= h || side >= w {
        return img.clone();
    }
    let y0 = rng.gen_range(0..h - side);
    let x0 = rng.gen_range(0..w - side);
    let mean = img.mean();
    let mut out = img.clone();
    for c in 0..3 {
        for y in y0..y0 + side {
            for x in x0..x0 + side {
                out.as_mut_slice()[c * h * w + y * w + x] = mean;
            }
        }
    }
    out
}

/// 3×3 binomial blur (Gaussian approximation), edge-clamped.
pub(crate) fn blur3(img: &Tensor) -> Tensor {
    let (h, w) = dims(img);
    let src = img.as_slice();
    let mut out = vec![0.0f32; 3 * h * w];
    let k = [1.0f32, 2.0, 1.0];
    for c in 0..3 {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                let mut wsum = 0.0;
                for (dy, ky) in (-1i32..=1).zip(k) {
                    for (dx, kx) in (-1i32..=1).zip(k) {
                        let yy = (y as i32 + dy).clamp(0, h as i32 - 1) as usize;
                        let xx = (x as i32 + dx).clamp(0, w as i32 - 1) as usize;
                        acc += ky * kx * src[c * h * w + yy * w + xx]; // cq-allow(no-naive-hot-loop): 3x3 clamped-border blur on one image; augmentation, not a trainable conv
                        wsum += ky * kx;
                    }
                }
                out[c * h * w + y * w + x] = acc / wsum;
            }
        }
    }
    Tensor::from_vec(out, img.dims()).expect("blur preserves shape") // cq-check: allow — buffer length matches dims by construction
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_img() -> Tensor {
        let mut rng = StdRng::seed_from_u64(0);
        Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut rng)
    }

    #[test]
    fn hflip_is_involutive() {
        let img = test_img();
        assert_eq!(hflip(&hflip(&img)), img);
        assert_ne!(hflip(&img), img);
    }

    #[test]
    fn grayscale_channels_equal() {
        let g = grayscale(&test_img());
        let s = g.as_slice();
        for idx in 0..64 {
            assert_eq!(s[idx], s[64 + idx]);
            assert_eq!(s[idx], s[128 + idx]);
        }
    }

    #[test]
    fn blur_reduces_variance_preserves_mean() {
        let img = test_img();
        let b = blur3(&img);
        assert!(b.variance() < img.variance());
        assert!((b.mean() - img.mean()).abs() < 0.05);
    }

    #[test]
    fn crop_preserves_shape_and_range() {
        let img = test_img();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let c = random_resized_crop(&img, 0.4, &mut rng);
            assert_eq!(c.dims(), img.dims());
            assert!(c.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn jitter_stays_in_unit_range() {
        let img = test_img();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let j = color_jitter(&img, 0.8, &mut rng);
            assert!(j.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn pipeline_two_views_differ_but_correlate() {
        let img = test_img();
        let pipe = AugmentPipeline::new(AugmentConfig::simclr());
        let mut rng = StdRng::seed_from_u64(3);
        let (v1, v2) = pipe.two_views(&img, &mut rng);
        assert_eq!(v1.dims(), img.dims());
        assert_ne!(v1, v2);
        // views of the same image stay closer than views of a different image
        let other = {
            let mut r2 = StdRng::seed_from_u64(77);
            Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut r2)
        };
        let (o1, _) = pipe.two_views(&other, &mut rng);
        let d_same = v1.sub(&v2).unwrap().sq_norm();
        let d_diff = v1.sub(&o1).unwrap().sq_norm();
        assert!(d_same < d_diff);
    }

    #[test]
    fn none_config_is_identity() {
        let img = test_img();
        let pipe = AugmentPipeline::new(AugmentConfig::none());
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(pipe.apply(&img, &mut rng), img);
    }

    #[test]
    fn rotate_zero_is_identity_and_rotation_preserves_mass() {
        let img = test_img();
        let r0 = rotate(&img, 0.0);
        for (a, b) in r0.as_slice().iter().zip(img.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
        let r = rotate(&img, 0.4);
        assert_eq!(r.dims(), img.dims());
        // border clamping keeps the mean in the same ballpark
        assert!((r.mean() - img.mean()).abs() < 0.15);
        assert_ne!(r, img);
    }

    #[test]
    fn cutout_erases_expected_area() {
        let img = Tensor::ones(&[3, 8, 8]);
        let mut rng = StdRng::seed_from_u64(5);
        let c = cutout(&img, 0.5, &mut rng);
        // a 4x4 square per channel set to the mean (1.0 here => unchanged
        // values, so test with a non-constant image instead)
        let img2 = test_img();
        let c2 = cutout(&img2, 0.5, &mut rng);
        let changed = c2
            .as_slice()
            .iter()
            .zip(img2.as_slice())
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        // 3 channels x 16 pixels, minus any pixel that already equals the mean
        assert!(changed > 3 * 16 / 2, "changed {changed}");
        assert_eq!(c.dims(), img.dims());
    }

    #[test]
    fn strong_preset_still_valid_images() {
        let img = test_img();
        let pipe = AugmentPipeline::new(AugmentConfig::strong());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let out = pipe.apply(&img, &mut rng);
            assert_eq!(out.dims(), img.dims());
            assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn pipeline_deterministic_under_seed() {
        let img = test_img();
        let pipe = AugmentPipeline::new(AugmentConfig::simclr());
        let a = pipe.apply(&img, &mut StdRng::seed_from_u64(9));
        let b = pipe.apply(&img, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
