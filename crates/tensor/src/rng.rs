//! Random tensor constructors and weight-initialisation schemes.
//!
//! All constructors take an explicit `&mut StdRng` so every experiment in
//! the reproduction is seeded and bit-reproducible.

use rand::rngs::StdRng;
use rand::Rng;

use crate::{Shape, Tensor};

impl Tensor {
    /// Tensor of i.i.d. uniform samples from `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Self {
        let shape = Shape::new(shape);
        let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
        // cq-check: allow — buffer length matches dims by construction
        Tensor::from_vec(data, shape.dims()).expect("internal: length matches shape")
    }

    /// Tensor of i.i.d. standard-normal samples scaled by `std` and shifted
    /// by `mean` (Box–Muller transform; no external distribution crate
    /// needed).
    pub fn randn(shape: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Self {
        let shape = Shape::new(shape);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        // cq-check: allow — buffer length matches dims by construction
        Tensor::from_vec(data, shape.dims()).expect("internal: length matches shape")
    }

    /// Kaiming/He normal initialisation for a weight tensor with the given
    /// fan-in: `N(0, sqrt(2 / fan_in))`. Standard for ReLU networks.
    pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::randn(shape, 0.0, std, rng)
    }

    /// Xavier/Glorot uniform initialisation:
    /// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`. Used for linear
    /// projection heads.
    pub fn xavier_uniform(
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut StdRng,
    ) -> Self {
        let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        Tensor::rand_uniform(shape, -a, a, rng)
    }

    /// Returns a random permutation of `0..n` (Fisher–Yates), used for
    /// epoch shuffling.
    pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rand_uniform_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn randn_moments_approximately_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::randn(&[20_000], 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.1, "mean {}", t.mean());
        assert!(
            (t.variance().sqrt() - 2.0).abs() < 0.1,
            "std {}",
            t.variance().sqrt()
        );
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            Tensor::randn(&[16], 0.0, 1.0, &mut a),
            Tensor::randn(&[16], 0.0, 1.0, &mut b)
        );
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::kaiming_normal(&[10_000], 50, &mut rng);
        let expected = (2.0f32 / 50.0).sqrt();
        assert!((t.variance().sqrt() - expected).abs() < 0.02);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = (6.0f32 / 30.0).sqrt();
        let t = Tensor::xavier_uniform(&[1000], 10, 20, &mut rng);
        assert!(t.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Tensor::permutation(100, &mut rng);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn odd_length_randn_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = Tensor::randn(&[7], 0.0, 1.0, &mut rng);
        assert_eq!(t.len(), 7);
        assert!(t.is_finite());
    }
}
