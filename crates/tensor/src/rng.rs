//! Random tensor constructors, weight-initialisation schemes, and the
//! serializable [`CqRng`] generator used by everything that must survive
//! a checkpoint/resume cycle.
//!
//! All constructors take an explicit `&mut R` where `R: Rng`, so every
//! experiment in the reproduction is seeded and bit-reproducible. The
//! vendored `StdRng` still works everywhere, but training-time state that
//! has to be checkpointed uses [`CqRng`], whose internal state is
//! extractable ([`CqRng::state`]) and restorable ([`CqRng::from_state`]).

use rand::{Rng, RngCore, SeedableRng};

use crate::{Shape, Tensor};

/// Serializable xoshiro256++ generator, bit-compatible with the vendored
/// `rand::rngs::StdRng`.
///
/// `StdRng` hides its state, which makes exact checkpoint/resume
/// impossible; `CqRng` implements the *same* algorithm (splitmix64
/// seeding, xoshiro256++ output) with the state exposed, so a stream
/// seeded identically is bit-identical to `StdRng`'s — the invariant the
/// golden-trace tests rely on, pinned by `matches_stdrng_stream` below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CqRng {
    s: [u64; 4],
}

impl CqRng {
    /// Returns the full internal state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`state`].
    ///
    /// The all-zero state is a fixed point of xoshiro256++ (the stream is
    /// constant zero); it can never be produced by seeding, so loaders
    /// treat it as evidence of corruption and must reject it before
    /// calling this.
    ///
    /// [`state`]: CqRng::state
    pub fn from_state(s: [u64; 4]) -> Self {
        CqRng { s }
    }
}

impl SeedableRng for CqRng {
    /// Expands the seed through splitmix64, exactly as `StdRng` does.
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        CqRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for CqRng {
    /// xoshiro256++ output function, identical to the vendored `StdRng`.
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Tensor {
    /// Tensor of i.i.d. uniform samples from `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(shape);
        let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
        // cq-check: allow — buffer length matches dims by construction
        Tensor::from_vec(data, shape.dims()).expect("internal: length matches shape")
    }

    /// Tensor of i.i.d. standard-normal samples scaled by `std` and shifted
    /// by `mean` (Box–Muller transform; no external distribution crate
    /// needed).
    pub fn randn<R: Rng>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(shape);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        // cq-check: allow — buffer length matches dims by construction
        Tensor::from_vec(data, shape.dims()).expect("internal: length matches shape")
    }

    /// Kaiming/He normal initialisation for a weight tensor with the given
    /// fan-in: `N(0, sqrt(2 / fan_in))`. Standard for ReLU networks.
    pub fn kaiming_normal<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::randn(shape, 0.0, std, rng)
    }

    /// Xavier/Glorot uniform initialisation:
    /// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`. Used for linear
    /// projection heads.
    pub fn xavier_uniform<R: Rng>(
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) -> Self {
        let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        Tensor::rand_uniform(shape, -a, a, rng)
    }

    /// Returns a random permutation of `0..n` (Fisher–Yates), used for
    /// epoch shuffling.
    pub fn permutation<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rand_uniform_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn randn_moments_approximately_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::randn(&[20_000], 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.1, "mean {}", t.mean());
        assert!(
            (t.variance().sqrt() - 2.0).abs() < 0.1,
            "std {}",
            t.variance().sqrt()
        );
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            Tensor::randn(&[16], 0.0, 1.0, &mut a),
            Tensor::randn(&[16], 0.0, 1.0, &mut b)
        );
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::kaiming_normal(&[10_000], 50, &mut rng);
        let expected = (2.0f32 / 50.0).sqrt();
        assert!((t.variance().sqrt() - expected).abs() < 0.02);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = (6.0f32 / 30.0).sqrt();
        let t = Tensor::xavier_uniform(&[1000], 10, 20, &mut rng);
        assert!(t.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Tensor::permutation(100, &mut rng);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn odd_length_randn_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = Tensor::randn(&[7], 0.0, 1.0, &mut rng);
        assert_eq!(t.len(), 7);
        assert!(t.is_finite());
    }

    /// The checkpointing design assumes `CqRng` is a drop-in, bit-exact
    /// replacement for the vendored `StdRng` (same splitmix64 seeding,
    /// same xoshiro256++ output). If this ever breaks, every golden trace
    /// shifts — so pin it.
    #[test]
    fn cqrng_matches_stdrng_stream() {
        for seed in [0u64, 1, 7, 42, u64::MAX] {
            let mut std = StdRng::seed_from_u64(seed);
            let mut cq = CqRng::seed_from_u64(seed);
            for _ in 0..64 {
                assert_eq!(std.next_u64(), cq.next_u64(), "seed {seed}");
            }
            // Derived draws go through the same Rng plumbing.
            assert_eq!(std.gen_range(0..1000usize), cq.gen_range(0..1000usize));
            assert_eq!(std.gen_range(-1.0f32..1.0), cq.gen_range(-1.0f32..1.0));
            assert_eq!(std.gen::<u64>(), cq.gen::<u64>());
        }
    }

    #[test]
    fn cqrng_state_round_trips_mid_stream() {
        let mut a = CqRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = CqRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cqrng_seeding_never_produces_all_zero_state() {
        for seed in [0u64, 1, u64::MAX] {
            assert_ne!(CqRng::seed_from_u64(seed).state(), [0u64; 4]);
        }
    }
}
