//! Integer GEMM family for the i8 inference path: `i8 × i8 → i32`
//! accumulators, packed and register-tiled exactly like the f32 kernels
//! in the parent module (same `MR`×`NR` tiles, same panel layouts, same
//! [`ChunkGrid`] dispatch, same runtime SIMD-level selection).
//!
//! # Determinism contract
//!
//! Integer addition is associative, so — unlike the f32 kernels, whose
//! bitwise contract rests on fixed summation order — any tiling or thread
//! split of an i8 GEMM produces identical `i32` bits *provided no
//! accumulator overflows*. Overflow freedom is the caller's contract: the
//! quantflow pass (`cq-check`) statically proves `K·(2^q−1)² + (2^q−1) ≤
//! i32::MAX` for every built-in config at the integer-inference
//! bit-widths, and `cq-infer` re-asserts the same shared formula
//! (`cq_quant::intmath::acc_fits_i32`) at model-conversion time. Within
//! that contract the packed, parallel and scalar-reference kernels here
//! are all bitwise interchangeable at every thread count — pinned by the
//! equivalence tests below and the `int8_thread_determinism` proptests.
//!
//! # Layouts
//!
//! Inference needs two of the three f32 layouts: `Nn` (conv as
//! `weights[O,K] @ im2col[K,N]`) and `Nt` (linear as
//! `acts[N,K] @ weights[O,K]ᵀ`). There is no backward pass through the
//! integer path, so `Tn` (weight gradients) has no i8 counterpart.

use super::{pack_width, simd_level, use_reference, Level, MR, NR};
use crate::par::{parallel_for_chunks, ChunkGrid};

// Dispatch telemetry, mirroring the f32 counters: shape-driven only, so
// totals are thread-count-invariant under the cq-trace diff gate.
static GEMM_I8_PACKED: cq_obs::Counter = cq_obs::Counter::new("tensor.gemm_i8.packed_calls");
static GEMM_I8_SMALL: cq_obs::Counter = cq_obs::Counter::new("tensor.gemm_i8.small_calls");

/// Operand layout of an integer product (the inference-relevant subset of
/// the f32 [`super::Kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntKind {
    /// `a[m,k] @ b[k,n]` — convolution (weights × im2col columns).
    Nn,
    /// `a[m,k] @ b[n,k]ᵀ` — linear layers (activations × weightsᵀ).
    Nt,
}

/// Raw pointer wrapper asserting cross-thread transfer is safe because
/// the caller guarantees disjoint writes (the i32 sibling of the parent's
/// `SendPtr`).
struct SendPtrI32(*mut i32);
// SAFETY: used only with disjoint index ranges per thread.
unsafe impl Send for SendPtrI32 {}
unsafe impl Sync for SendPtrI32 {}

/// Scalar reference `out[m,n] = a[m,k] @ b[k,n]` — oracle, baseline and
/// small-size fast path for the packed NN kernel.
pub fn gemm_i8_nn_ref(a: &[i8], m: usize, k: usize, b: &[i8], n: usize, out: &mut [i32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        orow.fill(0);
        for (kk, &av) in arow.iter().enumerate() {
            let av = av as i32;
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv as i32;
            }
        }
    }
}

/// Scalar reference `out[m,n] = a[m,k] @ b[n,k]ᵀ` — oracle for the packed
/// NT kernel.
pub fn gemm_i8_nt_ref(a: &[i8], m: usize, k: usize, b: &[i8], n: usize, out: &mut [i32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av as i32 * bv as i32;
            }
            out[i * n + j] = acc;
        }
    }
}

/// One packed integer register tile: `acc[r][c] += ap[kk][r] * bp[kk][c]`
/// with widening `i8 → i32` multiplies. `inline(always)` so the
/// `#[target_feature]` drivers compile this body at their vector width.
#[inline(always)]
fn micro_tile_i8<const NRW: usize>(k: usize, ap: &[i8], bp: &[i8], acc: &mut [[i32; NRW]; MR]) {
    debug_assert!(ap.len() >= k * MR);
    debug_assert!(bp.len() >= k * NRW);
    for kk in 0..k {
        let arow = &ap[kk * MR..kk * MR + MR];
        let brow = &bp[kk * NRW..kk * NRW + NRW];
        for r in 0..MR {
            let av = arow[r] as i32;
            let accr = &mut acc[r];
            for c in 0..NRW {
                accr[c] += av * brow[c] as i32;
            }
        }
    }
}

/// Writes the valid `mr`×`nr` corner of an integer register tile into
/// row-major `out` (leading dimension `n`, tile origin `(row0, j0)`).
#[inline(always)]
fn store_tile_i8<const NRW: usize>(
    acc: &[[i32; NRW]; MR],
    out: &mut [i32],
    n: usize,
    row0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for r in 0..mr {
        let orow = &mut out[(row0 + r) * n + j0..(row0 + r) * n + j0 + nr];
        for (c, o) in orow.iter_mut().enumerate() {
            *o = acc[r][c];
        }
    }
}

/// Packs `mr` rows of row-major `a: [m,k]` starting at row `i0` into the
/// `[k][MR]` panel `ap` (zero-padded past `mr`; a zero i8 contributes a
/// zero product, so edge tiles reuse the full-width microkernel).
#[inline(always)]
fn pack_a_rows_i8(a: &[i8], k: usize, i0: usize, mr: usize, ap: &mut [i8]) {
    if mr < MR {
        ap.fill(0);
    }
    for r in 0..mr {
        let row = &a[(i0 + r) * k..(i0 + r) * k + k];
        for (kk, &v) in row.iter().enumerate() {
            ap[kk * MR + r] = v;
        }
    }
}

/// Packs all of row-major `b: [k,n]` into `ceil(n/NRW)` panels of layout
/// `[k][NRW]`, zero-padding the edge panel.
fn pack_b_nn_i8<const NRW: usize>(b: &[i8], k: usize, n: usize) -> Vec<i8> {
    let np = n.div_ceil(NRW);
    let mut bp = vec![0i8; np * k * NRW];
    for (p, panel) in bp.chunks_exact_mut(k * NRW).enumerate() {
        let j0 = p * NRW;
        let nr = NRW.min(n - j0);
        for kk in 0..k {
            panel[kk * NRW..kk * NRW + nr].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nr]);
        }
    }
    bp
}

/// Packs `b: [n,k]` (the NT layout, logical Bᵀ) into `[k][NRW]` panels:
/// row `j` of `b` becomes lane `j % NRW` of panel `j / NRW`.
fn pack_b_nt_i8<const NRW: usize>(b: &[i8], k: usize, n: usize) -> Vec<i8> {
    let np = n.div_ceil(NRW);
    let mut bp = vec![0i8; np * k * NRW];
    for (p, panel) in bp.chunks_exact_mut(k * NRW).enumerate() {
        let j0 = p * NRW;
        let nr = NRW.min(n - j0);
        for c in 0..nr {
            let row = &b[(j0 + c) * k..(j0 + c) * k + k];
            for (kk, &v) in row.iter().enumerate() {
                panel[kk * NRW + c] = v;
            }
        }
    }
    bp
}

/// Packs B for `kind` at the panel width of `level`.
fn pack_b_i8(level: Level, kind: IntKind, b: &[i8], k: usize, n: usize) -> Vec<i8> {
    match (kind, pack_width(level)) {
        (IntKind::Nn, w) if w == NR => pack_b_nn_i8::<NR>(b, k, n),
        (IntKind::Nn, _) => pack_b_nn_i8::<16>(b, k, n),
        (IntKind::Nt, w) if w == NR => pack_b_nt_i8::<NR>(b, k, n),
        (IntKind::Nt, _) => pack_b_nt_i8::<16>(b, k, n),
    }
}

/// Multiplies row tiles `[t0, t1)` of A against every packed B panel
/// (width `NRW`), writing rows `t0*MR ..` of the output into `out_rows`
/// (which holds exactly those rows).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn run_row_tiles_i8<const NRW: usize>(
    a: &[i8],
    m: usize,
    k: usize,
    bp: &[i8],
    n: usize,
    t0: usize,
    t1: usize,
    out_rows: &mut [i32],
    ap: &mut [i8],
) {
    let np = n.div_ceil(NRW);
    for t in t0..t1 {
        let i0 = t * MR;
        let mr = MR.min(m - i0);
        pack_a_rows_i8(a, k, i0, mr, ap);
        for (p, panel) in bp.chunks_exact(k * NRW).enumerate().take(np) {
            let j0 = p * NRW;
            let nr = NRW.min(n - j0);
            let mut acc = [[0i32; NRW]; MR];
            micro_tile_i8::<NRW>(k, ap, panel, &mut acc);
            store_tile_i8::<NRW>(&acc, out_rows, n, i0 - t0 * MR, j0, mr, nr);
        }
    }
}

/// AVX2 driver: same 8-wide integer tile body, compiled with 256-bit
/// vectors.
///
/// # Safety
///
/// Caller must have verified AVX2 support (see the parent's level
/// detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_row_tiles_i8_avx2(
    a: &[i8],
    m: usize,
    k: usize,
    bp: &[i8],
    n: usize,
    t0: usize,
    t1: usize,
    out_rows: &mut [i32],
    ap: &mut [i8],
) {
    run_row_tiles_i8::<NR>(a, m, k, bp, n, t0, t1, out_rows, ap)
}

/// AVX-512 driver: 16-wide integer tile body (two 256-bit i32 accumulator
/// rows, or one 512-bit row where available).
///
/// # Safety
///
/// Caller must have verified AVX-512F support (see the parent's level
/// detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_row_tiles_i8_avx512(
    a: &[i8],
    m: usize,
    k: usize,
    bp: &[i8],
    n: usize,
    t0: usize,
    t1: usize,
    out_rows: &mut [i32],
    ap: &mut [i8],
) {
    run_row_tiles_i8::<16>(a, m, k, bp, n, t0, t1, out_rows, ap)
}

/// Runs row tiles through the driver for `level`. `bp` must have been
/// packed at `pack_width(level)`.
#[allow(clippy::too_many_arguments)]
fn run_tiles_level_i8(
    level: Level,
    a: &[i8],
    m: usize,
    k: usize,
    bp: &[i8],
    n: usize,
    t0: usize,
    t1: usize,
    out_rows: &mut [i32],
    ap: &mut [i8],
) {
    match level {
        Level::Baseline => run_row_tiles_i8::<NR>(a, m, k, bp, n, t0, t1, out_rows, ap),
        // SAFETY: `level` comes from runtime CPU detection.
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { run_row_tiles_i8_avx2(a, m, k, bp, n, t0, t1, out_rows, ap) },
        // SAFETY: `level` comes from runtime CPU detection.
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => unsafe { run_row_tiles_i8_avx512(a, m, k, bp, n, t0, t1, out_rows, ap) },
    }
}

fn check_shapes(
    kind: IntKind,
    alen: usize,
    blen: usize,
    olen: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    let want_b = match kind {
        IntKind::Nn => k * n,
        IntKind::Nt => n * k,
    };
    assert_eq!(alen, m * k, "gemm_i8: lhs length mismatch");
    assert_eq!(blen, want_b, "gemm_i8: rhs length mismatch");
    assert_eq!(olen, m * n, "gemm_i8: out length mismatch");
}

/// Serial blocked integer GEMM (`out: [m,n]` i32, overwritten) — for
/// callers already inside a parallel region (per-sample conv workers).
/// Bitwise-identical to the scalar references at any SIMD level.
pub fn gemm_i8(kind: IntKind, a: &[i8], b: &[i8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    check_shapes(kind, a.len(), b.len(), out.len(), m, n, k);
    if use_reference(m, n, k) {
        GEMM_I8_SMALL.add(1);
        if k == 0 {
            out.fill(0);
            return;
        }
        match kind {
            IntKind::Nn => gemm_i8_nn_ref(a, m, k, b, n, out),
            IntKind::Nt => gemm_i8_nt_ref(a, m, k, b, n, out),
        }
        return;
    }
    GEMM_I8_PACKED.add(1);
    let level = simd_level();
    let bp = pack_b_i8(level, kind, b, k, n);
    let mut ap = vec![0i8; k * MR];
    run_tiles_level_i8(level, a, m, k, &bp, n, 0, m.div_ceil(MR), out, &mut ap);
}

/// Parallel blocked integer GEMM (`out: [m,n]` i32, overwritten),
/// dispatched over row tiles of the deterministic [`ChunkGrid`]. Bitwise-
/// identical to [`gemm_i8`] and the scalar references at any thread
/// count (integer accumulation is exact; see the module contract).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`/`n`/`k`.
pub fn par_gemm_i8(
    kind: IntKind,
    a: &[i8],
    b: &[i8],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [i32],
) {
    check_shapes(kind, a.len(), b.len(), out.len(), m, n, k);
    if use_reference(m, n, k) {
        GEMM_I8_SMALL.add(1);
        if k == 0 {
            out.fill(0);
            return;
        }
        match kind {
            IntKind::Nn => gemm_i8_nn_ref(a, m, k, b, n, out),
            IntKind::Nt => gemm_i8_nt_ref(a, m, k, b, n, out),
        }
        return;
    }
    GEMM_I8_PACKED.add(1);
    let level = simd_level();
    let bp = pack_b_i8(level, kind, b, k, n);
    let bp = &bp[..];
    let ntiles = m.div_ceil(MR);
    let out_ptr = SendPtrI32(out.as_mut_ptr());
    parallel_for_chunks(ChunkGrid::new(ntiles, 1), |_, t0, t1| {
        // Capture the Sync wrapper, not the raw pointer field.
        let out_ptr = &out_ptr;
        let rows0 = t0 * MR;
        let rows1 = (t1 * MR).min(m);
        // SAFETY: chunks own disjoint tile ranges, hence disjoint rows.
        let out_rows = unsafe {
            std::slice::from_raw_parts_mut(out_ptr.0.add(rows0 * n), (rows1 - rows0) * n)
        };
        let mut ap = vec![0i8; k * MR];
        run_tiles_level_i8(level, a, m, k, bp, n, t0, t1, out_rows, &mut ap);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn randvec_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| rng.gen_range(-128i32..=127) as i8)
            .collect()
    }

    /// Every dispatch level the host can actually run.
    fn host_levels() -> Vec<Level> {
        let mut levels = vec![Level::Baseline];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                levels.push(Level::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                levels.push(Level::Avx512);
            }
        }
        levels
    }

    // Same dispatch-boundary shapes the f32 kernels pin.
    const SHAPES: [(usize, usize, usize); 8] = [
        (1, 1, 1),
        (3, 9, 5),
        (8, 8, 8),
        (16, 16, 16),
        (17, 15, 9),
        (24, 33, 31),
        (25, 31, 40),
        (40, 41, 23),
    ];

    #[test]
    fn packed_matches_reference_both_layouts() {
        for &(m, n, k) in &SHAPES {
            for kind in [IntKind::Nn, IntKind::Nt] {
                let blen = match kind {
                    IntKind::Nn => k * n,
                    IntKind::Nt => n * k,
                };
                let a = randvec_i8(m * k, 1 + m as u64);
                let b = randvec_i8(blen, 2 + n as u64);
                let mut got = vec![1i32; m * n];
                let mut want = vec![2i32; m * n];
                gemm_i8(kind, &a, &b, m, n, k, &mut got);
                match kind {
                    IntKind::Nn => gemm_i8_nn_ref(&a, m, k, &b, n, &mut want),
                    IntKind::Nt => gemm_i8_nt_ref(&a, m, k, &b, n, &mut want),
                }
                assert_eq!(got, want, "{kind:?} {m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn par_matches_serial() {
        for &(m, n, k) in &SHAPES {
            for kind in [IntKind::Nn, IntKind::Nt] {
                let blen = match kind {
                    IntKind::Nn => k * n,
                    IntKind::Nt => n * k,
                };
                let a = randvec_i8(m * k, 3 + m as u64);
                let b = randvec_i8(blen, 4 + n as u64);
                let mut got = vec![1i32; m * n];
                let mut want = vec![2i32; m * n];
                par_gemm_i8(kind, &a, &b, m, n, k, &mut got);
                gemm_i8(kind, &a, &b, m, n, k, &mut want);
                assert_eq!(got, want, "{kind:?} {m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn every_simd_level_matches_reference() {
        for level in host_levels() {
            for &(m, n, k) in &SHAPES {
                if use_reference(m, n, k) {
                    continue;
                }
                let mut ap = vec![0i8; k * MR];
                let ntiles = m.div_ceil(MR);
                for kind in [IntKind::Nn, IntKind::Nt] {
                    let blen = match kind {
                        IntKind::Nn => k * n,
                        IntKind::Nt => n * k,
                    };
                    let a = randvec_i8(m * k, 20 + m as u64);
                    let b = randvec_i8(blen, 21 + n as u64);
                    let bp = pack_b_i8(level, kind, &b, k, n);
                    let mut got = vec![1i32; m * n];
                    let mut want = vec![2i32; m * n];
                    run_tiles_level_i8(level, &a, m, k, &bp, n, 0, ntiles, &mut got, &mut ap);
                    match kind {
                        IntKind::Nn => gemm_i8_nn_ref(&a, m, k, &b, n, &mut want),
                        IntKind::Nt => gemm_i8_nt_ref(&a, m, k, &b, n, &mut want),
                    }
                    assert_eq!(got, want, "{level:?} {kind:?} {m}x{n}x{k}");
                }
            }
        }
    }

    #[test]
    fn extreme_codes_do_not_overflow_within_contract() {
        // Worst-case i8 products (−128·−128) over a K well inside the
        // quantflow-proven 8-bit tap ceiling must accumulate exactly.
        let (m, n, k) = (8, 8, 4608);
        let a = vec![-128i8; m * k];
        let b = vec![-128i8; k * n];
        let mut out = vec![0i32; m * n];
        par_gemm_i8(IntKind::Nn, &a, &b, m, n, k, &mut out);
        assert!(out.iter().all(|&v| v == 4608 * 128 * 128));
    }

    #[test]
    fn k_zero_yields_zeros() {
        let mut out = vec![7i32; 3 * 4];
        par_gemm_i8(IntKind::Nn, &[], &[], 3, 4, 0, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }
}
