//! Unblocked reference GEMM kernels: the exact scalar loops the packed
//! microkernels in the parent module replaced.
//!
//! These are kept for three jobs:
//!
//! 1. **Small-size fast path** — below [`super`]'s packing threshold the
//!    panel copies would cost more than they save, so tiny products run
//!    here directly.
//! 2. **Equivalence oracle** — the property tests assert the packed
//!    kernels match these loops *bit for bit* on every shape.
//! 3. **Perf baseline** — `cq-bench kernels` measures blocked speedups
//!    against [`par_gemm_ref`], which reproduces the pre-rewrite parallel
//!    row-band dispatch exactly.
//!
//! This module is the one place the `cq-check` `no-naive-hot-loop` lint
//! permits an unblocked multiply-accumulate loop nest; new naive loops
//! anywhere else are a finding.

use crate::par::parallel_for;

/// Minimum output rows per parallel band in [`par_gemm_ref`] — the
/// pre-rewrite `MIN_ROWS_PER_BAND` value, preserved so the baseline
/// parallelises exactly like the old kernels did.
const MIN_ROWS_PER_BAND: usize = 8;

/// Serial `out = a @ b` for `a: [m,k]`, `b: [k,n]` (i-k-j loop order,
/// contiguous row updates, `a == 0.0` terms skipped).
pub fn gemm_nn(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            let orow = &mut out[i * n..i * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
}

/// Serial `out = a @ bᵀ` for `a: [m,k]`, `b: [n,k]` (contiguous dot per
/// output element, no zero skip).
pub fn gemm_nt(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            let brow = &b[j * k..j * k + k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Serial `out += a @ bᵀ` for `a: [m,k]`, `b: [n,k]`: the full-`k` dot is
/// formed first, then added to `out` once (the accumulation order weight
/// gradients depend on).
pub fn gemm_nt_acc(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            let brow = &b[j * k..j * k + k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] += acc;
        }
    }
}

/// Serial `out = aᵀ @ b` for `a: [k,m]`, `b: [k,n]` (k-i-j loop order,
/// `a == 0.0` terms skipped).
pub fn gemm_tn(a: &[f32], k: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for kk in 0..k {
        let brow = &b[kk * n..kk * n + n];
        for i in 0..m {
            let aki = a[kk * m + i];
            if aki == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..i * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aki * bv;
            }
        }
    }
}

/// Pre-rewrite parallel baseline: the reference kernel for `kind`,
/// dispatched over row bands through [`parallel_for`] exactly as the old
/// `Tensor::matmul*` kernels were. `cq-bench kernels` times this to give
/// the blocked kernels an honest same-thread-count speedup denominator.
pub fn par_gemm_ref(
    kind: super::Kind,
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    let out_ptr = super::SendPtr(out.as_mut_ptr());
    parallel_for(m, MIN_ROWS_PER_BAND, |r0, r1| {
        // Capture the Sync wrapper, not the raw pointer field.
        let out_ptr = &out_ptr;
        let rows = r1 - r0;
        // SAFETY: row bands [r0, r1) are disjoint across workers.
        let orows = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(r0 * n), rows * n) };
        match kind {
            super::Kind::Nn => gemm_nn(&a[r0 * k..r1 * k], rows, k, b, n, orows),
            super::Kind::Nt => gemm_nt(&a[r0 * k..r1 * k], rows, k, b, n, orows),
            super::Kind::Tn => {
                // The transposed-A layout has no contiguous row slice per
                // band; run the k-i-j loops on the band columns directly.
                orows.fill(0.0);
                for kk in 0..k {
                    let brow = &b[kk * n..kk * n + n];
                    for i in r0..r1 {
                        let aki = a[kk * m + i];
                        if aki == 0.0 {
                            continue;
                        }
                        let orow = &mut orows[(i - r0) * n..(i - r0) * n + n];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += aki * bv;
                        }
                    }
                }
            }
        }
    });
}
