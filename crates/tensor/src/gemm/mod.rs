//! Cache-blocked, register-tiled GEMM: packed A/B panels multiplied in
//! MR×NR register tiles, with the unblocked scalar loops preserved in
//! [`reference`] as oracle, baseline and small-size fast path.
//!
//! # Bitwise contract
//!
//! Every kernel here produces *bit-identical* output to its counterpart
//! in [`reference`], on every input (including non-finite values), at
//! every thread count, on every machine. Three invariants make that hold:
//!
//! 1. **One accumulator per output element.** Each `out[i, j]` is the sum
//!    of its `k` products in strictly ascending `k` order, held in a
//!    single `f32` register until the final store. There is no k-blocking
//!    with partial stores and no FMA contraction, so every intermediate
//!    rounding matches the scalar loop exactly.
//! 2. **The zero skip is preserved.** The NN/TN reference loops skip
//!    terms whose A element is `0.0`; the microkernel keeps that test
//!    (`SKIP = true`), so even NaN/Inf in B (e.g. deliberately poisoned
//!    weights in health tests) cannot produce different bits. The NT
//!    reference has no skip, and neither does its microkernel.
//! 3. **Tiling only regroups independent elements.** Vectorization runs
//!    across the `NRW` output columns of a tile — distinct accumulators,
//!    never a reassociated reduction — and parallel dispatch assigns
//!    whole row tiles to workers over the deterministic [`ChunkGrid`], so
//!    each element is computed wholly by one thread in one order.
//!
//! # SIMD dispatch
//!
//! The microkernel is generic over its column width `NRW` and compiled
//! three ways: a portable baseline (`NRW = 8`, whatever vectors the
//! default target has), an AVX2 driver (`NRW = 8`, one 256-bit lane row
//! per tile row), and an AVX-512 driver (`NRW = 16`, one 512-bit lane
//! row). The widest available variant is picked once per process by
//! runtime CPU detection. Because of invariant 3 the width only changes
//! how many *independent* accumulators share a register, so all three
//! variants are bit-identical — the equivalence tests run every variant
//! the host supports against the scalar reference.
//!
//! Dispatch between packed and reference paths is purely shape-driven
//! (see [`use_reference`]); no path choice ever depends on data or
//! thread count.

pub mod int8;
pub mod reference;

use crate::par::{parallel_for_chunks, ChunkGrid};

/// Rows per register tile: each packed A panel feeds `MR` output rows.
pub const MR: usize = 8;

/// Baseline columns per register tile — the packed-B panel width for the
/// portable and AVX2 kernels. The AVX-512 kernel widens this to 16.
pub const NR: usize = 8;

// Dispatch telemetry: how many products took the packed path vs the
// small-size reference path. Counts depend only on operand shapes, so
// totals are identical at any thread count (the cq-trace diff gate
// compares them across CQ_THREADS runs).
static GEMM_PACKED: cq_obs::Counter = cq_obs::Counter::new("tensor.gemm.packed_calls");
static GEMM_SMALL: cq_obs::Counter = cq_obs::Counter::new("tensor.gemm.small_calls");

/// Raw pointer wrapper asserting cross-thread transfer is safe because
/// the caller guarantees disjoint writes.
pub(crate) struct SendPtr(pub(crate) *mut f32);
// SAFETY: used only with disjoint index ranges per thread.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Operand layout of a product (the transpose is folded into packing, the
/// operand is never materialised).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `a[m,k] @ b[k,n]` — forward passes.
    Nn,
    /// `a[m,k] @ b[n,k]ᵀ` — input gradients (`dX = dY @ Wᵀ`).
    Nt,
    /// `a[k,m]ᵀ @ b[k,n]` — weight gradients (`dW = Xᵀ @ dY`).
    Tn,
}

/// Widest microkernel variant the host CPU can run. Affects speed only:
/// every level produces the same bits (invariant 3 above).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    /// Portable: autovectorized at whatever width the default target has.
    Baseline,
    /// x86-64 with 256-bit vectors.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// x86-64 with 512-bit vectors; widens the B panels to 16 columns.
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

/// Packed-B panel width for a dispatch level.
fn pack_width(level: Level) -> usize {
    match level {
        Level::Baseline => NR,
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => NR,
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => 2 * NR,
    }
}

/// Per-layout driver choice, tuned by measurement (see `BENCH_7.json`):
/// the branchy zero-skip body (NN/TN) compiles to ideal broadcast-
/// multiply-add at 16 lanes, while the branch-free NT body register-
/// spills at 16 lanes but peaks at 8 — on this hardware ~38 GFLOP/s
/// 8-wide vs ~4.5 GFLOP/s 16-wide. Every choice is bit-identical, so
/// this affects speed only.
fn level_for(kind: Kind, level: Level) -> Level {
    #[cfg(target_arch = "x86_64")]
    if kind == Kind::Nt && level == Level::Avx512 {
        // avx512f hardware always carries avx2.
        return Level::Avx2;
    }
    let _ = kind;
    level
}

/// Detects the widest usable level once per process.
fn simd_level() -> Level {
    static LEVEL: std::sync::OnceLock<Level> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Level::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Level::Avx2;
            }
        }
        Level::Baseline
    })
}

/// Name of the SIMD dispatch level the host selected (`baseline`,
/// `avx2`, `avx512`). Telemetry for bench artifacts and machine
/// fingerprints; speed metadata only — every level produces the same
/// bits (invariant 3 above).
pub fn simd_level_name() -> &'static str {
    match simd_level() {
        Level::Baseline => "baseline",
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => "avx512",
    }
}

/// Shape-only test for the unblocked fast path: degenerate `k`, outputs
/// narrower than one register tile, or products small enough that panel
/// packing would cost more than it saves.
fn use_reference(m: usize, n: usize, k: usize) -> bool {
    k == 0 || n < NR || m * n * k < 4096
}

/// One packed register tile: `acc[r][c] += ap[kk][r] * bp[kk][c]` for
/// `kk` strictly ascending. `SKIP` mirrors the reference kernels'
/// `a == 0.0` shortcut (NN/TN true, NT false). `inline(always)` so the
/// `#[target_feature]` drivers compile this body at their vector width.
#[inline(always)]
fn micro_tile<const SKIP: bool, const NRW: usize>(
    k: usize,
    ap: &[f32],
    bp: &[f32],
    acc: &mut [[f32; NRW]; MR],
) {
    debug_assert!(ap.len() >= k * MR);
    debug_assert!(bp.len() >= k * NRW);
    for kk in 0..k {
        let arow = &ap[kk * MR..kk * MR + MR];
        let brow = &bp[kk * NRW..kk * NRW + NRW];
        for r in 0..MR {
            let av = arow[r];
            if SKIP && av == 0.0 {
                continue;
            }
            let accr = &mut acc[r];
            for c in 0..NRW {
                accr[c] += av * brow[c];
            }
        }
    }
}

/// Writes the valid `mr`×`nr` corner of a register tile into row-major
/// `out` (leading dimension `n`, tile origin `(row0, j0)`), overwriting
/// or accumulating per `ACC`.
#[inline(always)]
fn store_tile<const ACC: bool, const NRW: usize>(
    acc: &[[f32; NRW]; MR],
    out: &mut [f32],
    n: usize,
    row0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for r in 0..mr {
        let orow = &mut out[(row0 + r) * n + j0..(row0 + r) * n + j0 + nr];
        for (c, o) in orow.iter_mut().enumerate() {
            if ACC {
                *o += acc[r][c];
            } else {
                *o = acc[r][c];
            }
        }
    }
}

/// Packs `mr` rows of row-major `a: [m,k]` starting at row `i0` into the
/// `[k][MR]` panel `ap` (zero-padded past `mr` so edge tiles reuse the
/// full-width microkernel).
#[inline(always)]
fn pack_a_rows(a: &[f32], k: usize, i0: usize, mr: usize, ap: &mut [f32]) {
    if mr < MR {
        ap.fill(0.0);
    }
    for r in 0..mr {
        let row = &a[(i0 + r) * k..(i0 + r) * k + k];
        for (kk, &v) in row.iter().enumerate() {
            ap[kk * MR + r] = v;
        }
    }
}

/// Packs `mr` columns of column-major-logical `a: [k,m]` (the TN layout)
/// starting at column `i0` into the `[k][MR]` panel `ap`; each `kk` row
/// is a contiguous copy.
#[inline(always)]
fn pack_a_cols(a: &[f32], k: usize, m: usize, i0: usize, mr: usize, ap: &mut [f32]) {
    if mr < MR {
        ap.fill(0.0);
    }
    for kk in 0..k {
        ap[kk * MR..kk * MR + mr].copy_from_slice(&a[kk * m + i0..kk * m + i0 + mr]);
    }
}

/// Packs all of row-major `b: [k,n]` into `ceil(n/NRW)` panels of layout
/// `[k][NRW]`, zero-padding the edge panel.
fn pack_b_nn<const NRW: usize>(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let np = n.div_ceil(NRW);
    let mut bp = vec![0.0f32; np * k * NRW];
    for (p, panel) in bp.chunks_exact_mut(k * NRW).enumerate() {
        let j0 = p * NRW;
        let nr = NRW.min(n - j0);
        for kk in 0..k {
            panel[kk * NRW..kk * NRW + nr].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nr]);
        }
    }
    bp
}

/// Packs `b: [n,k]` (the NT layout, logical Bᵀ) into `[k][NRW]` panels:
/// row `j` of `b` becomes lane `j % NRW` of panel `j / NRW`.
fn pack_b_nt<const NRW: usize>(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let np = n.div_ceil(NRW);
    let mut bp = vec![0.0f32; np * k * NRW];
    for (p, panel) in bp.chunks_exact_mut(k * NRW).enumerate() {
        let j0 = p * NRW;
        let nr = NRW.min(n - j0);
        for c in 0..nr {
            let row = &b[(j0 + c) * k..(j0 + c) * k + k];
            for (kk, &v) in row.iter().enumerate() {
                panel[kk * NRW + c] = v;
            }
        }
    }
    bp
}

/// Packs B for `kind` at the panel width of `level`.
fn pack_b(level: Level, kind: Kind, b: &[f32], k: usize, n: usize) -> Vec<f32> {
    match (kind, pack_width(level)) {
        (Kind::Nn | Kind::Tn, w) if w == NR => pack_b_nn::<NR>(b, k, n),
        (Kind::Nn | Kind::Tn, _) => pack_b_nn::<16>(b, k, n),
        (Kind::Nt, w) if w == NR => pack_b_nt::<NR>(b, k, n),
        (Kind::Nt, _) => pack_b_nt::<16>(b, k, n),
    }
}

/// Multiplies row tiles `[t0, t1)` of A against every packed B panel
/// (width `NRW`), writing rows `t0*MR ..` of the output into `out_rows`
/// (which holds exactly those rows). `a_cols` selects the `[k,m]` A
/// layout (TN).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn run_row_tiles<const SKIP: bool, const ACC: bool, const NRW: usize>(
    a: &[f32],
    a_cols: bool,
    m: usize,
    k: usize,
    bp: &[f32],
    n: usize,
    t0: usize,
    t1: usize,
    out_rows: &mut [f32],
    ap: &mut [f32],
) {
    let np = n.div_ceil(NRW);
    for t in t0..t1 {
        let i0 = t * MR;
        let mr = MR.min(m - i0);
        if a_cols {
            pack_a_cols(a, k, m, i0, mr, ap);
        } else {
            pack_a_rows(a, k, i0, mr, ap);
        }
        for (p, panel) in bp.chunks_exact(k * NRW).enumerate().take(np) {
            let j0 = p * NRW;
            let nr = NRW.min(n - j0);
            let mut acc = [[0.0f32; NRW]; MR];
            micro_tile::<SKIP, NRW>(k, ap, panel, &mut acc);
            store_tile::<ACC, NRW>(&acc, out_rows, n, i0 - t0 * MR, j0, mr, nr);
        }
    }
}

/// AVX2 driver: same 8-wide tile body, compiled with 256-bit vectors.
///
/// # Safety
///
/// Caller must have verified AVX2 support (see [`simd_level`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_row_tiles_avx2<const SKIP: bool, const ACC: bool>(
    a: &[f32],
    a_cols: bool,
    m: usize,
    k: usize,
    bp: &[f32],
    n: usize,
    t0: usize,
    t1: usize,
    out_rows: &mut [f32],
    ap: &mut [f32],
) {
    run_row_tiles::<SKIP, ACC, NR>(a, a_cols, m, k, bp, n, t0, t1, out_rows, ap)
}

/// AVX-512 driver: 16-wide tile body, one 512-bit accumulator per row.
///
/// # Safety
///
/// Caller must have verified AVX-512F support (see [`simd_level`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_row_tiles_avx512<const SKIP: bool, const ACC: bool>(
    a: &[f32],
    a_cols: bool,
    m: usize,
    k: usize,
    bp: &[f32],
    n: usize,
    t0: usize,
    t1: usize,
    out_rows: &mut [f32],
    ap: &mut [f32],
) {
    run_row_tiles::<SKIP, ACC, 16>(a, a_cols, m, k, bp, n, t0, t1, out_rows, ap)
}

/// Runs row tiles through the driver for `level`. `bp` must have been
/// packed at `pack_width(level)`.
#[allow(clippy::too_many_arguments)]
fn run_tiles_level<const SKIP: bool, const ACC: bool>(
    level: Level,
    a: &[f32],
    a_cols: bool,
    m: usize,
    k: usize,
    bp: &[f32],
    n: usize,
    t0: usize,
    t1: usize,
    out_rows: &mut [f32],
    ap: &mut [f32],
) {
    match level {
        Level::Baseline => {
            run_row_tiles::<SKIP, ACC, NR>(a, a_cols, m, k, bp, n, t0, t1, out_rows, ap)
        }
        // SAFETY: `level` comes from runtime CPU detection.
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe {
            run_row_tiles_avx2::<SKIP, ACC>(a, a_cols, m, k, bp, n, t0, t1, out_rows, ap)
        },
        // SAFETY: `level` comes from runtime CPU detection.
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => unsafe {
            run_row_tiles_avx512::<SKIP, ACC>(a, a_cols, m, k, bp, n, t0, t1, out_rows, ap)
        },
    }
}

/// Parallel blocked `out = op(a) @ op(b)` (`out: [m,n]`, overwritten),
/// dispatched over row tiles of the deterministic [`ChunkGrid`]; used by
/// `Tensor::matmul{,_nt,_tn}`. Bitwise-identical to the corresponding
/// [`reference`] kernel at any thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`/`n`/`k`.
pub fn par_gemm(kind: Kind, a: &[f32], b: &[f32], m: usize, n: usize, k: usize, out: &mut [f32]) {
    let (alen, blen) = match kind {
        Kind::Nn => (m * k, k * n),
        Kind::Nt => (m * k, n * k),
        Kind::Tn => (k * m, k * n),
    };
    assert_eq!(a.len(), alen, "par_gemm: lhs length mismatch");
    assert_eq!(b.len(), blen, "par_gemm: rhs length mismatch");
    assert_eq!(out.len(), m * n, "par_gemm: out length mismatch");
    if use_reference(m, n, k) {
        GEMM_SMALL.add(1);
        match kind {
            Kind::Nn => reference::gemm_nn(a, m, k, b, n, out),
            Kind::Nt => reference::gemm_nt(a, m, k, b, n, out),
            Kind::Tn => reference::gemm_tn(a, k, m, b, n, out),
        }
        return;
    }
    GEMM_PACKED.add(1);
    let level = level_for(kind, simd_level());
    let bp = pack_b(level, kind, b, k, n);
    let bp = &bp[..];
    let ntiles = m.div_ceil(MR);
    let out_ptr = SendPtr(out.as_mut_ptr());
    parallel_for_chunks(ChunkGrid::new(ntiles, 1), |_, t0, t1| {
        // Capture the Sync wrapper, not the raw pointer field.
        let out_ptr = &out_ptr;
        let rows0 = t0 * MR;
        let rows1 = (t1 * MR).min(m);
        // SAFETY: chunks own disjoint tile ranges, hence disjoint rows.
        let out_rows = unsafe {
            std::slice::from_raw_parts_mut(out_ptr.0.add(rows0 * n), (rows1 - rows0) * n)
        };
        let mut ap = vec![0.0f32; k * MR];
        match kind {
            Kind::Nn => run_tiles_level::<true, false>(
                level, a, false, m, k, bp, n, t0, t1, out_rows, &mut ap,
            ),
            Kind::Nt => run_tiles_level::<false, false>(
                level, a, false, m, k, bp, n, t0, t1, out_rows, &mut ap,
            ),
            Kind::Tn => run_tiles_level::<true, false>(
                level, a, true, m, k, bp, n, t0, t1, out_rows, &mut ap,
            ),
        }
    });
}

/// Serial blocked `out = a @ b` for `a: [m,k]`, `b: [k,n]` — for callers
/// already inside a parallel region (batch-band conv workers). Bitwise-
/// identical to [`reference::gemm_nn`].
pub fn gemm_nn(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if use_reference(m, n, k) {
        GEMM_SMALL.add(1);
        return reference::gemm_nn(a, m, k, b, n, out);
    }
    GEMM_PACKED.add(1);
    let level = level_for(Kind::Nn, simd_level());
    let bp = pack_b(level, Kind::Nn, b, k, n);
    let mut ap = vec![0.0f32; k * MR];
    run_tiles_level::<true, false>(
        level,
        a,
        false,
        m,
        k,
        &bp,
        n,
        0,
        m.div_ceil(MR),
        out,
        &mut ap,
    );
}

/// Serial blocked `out += a @ bᵀ` for `a: [m,k]`, `b: [n,k]` (each
/// element's full-`k` dot is formed first, then added once). Bitwise-
/// identical to [`reference::gemm_nt_acc`].
pub fn gemm_nt_acc(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if use_reference(m, n, k) {
        GEMM_SMALL.add(1);
        return reference::gemm_nt_acc(a, m, k, b, n, out);
    }
    GEMM_PACKED.add(1);
    let level = level_for(Kind::Nt, simd_level());
    let bp = pack_b(level, Kind::Nt, b, k, n);
    let mut ap = vec![0.0f32; k * MR];
    run_tiles_level::<false, true>(
        level,
        a,
        false,
        m,
        k,
        &bp,
        n,
        0,
        m.div_ceil(MR),
        out,
        &mut ap,
    );
}

/// Serial blocked `out = aᵀ @ b` for `a: [k,m]`, `b: [k,n]`. Bitwise-
/// identical to [`reference::gemm_tn`].
pub fn gemm_tn(a: &[f32], k: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if use_reference(m, n, k) {
        GEMM_SMALL.add(1);
        return reference::gemm_tn(a, k, m, b, n, out);
    }
    GEMM_PACKED.add(1);
    let level = level_for(Kind::Tn, simd_level());
    let bp = pack_b(level, Kind::Tn, b, k, n);
    let mut ap = vec![0.0f32; k * MR];
    run_tiles_level::<true, false>(
        level,
        a,
        true,
        m,
        k,
        &bp,
        n,
        0,
        m.div_ceil(MR),
        out,
        &mut ap,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn randvec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    /// Random data with exact zeros mixed in so the SKIP path runs.
    fn randvec_zeros(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                if rng.gen_range(0..4) == 0 {
                    0.0
                } else {
                    rng.gen_range(-2.0..2.0)
                }
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Every dispatch level the host can actually run.
    fn host_levels() -> Vec<Level> {
        let mut levels = vec![Level::Baseline];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                levels.push(Level::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                levels.push(Level::Avx512);
            }
        }
        levels
    }

    // Shapes straddling every dispatch boundary: fast path, exact tiles,
    // edge tiles one off either side of MR/NR (and the 16-wide AVX-512
    // panel edge at 15/17/33).
    const SHAPES: [(usize, usize, usize); 8] = [
        (1, 1, 1),
        (3, 9, 5),
        (8, 8, 8),
        (16, 16, 16),
        (17, 15, 9),
        (24, 33, 31),
        (25, 31, 40),
        (40, 41, 23),
    ];

    #[test]
    fn packed_nn_matches_reference_bitwise() {
        for &(m, n, k) in &SHAPES {
            let a = randvec_zeros(m * k, 1 + m as u64);
            let b = randvec(k * n, 2 + n as u64);
            let mut got = vec![1.0f32; m * n];
            let mut want = vec![2.0f32; m * n];
            gemm_nn(&a, m, k, &b, n, &mut got);
            reference::gemm_nn(&a, m, k, &b, n, &mut want);
            assert_eq!(bits(&got), bits(&want), "nn {m}x{n}x{k}");
        }
    }

    #[test]
    fn packed_nt_acc_matches_reference_bitwise() {
        for &(m, n, k) in &SHAPES {
            let a = randvec(m * k, 3 + m as u64);
            let b = randvec(n * k, 4 + n as u64);
            let init = randvec(m * n, 5);
            let mut got = init.clone();
            let mut want = init.clone();
            gemm_nt_acc(&a, m, k, &b, n, &mut got);
            reference::gemm_nt_acc(&a, m, k, &b, n, &mut want);
            assert_eq!(bits(&got), bits(&want), "nt_acc {m}x{n}x{k}");
        }
    }

    #[test]
    fn packed_tn_matches_reference_bitwise() {
        for &(m, n, k) in &SHAPES {
            let a = randvec_zeros(k * m, 6 + m as u64);
            let b = randvec(k * n, 7 + n as u64);
            let mut got = vec![1.0f32; m * n];
            let mut want = vec![2.0f32; m * n];
            gemm_tn(&a, k, m, &b, n, &mut got);
            reference::gemm_tn(&a, k, m, &b, n, &mut want);
            assert_eq!(bits(&got), bits(&want), "tn {m}x{n}x{k}");
        }
    }

    #[test]
    fn par_gemm_matches_reference_bitwise() {
        for &(m, n, k) in &SHAPES {
            for kind in [Kind::Nn, Kind::Nt, Kind::Tn] {
                let (alen, blen) = match kind {
                    Kind::Nn => (m * k, k * n),
                    Kind::Nt => (m * k, n * k),
                    Kind::Tn => (k * m, k * n),
                };
                let a = randvec_zeros(alen, 8 + m as u64);
                let b = randvec(blen, 9 + n as u64);
                let mut got = vec![1.0f32; m * n];
                let mut want = vec![2.0f32; m * n];
                par_gemm(kind, &a, &b, m, n, k, &mut got);
                match kind {
                    Kind::Nn => reference::gemm_nn(&a, m, k, &b, n, &mut want),
                    Kind::Nt => reference::gemm_nt(&a, m, k, &b, n, &mut want),
                    Kind::Tn => reference::gemm_tn(&a, k, m, &b, n, &mut want),
                }
                assert_eq!(bits(&got), bits(&want), "{kind:?} {m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn every_simd_level_matches_reference_bitwise() {
        // The production entry points only run `level_for`'s choice per
        // layout; drive each available driver explicitly so AVX2/AVX-512
        // and the portable body are all proven against the scalar loops
        // for every layout, whatever host picked which.
        for level in host_levels() {
            for &(m, n, k) in &SHAPES {
                if use_reference(m, n, k) {
                    continue;
                }
                let mut ap = vec![0.0f32; k * MR];
                let ntiles = m.div_ceil(MR);

                let a = randvec_zeros(m * k, 20 + m as u64);
                let b = randvec(k * n, 21 + n as u64);
                let bp = pack_b(level, Kind::Nn, &b, k, n);
                let mut got = vec![1.0f32; m * n];
                let mut want = vec![2.0f32; m * n];
                run_tiles_level::<true, false>(
                    level, &a, false, m, k, &bp, n, 0, ntiles, &mut got, &mut ap,
                );
                reference::gemm_nn(&a, m, k, &b, n, &mut want);
                assert_eq!(bits(&got), bits(&want), "{level:?} nn {m}x{n}x{k}");

                let bt = randvec(n * k, 22 + n as u64);
                let bp = pack_b(level, Kind::Nt, &bt, k, n);
                run_tiles_level::<false, false>(
                    level, &a, false, m, k, &bp, n, 0, ntiles, &mut got, &mut ap,
                );
                reference::gemm_nt(&a, m, k, &bt, n, &mut want);
                assert_eq!(bits(&got), bits(&want), "{level:?} nt {m}x{n}x{k}");

                let at = randvec_zeros(k * m, 23 + m as u64);
                let bp = pack_b(level, Kind::Tn, &b, k, n);
                run_tiles_level::<true, false>(
                    level, &at, true, m, k, &bp, n, 0, ntiles, &mut got, &mut ap,
                );
                reference::gemm_tn(&at, k, m, &b, n, &mut want);
                assert_eq!(bits(&got), bits(&want), "{level:?} tn {m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn zero_skip_preserves_nonfinite_bits() {
        // A zero activation row times NaN weights: the skip must keep the
        // NaN out of the output, exactly as the scalar loops did.
        let m = 16;
        let (n, k) = (16, 16);
        let mut a = randvec(m * k, 10);
        for v in &mut a[..k] {
            *v = 0.0; // first row all zero
        }
        let mut b = randvec(k * n, 11);
        b[0] = f32::NAN;
        b[k] = f32::INFINITY;
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn(&a, m, k, &b, n, &mut got);
        reference::gemm_nn(&a, m, k, &b, n, &mut want);
        assert_eq!(bits(&got), bits(&want));
        assert!(got[..n].iter().all(|v| *v == 0.0), "zero row stayed zero");
    }

    #[test]
    fn k_zero_yields_zeros() {
        let mut out = vec![7.0f32; 3 * 4];
        par_gemm(Kind::Nn, &[], &[], 3, 4, 0, &mut out);
        assert!(out.iter().all(|v| v.to_bits() == 0));
    }

    #[test]
    fn par_gemm_ref_matches_serial_reference() {
        for &(m, n, k) in &SHAPES {
            let a = randvec_zeros(m * k, 12 + m as u64);
            let b = randvec(k * n, 13 + n as u64);
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            reference::par_gemm_ref(Kind::Nn, &a, &b, m, n, k, &mut got);
            reference::gemm_nn(&a, m, k, &b, n, &mut want);
            assert_eq!(bits(&got), bits(&want), "ref nn {m}x{n}x{k}");
        }
    }
}
