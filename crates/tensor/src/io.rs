//! Minimal binary (de)serialisation for tensors, used by checkpointing.
//!
//! Format (little-endian): magic `b"CQT1"`, `u32` rank, `u64` per axis
//! length, then `f32` data. No external serialisation crate is needed.

use std::io::{Read, Write};

use crate::{Result, Tensor, TensorError};

const MAGIC: &[u8; 4] = b"CQT1";

/// Writes a tensor to `w` in the `CQT1` binary format.
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Propagates underlying I/O errors as [`TensorError::Io`].
pub fn write_tensor<W: Write>(mut w: W, t: &Tensor) -> Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(t.rank() as u32).to_le_bytes())?;
    for &d in t.dims() {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    for &v in t.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a tensor from `r` in the `CQT1` binary format.
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`TensorError::Io`] on malformed input (bad magic, truncated
/// data, or absurd rank).
pub fn read_tensor<R: Read>(mut r: R) -> Result<Tensor> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TensorError::Io(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let mut rank_buf = [0u8; 4];
    r.read_exact(&mut rank_buf)?;
    let rank = u32::from_le_bytes(rank_buf) as usize;
    if rank > 16 {
        return Err(TensorError::Io(format!("implausible rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        dims.push(u64::from_le_bytes(b) as usize);
    }
    let len: usize = dims.iter().product();
    if len > (1 << 31) {
        return Err(TensorError::Io(format!("implausible element count {len}")));
    }
    let mut data = vec![0.0f32; len];
    let mut buf = [0u8; 4];
    for v in &mut data {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Tensor::from_vec(data, &dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_shape_and_data() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let t = Tensor::randn(&[2, 3, 4], 0.0, 1.0, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back = read_tensor(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn scalar_round_trip() {
        let t = Tensor::scalar(4.25);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back = read_tensor(buf.as_slice()).unwrap();
        assert_eq!(back.item(), 4.25);
        assert_eq!(back.rank(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x00\x00\x00\x00".to_vec();
        assert!(matches!(
            read_tensor(buf.as_slice()),
            Err(TensorError::Io(_))
        ));
    }

    #[test]
    fn truncated_data_rejected() {
        let t = Tensor::ones(&[4]);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_tensor(buf.as_slice()).is_err());
    }

    #[test]
    fn implausible_rank_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&100u32.to_le_bytes());
        assert!(read_tensor(buf.as_slice()).is_err());
    }
}
