//! Pooling kernels over NCHW batches: max, average and global average,
//! each with its backward pass.

use crate::{Conv2dSpec, Result, Tensor, TensorError};

// Output-element counter shared by the forward pooling kernels (max, avg,
// global avg). No-op unless a cq-obs sink is installed.
static POOL_ELEMS: cq_obs::Counter = cq_obs::Counter::new("tensor.pool.elems");

fn check_nchw(x: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: x.rank(),
            op,
        });
    }
    let d = x.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Max pooling over an NCHW tensor. Returns the pooled tensor and the flat
/// input index chosen for every output element (needed by
/// [`max_pool2d_backward`]).
///
/// Window positions that lie entirely in padding produce `-inf`; with the
/// geometries used in this crate (kernel ≥ padding) this never happens.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or invalid geometry.
pub fn max_pool2d(x: &Tensor, spec: &Conv2dSpec) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = check_nchw(x, "max_pool2d")?;
    let (oh, ow) = spec.out_hw(h, w)?;
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    POOL_ELEMS.add((n * c * oh * ow) as u64);
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut arg = vec![usize::MAX; n * c * oh * ow];
    let xs = x.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = usize::MAX;
                    for ki in 0..kh {
                        let iy = (oy * sh + ki) as isize - ph as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let ix = (ox * sw + kj) as isize - pw as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = base + iy as usize * w + ix as usize;
                            if xs[idx] > best {
                                best = xs[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[obase + oy * ow + ox] = best;
                    arg[obase + oy * ow + ox] = best_idx;
                }
            }
        }
    }
    Ok((Tensor::from_vec(out, &[n, c, oh, ow])?, arg))
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// input element that won the max.
///
/// # Errors
///
/// Returns an error if `dy`'s element count disagrees with `argmax`.
pub fn max_pool2d_backward(dy: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Result<Tensor> {
    if dy.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            len: argmax.len(),
            shape: dy.dims().to_vec(),
        });
    }
    let mut dx = Tensor::zeros(input_shape);
    let dxs = dx.as_mut_slice();
    for (&g, &idx) in dy.as_slice().iter().zip(argmax) {
        if idx != usize::MAX {
            dxs[idx] += g;
        }
    }
    Ok(dx)
}

/// Average pooling over an NCHW tensor. The divisor is the full kernel area
/// (`count_include_pad` semantics, matching the reference frameworks'
/// default for CIFAR-style heads).
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or invalid geometry.
pub fn avg_pool2d(x: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(x, "avg_pool2d")?;
    let (oh, ow) = spec.out_hw(h, w)?;
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let area = (kh * kw) as f32;
    POOL_ELEMS.add((n * c * oh * ow) as u64);
    let mut out = vec![0.0f32; n * c * oh * ow];
    let xs = x.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..kh {
                        let iy = (oy * sh + ki) as isize - ph as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let ix = (ox * sw + kj) as isize - pw as isize;
                            if ix >= 0 && (ix as usize) < w {
                                acc += xs[base + iy as usize * w + ix as usize];
                            }
                        }
                    }
                    out[obase + oy * ow + ox] = acc / area;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`avg_pool2d`].
///
/// # Errors
///
/// Returns an error for inconsistent shapes or invalid geometry.
pub fn avg_pool2d_backward(
    dy: &Tensor,
    input_shape: &[usize],
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    let (n, c, oh, ow) = check_nchw(dy, "avg_pool2d_backward")?;
    let (h, w) = (input_shape[2], input_shape[3]);
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let area = (kh * kw) as f32;
    let mut dx = Tensor::zeros(input_shape);
    let dxs = dx.as_mut_slice();
    let dys = dy.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dys[obase + oy * ow + ox] / area;
                    for ki in 0..kh {
                        let iy = (oy * sh + ki) as isize - ph as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let ix = (ox * sw + kj) as isize - pw as isize;
                            if ix >= 0 && (ix as usize) < w {
                                dxs[base + iy as usize * w + ix as usize] += g;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(dx)
}

/// Global average pooling: `[n, c, h, w] -> [n, c]`.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs.
pub fn global_avg_pool(x: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(x, "global_avg_pool")?;
    let spatial = (h * w) as f32;
    POOL_ELEMS.add((n * c) as u64);
    let mut out = vec![0.0f32; n * c];
    let xs = x.as_slice();
    for (i, o) in out.iter_mut().enumerate() {
        let base = i * h * w;
        // cq-allow(det-float-accum): contiguous spatial window summed in index order
        *o = xs[base..base + h * w].iter().sum::<f32>() / spatial;
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of [`global_avg_pool`]: spreads each `[n, c]` gradient
/// uniformly over the spatial grid.
///
/// # Errors
///
/// Returns an error if `dy` is not rank 2 or shapes disagree.
pub fn global_avg_pool_backward(dy: &Tensor, input_shape: &[usize]) -> Result<Tensor> {
    if dy.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: dy.rank(),
            op: "global_avg_pool_backward",
        });
    }
    let (h, w) = (input_shape[2], input_shape[3]);
    let spatial = (h * w) as f32;
    let mut dx = Tensor::zeros(input_shape);
    let dxs = dx.as_mut_slice();
    for (i, &g) in dy.as_slice().iter().enumerate() {
        let v = g / spatial;
        for s in &mut dxs[i * h * w..(i + 1) * h * w] {
            *s = v;
        }
    }
    Ok(dx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        // 1 sample, 1 channel, 4x4 ramp
        Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap()
    }

    #[test]
    fn max_pool_2x2() {
        let (y, arg) = max_pool2d(&sample(), &Conv2dSpec::new(2, 2, 0)).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = sample();
        let (_, arg) = max_pool2d(&x, &Conv2dSpec::new(2, 2, 0)).unwrap();
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let dx = max_pool2d_backward(&dy, &arg, &[1, 1, 4, 4]).unwrap();
        assert_eq!(dx.as_slice()[5], 1.0);
        assert_eq!(dx.as_slice()[7], 2.0);
        assert_eq!(dx.as_slice()[13], 3.0);
        assert_eq!(dx.as_slice()[15], 4.0);
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn avg_pool_2x2() {
        let y = avg_pool2d(&sample(), &Conv2dSpec::new(2, 2, 0)).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_uniform_spread() {
        let dy = Tensor::from_vec(vec![4.0, 0.0, 0.0, 0.0], &[1, 1, 2, 2]).unwrap();
        let dx = avg_pool2d_backward(&dy, &[1, 1, 4, 4], &Conv2dSpec::new(2, 2, 0)).unwrap();
        assert_eq!(dx.as_slice()[0], 1.0);
        assert_eq!(dx.as_slice()[1], 1.0);
        assert_eq!(dx.as_slice()[4], 1.0);
        assert_eq!(dx.as_slice()[5], 1.0);
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 1, 2, 2]).unwrap();
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[2, 1]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
        let dy = Tensor::from_vec(vec![4.0, 8.0], &[2, 1]).unwrap();
        let dx = global_avg_pool_backward(&dy, &[2, 1, 2, 2]).unwrap();
        assert!(dx.as_slice()[..4].iter().all(|&v| v == 1.0));
        assert!(dx.as_slice()[4..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn pooling_rejects_wrong_rank() {
        let x = Tensor::zeros(&[2, 2]);
        assert!(max_pool2d(&x, &Conv2dSpec::new(2, 2, 0)).is_err());
        assert!(avg_pool2d(&x, &Conv2dSpec::new(2, 2, 0)).is_err());
        assert!(global_avg_pool(&x).is_err());
    }

    #[test]
    fn avg_pool_gradient_check() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let spec = Conv2dSpec::new(2, 2, 0);
        let dy = Tensor::ones(&[1, 2, 2, 2]);
        let dx = avg_pool2d_backward(&dy, &[1, 2, 4, 4], &spec).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 9, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = avg_pool2d(&xp, &spec).unwrap().sum();
            let lm = avg_pool2d(&xm, &spec).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - dx.as_slice()[idx]).abs() < 1e-2);
        }
    }
}
