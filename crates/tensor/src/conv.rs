//! Convolution lowering: `im2col` / `col2im` and depthwise kernels.
//!
//! Dense convolutions are lowered per-sample to a column matrix of shape
//! `[C*KH*KW, OH*OW]`; the convolution is then a matmul with the weight
//! viewed as `[O, C*KH*KW]`. The backward pass reverses the lowering with
//! [`col2im`]. Depthwise convolutions (MobileNetV2) skip the lowering and
//! use direct loops, which is faster for a single channel per group.

use crate::{Result, TensorError};

// Kernel counters (no-ops unless a cq-obs sink is installed). im2col is
// counted in column-matrix elements written; depthwise convs in
// multiply-add FLOPs, so observed totals reconcile with Plan IR estimates.
static IM2COL_ELEMS: cq_obs::Counter = cq_obs::Counter::new("tensor.im2col.elems");
static DEPTHWISE_FLOPS: cq_obs::Counter = cq_obs::Counter::new("tensor.depthwise.flops");

/// Geometry of a 2-D convolution or pooling window: kernel size, stride and
/// zero padding (symmetric).
///
/// # Example
///
/// ```
/// use cq_tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 1, 1); // 3x3, stride 1, pad 1 => "same"
/// assert_eq!(spec.out_hw(16, 16)?, (16, 16));
/// # Ok::<(), cq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Stride along height and width.
    pub stride: (usize, usize),
    /// Zero padding along height and width (applied on both sides).
    pub padding: (usize, usize),
}

impl Conv2dSpec {
    /// Square-kernel constructor: `k`×`k` kernel, stride `s`, padding `p`.
    pub fn new(k: usize, s: usize, p: usize) -> Self {
        Conv2dSpec {
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
        }
    }

    /// Output spatial size for an `h`×`w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel does not fit
    /// in the padded input or any stride is zero.
    pub fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        if sh == 0 || sw == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be nonzero".into(),
            ));
        }
        if kh == 0 || kw == 0 {
            return Err(TensorError::InvalidGeometry(
                "kernel must be nonzero".into(),
            ));
        }
        let ph2 = h + 2 * ph;
        let pw2 = w + 2 * pw;
        if kh > ph2 || kw > pw2 {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {:?} larger than padded input {}x{}",
                self.kernel, ph2, pw2
            )));
        }
        Ok(((ph2 - kh) / sh + 1, (pw2 - kw) / sw + 1))
    }

    /// Number of rows of the column matrix for a `c`-channel input:
    /// `c * kh * kw`.
    pub fn col_rows(&self, c: usize) -> usize {
        c * self.kernel.0 * self.kernel.1
    }
}

/// Lowers one `[c, h, w]` sample (flat slice, CHW order) to a column matrix
/// written into `out`, which must have length `c*kh*kw * oh*ow`.
///
/// Row `(ci*kh+ki)*kw+kj` of the column matrix holds, for every output
/// location, the input value under kernel tap `(ki, kj)` of channel `ci`
/// (zero where the tap falls in padding).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the geometry.
pub fn im2col(input: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec, out: &mut [f32]) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.out_hw(h, w).expect("im2col: invalid geometry"); // cq-check: allow — geometry pre-validated by callers
    assert_eq!(input.len(), c * h * w, "im2col: input length mismatch");
    assert_eq!(
        out.len(),
        c * kh * kw * oh * ow,
        "im2col: output length mismatch"
    );
    IM2COL_ELEMS.add(out.len() as u64);

    let ospatial = oh * ow;
    for ci in 0..c {
        let in_ch = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ci * kh + ki) * kw + kj) * ospatial;
                let dst = &mut out[row..row + ospatial];
                // The in-bounds output-x interval [x0, x1) for this tap
                // does not depend on oy: hoist the border test out of the
                // pixel loop so interior spans are straight copies.
                let off = kj as isize - pw as isize;
                let x0 = if off >= 0 {
                    0
                } else {
                    ((-off) as usize).div_ceil(sw)
                }
                .min(ow);
                let hi = w as isize - 1 - off;
                let x1 = if hi < 0 {
                    x0
                } else {
                    ((hi as usize) / sw + 1).clamp(x0, ow)
                };
                for oy in 0..oh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    let orow = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        orow.fill(0.0);
                        continue;
                    }
                    let iy = iy as usize;
                    orow[..x0].fill(0.0);
                    orow[x1..].fill(0.0);
                    if x1 > x0 {
                        let src0 = iy * w + ((x0 * sw) as isize + off) as usize;
                        if sw == 1 {
                            orow[x0..x1].copy_from_slice(&in_ch[src0..src0 + (x1 - x0)]);
                        } else {
                            for (i, o) in orow[x0..x1].iter_mut().enumerate() {
                                *o = in_ch[src0 + i * sw];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Reverse of [`im2col`]: accumulates a column-matrix gradient back into a
/// `[c, h, w]` input-gradient slice. `out` is accumulated into, not
/// overwritten, so a caller can fold several branches together.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the geometry.
pub fn col2im(cols: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec, out: &mut [f32]) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.out_hw(h, w).expect("col2im: invalid geometry"); // cq-check: allow — geometry pre-validated by callers
    assert_eq!(out.len(), c * h * w, "col2im: output length mismatch");
    assert_eq!(
        cols.len(),
        c * kh * kw * oh * ow,
        "col2im: cols length mismatch"
    );

    let ospatial = oh * ow;
    for ci in 0..c {
        let out_ch = &mut out[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ci * kh + ki) * kw + kj) * ospatial;
                let src = &cols[row..row + ospatial];
                for oy in 0..oh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * sw + kj) as isize - pw as isize;
                        if ix >= 0 && (ix as usize) < w {
                            out_ch[iy * w + ix as usize] += src[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// Direct depthwise convolution over one `[c, h, w]` sample: channel `ci`
/// of the output is channel `ci` of the input convolved with kernel
/// `weight[ci]` (`weight` is flat `[c, kh, kw]`).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the geometry.
pub fn depthwise_conv2d(
    input: &[f32],
    weight: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    out: &mut [f32],
) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.out_hw(h, w).expect("depthwise: invalid geometry"); // cq-check: allow — geometry pre-validated by callers
    assert_eq!(input.len(), c * h * w);
    assert_eq!(weight.len(), c * kh * kw);
    assert_eq!(out.len(), c * oh * ow);
    DEPTHWISE_FLOPS.add(2 * (c * oh * ow * kh * kw) as u64);

    for ci in 0..c {
        let in_ch = &input[ci * h * w..(ci + 1) * h * w];
        let ker = &weight[ci * kh * kw..(ci + 1) * kh * kw];
        let out_ch = &mut out[ci * oh * ow..(ci + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ki in 0..kh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kj in 0..kw {
                        let ix = (ox * sw + kj) as isize - pw as isize;
                        if ix >= 0 && (ix as usize) < w {
                            // cq-allow(no-naive-hot-loop): depthwise k x k stencil with per-tap padding guards; no matrix structure to lower onto cq_tensor::gemm
                            acc += in_ch[iy as usize * w + ix as usize] * ker[ki * kw + kj];
                        }
                    }
                }
                out_ch[oy * ow + ox] = acc;
            }
        }
    }
}

/// i8 variant of [`im2col`] for the integer inference path. `pad` is the
/// i8 code written where a tap falls in padding: with a zero-point
/// representation the real value `0.0` maps to code `-zp`, not `0`, so
/// the caller passes that code here and the downstream i8 GEMM's
/// zero-point correction term stays exact (see `cq-infer`'s conversion
/// notes).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the geometry.
pub fn im2col_i8(
    input: &[i8],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    pad: i8,
    out: &mut [i8],
) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.out_hw(h, w).expect("im2col_i8: invalid geometry"); // cq-check: allow — geometry pre-validated by callers
    assert_eq!(input.len(), c * h * w, "im2col_i8: input length mismatch");
    assert_eq!(
        out.len(),
        c * kh * kw * oh * ow,
        "im2col_i8: output length mismatch"
    );
    IM2COL_ELEMS.add(out.len() as u64);

    let ospatial = oh * ow;
    for ci in 0..c {
        let in_ch = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ci * kh + ki) * kw + kj) * ospatial;
                let dst = &mut out[row..row + ospatial];
                // Same hoisted border analysis as the f32 im2col: the
                // in-bounds output-x interval [x0, x1) is oy-independent.
                let off = kj as isize - pw as isize;
                let x0 = if off >= 0 {
                    0
                } else {
                    ((-off) as usize).div_ceil(sw)
                }
                .min(ow);
                let hi = w as isize - 1 - off;
                let x1 = if hi < 0 {
                    x0
                } else {
                    ((hi as usize) / sw + 1).clamp(x0, ow)
                };
                for oy in 0..oh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    let orow = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        orow.fill(pad);
                        continue;
                    }
                    let iy = iy as usize;
                    orow[..x0].fill(pad);
                    orow[x1..].fill(pad);
                    if x1 > x0 {
                        let src0 = iy * w + ((x0 * sw) as isize + off) as usize;
                        if sw == 1 {
                            orow[x0..x1].copy_from_slice(&in_ch[src0..src0 + (x1 - x0)]);
                        } else {
                            for (i, o) in orow[x0..x1].iter_mut().enumerate() {
                                *o = in_ch[src0 + i * sw];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// i8 variant of [`depthwise_conv2d`] with exact `i32` accumulation for
/// the integer inference path. Unlike the f32 kernel, padded taps are not
/// skipped: they contribute `pad * ker` so a zero-point code (`pad =
/// -zp`) is treated exactly like an in-bounds code, keeping the
/// per-channel zero-point correction term exact.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_conv2d_i8(
    input: &[i8],
    weight: &[i8],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    pad: i8,
    out: &mut [i32],
) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.out_hw(h, w).expect("depthwise_i8: invalid geometry"); // cq-check: allow — geometry pre-validated by callers
    assert_eq!(input.len(), c * h * w);
    assert_eq!(weight.len(), c * kh * kw);
    assert_eq!(out.len(), c * oh * ow);
    DEPTHWISE_FLOPS.add(2 * (c * oh * ow * kh * kw) as u64);

    for ci in 0..c {
        let in_ch = &input[ci * h * w..(ci + 1) * h * w];
        let ker = &weight[ci * kh * kw..(ci + 1) * kh * kw];
        let out_ch = &mut out[ci * oh * ow..(ci + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0i32;
                for ki in 0..kh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    for kj in 0..kw {
                        let ix = (ox * sw + kj) as isize - pw as isize;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && (ix as usize) < w {
                            in_ch[iy as usize * w + ix as usize]
                        } else {
                            pad
                        };
                        // cq-allow(no-naive-hot-loop): depthwise k x k stencil with per-tap padding codes; no matrix structure to lower onto cq_tensor::gemm
                        acc += v as i32 * ker[ki * kw + kj] as i32;
                    }
                }
                out_ch[oy * ow + ox] = acc;
            }
        }
    }
}

/// Backward pass of [`depthwise_conv2d`]: accumulates the input gradient
/// into `dinput` and the weight gradient into `dweight` given the output
/// gradient `dout`.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_conv2d_backward(
    input: &[f32],
    weight: &[f32],
    dout: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    dinput: &mut [f32],
    dweight: &mut [f32],
) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec
        .out_hw(h, w)
        .expect("depthwise backward: invalid geometry"); // cq-check: allow — geometry pre-validated by callers
    assert_eq!(input.len(), c * h * w);
    assert_eq!(weight.len(), c * kh * kw);
    assert_eq!(dout.len(), c * oh * ow);
    assert_eq!(dinput.len(), c * h * w);
    assert_eq!(dweight.len(), c * kh * kw);

    for ci in 0..c {
        let in_ch = &input[ci * h * w..(ci + 1) * h * w];
        let ker = &weight[ci * kh * kw..(ci + 1) * kh * kw];
        let dout_ch = &dout[ci * oh * ow..(ci + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let g = dout_ch[oy * ow + ox];
                if g == 0.0 {
                    continue;
                }
                for ki in 0..kh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kj in 0..kw {
                        let ix = (ox * sw + kj) as isize - pw as isize;
                        if ix >= 0 && (ix as usize) < w {
                            let iidx = ci * h * w + iy as usize * w + ix as usize;
                            dinput[iidx] += g * ker[ki * kw + kj]; // cq-allow(no-naive-hot-loop): depthwise backward scatter; padding-guarded stencil taps, not a lowerable matmul
                            dweight[ci * kh * kw + ki * kw + kj] +=
                                g * in_ch[iy as usize * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn out_hw_same_padding() {
        let spec = Conv2dSpec::new(3, 1, 1);
        assert_eq!(spec.out_hw(8, 8).unwrap(), (8, 8));
        let stride2 = Conv2dSpec::new(3, 2, 1);
        assert_eq!(stride2.out_hw(8, 8).unwrap(), (4, 4));
    }

    #[test]
    fn out_hw_rejects_bad_geometry() {
        assert!(Conv2dSpec::new(5, 1, 0).out_hw(3, 3).is_err());
        assert!(Conv2dSpec {
            kernel: (3, 3),
            stride: (0, 1),
            padding: (0, 0)
        }
        .out_hw(8, 8)
        .is_err());
        assert!(Conv2dSpec {
            kernel: (0, 3),
            stride: (1, 1),
            padding: (0, 0)
        }
        .out_hw(8, 8)
        .is_err());
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        // 1x1 kernel, stride 1, no padding: columns == input.
        let x: Vec<f32> = (0..2 * 3 * 3).map(|v| v as f32).collect();
        let spec = Conv2dSpec::new(1, 1, 0);
        let mut cols = vec![0.0f32; 2 * 9];
        im2col(&x, 2, 3, 3, &spec, &mut cols);
        assert_eq!(cols, x);
    }

    #[test]
    fn im2col_3x3_padding_zeroes_border() {
        let x = vec![1.0f32; 9]; // 1 channel, 3x3 of ones
        let spec = Conv2dSpec::new(3, 1, 1);
        let mut cols = vec![0.0f32; 9 * 9];
        im2col(&x, 1, 3, 3, &spec, &mut cols);
        // Tap (0,0) at output (0,0) reads input (-1,-1) => 0.
        assert_eq!(cols[0], 0.0);
        // Center tap (1,1) row is all ones (reads the input directly).
        let center_row = &cols[4 * 9..5 * 9];
        assert!(center_row.iter().all(|&v| v == 1.0));
    }

    /// Reference convolution via explicit loops, for cross-checking the
    /// im2col+matmul path.
    fn conv_reference(
        x: &[f32],
        wgt: &[f32],
        c_in: usize,
        c_out: usize,
        h: usize,
        w: usize,
        spec: &Conv2dSpec,
    ) -> Vec<f32> {
        let (kh, kw) = spec.kernel;
        let (sh, sw) = spec.stride;
        let (ph, pw) = spec.padding;
        let (oh, ow) = spec.out_hw(h, w).unwrap();
        let mut out = vec![0.0f32; c_out * oh * ow];
        for co in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ci in 0..c_in {
                        for ki in 0..kh {
                            for kj in 0..kw {
                                let iy = (oy * sh + ki) as isize - ph as isize;
                                let ix = (ox * sw + kj) as isize - pw as isize;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    acc += x[ci * h * w + iy as usize * w + ix as usize]
                                        * wgt[((co * c_in + ci) * kh + ki) * kw + kj];
                                }
                            }
                        }
                    }
                    out[co * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn im2col_matmul_matches_reference_conv() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (c_in, c_out, h, w) = (3, 4, 6, 5);
        let spec = Conv2dSpec::new(3, 2, 1);
        let x = Tensor::randn(&[c_in * h * w], 0.0, 1.0, &mut rng);
        let wgt = Tensor::randn(&[c_out, c_in * 9], 0.0, 1.0, &mut rng);
        let (oh, ow) = spec.out_hw(h, w).unwrap();

        let mut cols = vec![0.0f32; c_in * 9 * oh * ow];
        im2col(x.as_slice(), c_in, h, w, &spec, &mut cols);
        let cols_t = Tensor::from_vec(cols, &[c_in * 9, oh * ow]).unwrap();
        let got = wgt.matmul(&cols_t).unwrap();

        let want = conv_reference(x.as_slice(), wgt.as_slice(), c_in, c_out, h, w, &spec);
        for (g, r) in got.as_slice().iter().zip(&want) {
            assert!((g - r).abs() < 1e-4, "{g} vs {r}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backward needs.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let (c, h, w) = (2, 5, 4);
        let spec = Conv2dSpec::new(3, 2, 1);
        let (oh, ow) = spec.out_hw(h, w).unwrap();
        let x = Tensor::randn(&[c * h * w], 0.0, 1.0, &mut rng);
        let y = Tensor::randn(&[c * 9 * oh * ow], 0.0, 1.0, &mut rng);

        let mut cols = vec![0.0f32; c * 9 * oh * ow];
        im2col(x.as_slice(), c, h, w, &spec, &mut cols);
        let lhs: f32 = cols.iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();

        let mut back = vec![0.0f32; c * h * w];
        col2im(y.as_slice(), c, h, w, &spec, &mut back);
        let rhs: f32 = back.iter().zip(x.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn depthwise_matches_reference_per_channel() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (c, h, w) = (3, 6, 6);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::randn(&[c * h * w], 0.0, 1.0, &mut rng);
        let wgt = Tensor::randn(&[c * 9], 0.0, 1.0, &mut rng);
        let (oh, ow) = spec.out_hw(h, w).unwrap();
        let mut out = vec![0.0f32; c * oh * ow];
        depthwise_conv2d(x.as_slice(), wgt.as_slice(), c, h, w, &spec, &mut out);

        // Per channel, compare against the dense reference with c_in = c_out = 1.
        for ci in 0..c {
            let want = conv_reference(
                &x.as_slice()[ci * h * w..(ci + 1) * h * w],
                &wgt.as_slice()[ci * 9..(ci + 1) * 9],
                1,
                1,
                h,
                w,
                &spec,
            );
            for (g, r) in out[ci * oh * ow..(ci + 1) * oh * ow].iter().zip(&want) {
                assert!((g - r).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn im2col_i8_matches_f32_im2col_with_zero_pad() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let (c, h, w) = (2, 5, 4);
        let spec = Conv2dSpec::new(3, 2, 1);
        let (oh, ow) = spec.out_hw(h, w).unwrap();
        let xi: Vec<i8> = (0..c * h * w)
            .map(|_| rng.gen_range(-128i32..=127) as i8)
            .collect();
        let xf: Vec<f32> = xi.iter().map(|&v| v as f32).collect();
        let mut cols_i = vec![0i8; c * 9 * oh * ow];
        let mut cols_f = vec![0.0f32; c * 9 * oh * ow];
        im2col_i8(&xi, c, h, w, &spec, 0, &mut cols_i);
        im2col(&xf, c, h, w, &spec, &mut cols_f);
        for (a, b) in cols_i.iter().zip(&cols_f) {
            assert_eq!(*a as f32, *b);
        }
    }

    #[test]
    fn im2col_i8_writes_pad_code_in_padding() {
        let x = vec![1i8; 9]; // 1 channel, 3x3 of ones
        let spec = Conv2dSpec::new(3, 1, 1);
        let mut cols = vec![0i8; 9 * 9];
        im2col_i8(&x, 1, 3, 3, &spec, -77, &mut cols);
        // Tap (0,0) at output (0,0) reads input (-1,-1) => pad code.
        assert_eq!(cols[0], -77);
        // Center tap row reads the input directly.
        assert!(cols[4 * 9..5 * 9].iter().all(|&v| v == 1));
    }

    #[test]
    fn depthwise_i8_matches_explicitly_padded_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let (c, h, w) = (3, 5, 5);
        let spec = Conv2dSpec::new(3, 2, 1);
        let (oh, ow) = spec.out_hw(h, w).unwrap();
        let pad = -33i8;
        let x: Vec<i8> = (0..c * h * w)
            .map(|_| rng.gen_range(-128i32..=127) as i8)
            .collect();
        let wgt: Vec<i8> = (0..c * 9)
            .map(|_| rng.gen_range(-127i32..=127) as i8)
            .collect();
        let mut got = vec![0i32; c * oh * ow];
        depthwise_conv2d_i8(&x, &wgt, c, h, w, &spec, pad, &mut got);

        // Materialize the padded input with the pad code and run a valid
        // (padding-free) integer conv as the oracle.
        let (hp, wp) = (h + 2, w + 2);
        for ci in 0..c {
            let mut padded = vec![pad; hp * wp];
            for y in 0..h {
                for xx in 0..w {
                    padded[(y + 1) * wp + (xx + 1)] = x[ci * h * w + y * w + xx];
                }
            }
            let ker = &wgt[ci * 9..(ci + 1) * 9];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0i32;
                    for ki in 0..3 {
                        for kj in 0..3 {
                            acc += padded[(oy * 2 + ki) * wp + ox * 2 + kj] as i32
                                * ker[ki * 3 + kj] as i32;
                        }
                    }
                    assert_eq!(got[ci * oh * ow + oy * ow + ox], acc, "c{ci} ({oy},{ox})");
                }
            }
        }
    }

    #[test]
    fn depthwise_backward_matches_finite_difference() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let (c, h, w) = (2, 4, 4);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::randn(&[c * h * w], 0.0, 0.5, &mut rng);
        let wgt = Tensor::randn(&[c * 9], 0.0, 0.5, &mut rng);
        let (oh, ow) = spec.out_hw(h, w).unwrap();

        // Loss = sum(out); dout = ones.
        let dout = vec![1.0f32; c * oh * ow];
        let mut dx = vec![0.0f32; c * h * w];
        let mut dw = vec![0.0f32; c * 9];
        depthwise_conv2d_backward(
            x.as_slice(),
            wgt.as_slice(),
            &dout,
            c,
            h,
            w,
            &spec,
            &mut dx,
            &mut dw,
        );

        let loss = |xs: &[f32], ws: &[f32]| -> f32 {
            let mut out = vec![0.0f32; c * oh * ow];
            depthwise_conv2d(xs, ws, c, h, w, &spec, &mut out);
            out.iter().sum()
        };
        let eps = 1e-3;
        // check a few weight grads
        for idx in [0usize, 5, 9, 17] {
            let mut wp = wgt.as_slice().to_vec();
            wp[idx] += eps;
            let mut wm = wgt.as_slice().to_vec();
            wm[idx] -= eps;
            let fd = (loss(x.as_slice(), &wp) - loss(x.as_slice(), &wm)) / (2.0 * eps);
            assert!(
                (fd - dw[idx]).abs() < 1e-2,
                "w[{idx}]: fd {fd} vs {}",
                dw[idx]
            );
        }
        // and a few input grads
        for idx in [0usize, 7, 15, 31] {
            let mut xp = x.as_slice().to_vec();
            xp[idx] += eps;
            let mut xm = x.as_slice().to_vec();
            xm[idx] -= eps;
            let fd = (loss(&xp, wgt.as_slice()) - loss(&xm, wgt.as_slice())) / (2.0 * eps);
            assert!(
                (fd - dx[idx]).abs() < 1e-2,
                "x[{idx}]: fd {fd} vs {}",
                dx[idx]
            );
        }
    }
}
