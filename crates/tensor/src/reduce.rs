//! Reductions (sum/mean/min/max/argmax), axis reductions for rank-2
//! tensors, and row-wise softmax / log-softmax.
//!
//! Whole-tensor reductions use pairwise (tree) summation: the rounding
//! error grows as `O(log n)` instead of the `O(n)` of a naive running
//! sum, and splitting at the midpoint mirrors how the parallel runtime
//! combines ordered chunk partials, so sequential and chunked reductions
//! agree bitwise.

use crate::{Result, Tensor, TensorError};

/// Below this length a sequential fold is both accurate enough and faster
/// than further recursion.
const PAIRWISE_LEAF: usize = 64;

/// Pairwise (tree) summation of `f(x)` over a slice: split at the
/// midpoint, recurse, add the halves. Error grows logarithmically in the
/// length instead of linearly.
fn pairwise_map_sum(xs: &[f32], f: &impl Fn(f32) -> f32) -> f32 {
    if xs.len() <= PAIRWISE_LEAF {
        return xs.iter().fold(0.0f32, |acc, &v| acc + f(v));
    }
    let mid = xs.len() / 2;
    pairwise_map_sum(&xs[..mid], f) + pairwise_map_sum(&xs[mid..], f)
}

/// Pairwise summation of a slice; see [`pairwise_map_sum`].
pub(crate) fn pairwise_sum(xs: &[f32]) -> f32 {
    pairwise_map_sum(xs, &|v| v)
}

impl Tensor {
    /// Sum of all elements, computed by pairwise (tree) summation.
    pub fn sum(&self) -> f32 {
        pairwise_sum(self.as_slice())
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence, flat index).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        let mut best_v = self.as_slice()[0];
        for (i, &v) in self.as_slice().iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// Variance of all elements (population variance; 0 for <2 elements),
    /// with the squared deviations reduced by pairwise summation.
    pub fn variance(&self) -> f32 {
        if self.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        pairwise_map_sum(self.as_slice(), &|v| (v - m) * (v - m)) / self.len() as f32
    }

    /// Sums a rank-2 tensor over `axis` (0 → column sums `[n]`,
    /// 1 → row sums `[m]`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices or
    /// [`TensorError::AxisOutOfRange`] for `axis > 1`.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank(),
                op: "sum_axis",
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        match axis {
            0 => {
                let mut out = vec![0.0f32; n];
                for i in 0..m {
                    for (j, o) in out.iter_mut().enumerate() {
                        *o += self.as_slice()[i * n + j];
                    }
                }
                Tensor::from_vec(out, &[n])
            }
            1 => {
                let mut out = vec![0.0f32; m];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.as_slice()[i * n..(i + 1) * n].iter().sum();
                }
                Tensor::from_vec(out, &[m])
            }
            a => Err(TensorError::AxisOutOfRange { axis: a, rank: 2 }),
        }
    }

    /// Mean over `axis` of a rank-2 tensor. See [`Tensor::sum_axis`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::sum_axis`].
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let denom = self.shape().dim(axis)? as f32;
        Ok(self.sum_axis(axis)?.scale(1.0 / denom))
    }

    /// Row-wise softmax of a rank-2 tensor, numerically stabilised by
    /// subtracting each row's max.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank(),
                op: "softmax_rows",
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.as_slice()[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - mx).exp();
                out[i * n + j] = e;
                denom += e;
            }
            for v in &mut out[i * n..(i + 1) * n] {
                *v /= denom;
            }
        }
        #[cfg(feature = "sanitize")]
        crate::sanitize::guard_slice("softmax_rows", &out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Row-wise log-softmax of a rank-2 tensor (stable log-sum-exp).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn log_softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank(),
                op: "log_softmax_rows",
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.as_slice()[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln() + mx;
            for (j, &v) in row.iter().enumerate() {
                out[i * n + j] = v - lse;
            }
        }
        #[cfg(feature = "sanitize")]
        crate::sanitize::guard_slice("log_softmax_rows", &out);
        Tensor::from_vec(out, &[m, n])
    }

    /// L2-normalises each row of a rank-2 tensor (unit vectors).
    ///
    /// Rows with norm below `eps` are left unchanged to avoid division by
    /// zero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn l2_normalize_rows(&self, eps: f32) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank(),
                op: "l2_normalize_rows",
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = self.as_slice().to_vec();
        for i in 0..m {
            let row = &mut out[i * n..(i + 1) * n];
            let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
            if norm > eps {
                for v in row.iter_mut() {
                    *v /= norm;
                }
            }
        }
        #[cfg(feature = "sanitize")]
        crate::sanitize::guard_slice("l2_normalize_rows", &out);
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn pairwise_sum_survives_adversarial_magnitudes() {
        // One large value followed by a million tiny ones. A naive
        // left-to-right f32 fold loses every tiny addend (each is below
        // the ulp of 1e4 ≈ 9.8e-4) and returns exactly 1e4; pairwise
        // summation accumulates the tiny values in their own subtrees
        // first, recovering the true total of about 1e4 + 100.
        let mut v = vec![1e-4f32; 1_000_001];
        v[0] = 1e4;
        let naive: f32 = v.iter().sum();
        assert_eq!(naive, 1e4, "naive sum should drop every small addend");
        let t = Tensor::from_slice(&v);
        let exact = 1e4f64 + 1e-4f64 * 1_000_000.0;
        let rel = ((t.sum() as f64 - exact) / exact).abs();
        assert!(rel < 1e-6, "pairwise sum {} vs exact {exact}", t.sum());
        // Mean inherits the accuracy.
        let mean_exact = exact / 1_000_001.0;
        assert!(((t.mean() as f64 - mean_exact) / mean_exact).abs() < 1e-6);
    }

    #[test]
    fn pairwise_sum_matches_ordered_chunk_reduction() {
        // Summing ordered chunk partials the way the parallel runtime
        // does must agree with the sequential pairwise sum to within the
        // pairwise error bound (bitwise when the split points coincide).
        let v: Vec<f32> = (0..4096).map(|i| ((i * 37) % 101) as f32 * 0.01).collect();
        let whole = pairwise_sum(&v);
        // Chunk at the same midpoint recursion depth (2 halves, then 4).
        let mid = v.len() / 2;
        let q1 = v.len() / 4;
        let halves = pairwise_sum(&v[..mid]) + pairwise_sum(&v[mid..]);
        let quarters = (pairwise_sum(&v[..q1]) + pairwise_sum(&v[q1..mid]))
            + (pairwise_sum(&v[mid..mid + q1]) + pairwise_sum(&v[mid + q1..]));
        assert_eq!(whole.to_bits(), halves.to_bits());
        assert_eq!(whole.to_bits(), quarters.to_bits());
    }

    #[test]
    fn variance_population() {
        let t = Tensor::from_slice(&[1.0, 3.0]);
        assert_eq!(t.variance(), 1.0);
        assert_eq!(Tensor::scalar(1.0).variance(), 0.0);
    }

    #[test]
    fn axis_sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis(0).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(1).unwrap().as_slice(), &[6.0, 15.0]);
        assert_eq!(t.mean_axis(1).unwrap().as_slice(), &[2.0, 5.0]);
        assert!(t.sum_axis(2).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_ordering_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = t.softmax_rows().unwrap();
        for i in 0..2 {
            let row = &s.as_slice()[i * 3..(i + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]).unwrap();
        let s = a.softmax_rows().unwrap();
        assert!(s.is_finite());
        let b = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]).unwrap();
        let sb = b.softmax_rows().unwrap();
        for (x, y) in s.as_slice().iter().zip(sb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]).unwrap();
        let ls = t.log_softmax_rows().unwrap();
        let s = t.softmax_rows().unwrap();
        for (l, p) in ls.as_slice().iter().zip(s.as_slice()) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]).unwrap();
        let n = t.l2_normalize_rows(1e-12).unwrap();
        assert!((n.row(0).unwrap().norm() - 1.0).abs() < 1e-6);
        // zero row unchanged, not NaN
        assert_eq!(n.row(1).unwrap().as_slice(), &[0.0, 0.0]);
    }
}
