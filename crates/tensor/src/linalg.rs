//! Matrix operations: blocked parallel matmul (plus transposed variants
//! needed by backward passes) and materialised transpose / permute.
//!
//! The actual kernels live in [`crate::gemm`]; this module owns shape
//! validation, workload counters and the sanitize guard.

use crate::gemm::{par_gemm, Kind};
use crate::{Result, Tensor, TensorError};

// Kernel counters: calls and multiply-add FLOPs (2·m·n·k per product, all
// three layout variants pooled) so an observed run can be reconciled
// against the Plan IR estimate. No-ops unless a cq-obs sink is installed.
static MATMUL_CALLS: cq_obs::Counter = cq_obs::Counter::new("tensor.matmul.calls");
static MATMUL_FLOPS: cq_obs::Counter = cq_obs::Counter::new("tensor.matmul.flops");

#[inline]
fn count_matmul(m: usize, n: usize, k: usize) {
    MATMUL_CALLS.add(1);
    MATMUL_FLOPS.add(2 * (m as u64) * (n as u64) * (k as u64));
}

impl Tensor {
    /// Matrix product `self @ other` for rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Runs the packed register-tiled kernel in [`crate::gemm`],
    /// parallelised over row tiles of the deterministic chunk grid;
    /// results are bitwise thread-count independent.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are
    /// rank 2, and [`TensorError::ShapeMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = as_2d(self, "matmul")?;
        let (k2, n) = as_2d(other, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "matmul",
            });
        }
        count_matmul(m, n, k);
        let mut out = vec![0.0f32; m * n];
        par_gemm(
            Kind::Nn,
            self.as_slice(),
            other.as_slice(),
            m,
            n,
            k,
            &mut out,
        );
        #[cfg(feature = "sanitize")]
        crate::sanitize::guard_slice("matmul", &out);
        Tensor::from_vec(out, &[m, n])
    }

    /// `self @ otherᵀ` for rank-2 tensors: `[m,k] x [n,k] -> [m,n]`.
    ///
    /// Used by backward passes (`dX = dY @ Wᵀ` with `W` stored `[n,k]`)
    /// without materialising the transpose: the transpose is folded into
    /// the kernel's B-panel packing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = as_2d(self, "matmul_nt")?;
        let (n, k2) = as_2d(other, "matmul_nt")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "matmul_nt",
            });
        }
        count_matmul(m, n, k);
        let mut out = vec![0.0f32; m * n];
        par_gemm(
            Kind::Nt,
            self.as_slice(),
            other.as_slice(),
            m,
            n,
            k,
            &mut out,
        );
        #[cfg(feature = "sanitize")]
        crate::sanitize::guard_slice("matmul", &out);
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ @ other` for rank-2 tensors: `[k,m] x [k,n] -> [m,n]`.
    ///
    /// Used by backward passes (`dW = Xᵀ @ dY`); the transpose is folded
    /// into the kernel's A-panel packing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = as_2d(self, "matmul_tn")?;
        let (k2, n) = as_2d(other, "matmul_tn")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "matmul_tn",
            });
        }
        count_matmul(m, n, k);
        let mut out = vec![0.0f32; m * n];
        par_gemm(
            Kind::Tn,
            self.as_slice(),
            other.as_slice(),
            m,
            n,
            k,
            &mut out,
        );
        #[cfg(feature = "sanitize")]
        crate::sanitize::guard_slice("matmul", &out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Materialised transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        let (m, n) = as_2d(self, "transpose")?;
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices or
    /// [`TensorError::AxisOutOfRange`] if `i` is out of bounds.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        let (m, n) = as_2d(self, "row")?;
        if i >= m {
            return Err(TensorError::AxisOutOfRange { axis: i, rank: m });
        }
        Ok(Tensor::from_slice(&self.as_slice()[i * n..(i + 1) * n]))
    }

    /// Stacks rank-1 tensors of equal length into a `[rows.len(), n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if rows have unequal lengths
    /// or [`TensorError::InvalidGeometry`] if `rows` is empty.
    pub fn from_rows(rows: &[Tensor]) -> Result<Tensor> {
        if rows.is_empty() {
            return Err(TensorError::InvalidGeometry(
                "from_rows: empty row list".into(),
            ));
        }
        let n = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * n);
        for r in rows {
            if r.len() != n {
                return Err(TensorError::ShapeMismatch {
                    lhs: vec![n],
                    rhs: r.dims().to_vec(),
                    op: "from_rows",
                });
            }
            data.extend_from_slice(r.as_slice());
        }
        Tensor::from_vec(data, &[rows.len(), n])
    }
}

fn as_2d(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: t.rank(),
            op,
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
                }
                out.as_mut_slice()[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let c = a.matmul(&Tensor::eye(4)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_matches_naive_on_larger_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Tensor::from_vec(
            (0..37 * 19).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[37, 19],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..19 * 23).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[19, 23],
        )
        .unwrap();
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Tensor::from_vec(
            (0..6 * 5).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[6, 5],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..7 * 5).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[7, 5],
        )
        .unwrap();
        let direct = a.matmul_nt(&b).unwrap();
        let via_t = a.matmul(&b.transpose().unwrap()).unwrap();
        for (x, y) in direct.as_slice().iter().zip(via_t.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = Tensor::from_vec(
            (0..5 * 6).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[5, 6],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..5 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[5, 4],
        )
        .unwrap();
        let direct = a.matmul_tn(&b).unwrap();
        let via_t = a.transpose().unwrap().matmul(&b).unwrap();
        for (x, y) in direct.as_slice().iter().zip(via_t.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(a.matmul(&v).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn row_extraction() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(a.row(1).unwrap().as_slice(), &[3.0, 4.0, 5.0]);
        assert!(a.row(2).is_err());
    }

    #[test]
    fn from_rows_stacks() {
        let r0 = Tensor::from_slice(&[1.0, 2.0]);
        let r1 = Tensor::from_slice(&[3.0, 4.0]);
        let m = Tensor::from_rows(&[r0, r1]).unwrap();
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(Tensor::from_rows(&[]).is_err());
    }
}
