//! The [`Tensor`] type: contiguous row-major `f32` storage plus a [`Shape`].

use crate::{Result, Shape, TensorError};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the workhorse type of the whole reproduction: model weights,
/// activations, gradients, images and feature embeddings are all `Tensor`s.
///
/// # Example
///
/// ```
/// use cq_tensor::Tensor;
///
/// let x = Tensor::full(&[2, 3], 2.0);
/// let y = x.scale(0.5).add(&Tensor::ones(&[2, 3]))?;
/// assert_eq!(y.as_slice(), &[2.0; 6]);
/// # Ok::<(), cq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a rank-0 tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor that takes ownership of `data`, viewed as `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the element count implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let shape = Shape::new(shape);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                shape: shape.dims().to_vec(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: Shape::new(&[data.len()]),
        }
    }

    /// Creates a rank-1 tensor of `n` evenly spaced values in `[start, end)`.
    pub fn arange(start: f32, end: f32, step: f32) -> Self {
        assert!(step != 0.0, "step must be nonzero");
        let mut data = Vec::new();
        let mut v = start;
        while (step > 0.0 && v < end) || (step < 0.0 && v > end) {
            data.push(v);
            v += step;
        }
        let n = data.len();
        Tensor {
            data,
            shape: Shape::new(&[n]),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The axis lengths.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Debug-asserts index validity; see [`Shape::flatten_index`].
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.flatten_index(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.flatten_index(idx);
        self.data[off] = value;
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a single-element tensor"
        );
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data viewed as `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// In-place variant of [`Tensor::reshape`]; avoids the copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<()> {
        let new_shape = Shape::new(shape);
        if new_shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                len: self.data.len(),
                shape: shape.to_vec(),
            });
        }
        self.shape = new_shape;
        Ok(())
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Self {
        Tensor {
            data: self.data.clone(),
            shape: Shape::new(&[self.data.len()]),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise maps
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "zip",
            });
        }
        let data: Vec<f32> = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        #[cfg(feature = "sanitize")]
        crate::sanitize::guard_slice("zip", &data);
        Ok(Tensor {
            data,
            shape: self.shape.clone(),
        })
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    /// Elementwise addition (exact shapes). See [`Tensor::add_broadcast`]
    /// for broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise division.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Self> {
        self.zip(other, |a, b| a / b)
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "add_assign",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "axpy",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    // ------------------------------------------------------------------
    // Broadcasting binary ops
    // ------------------------------------------------------------------

    /// Elementwise binary operation with NumPy-style broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes are not
    /// broadcast-compatible.
    pub fn broadcast_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape == other.shape {
            return self.zip(other, f);
        }
        let out_shape = self.shape.broadcast(&other.shape)?;
        let out_dims = out_shape.dims().to_vec();
        let rank = out_dims.len();
        let a_dims = pad_leading(self.dims(), rank);
        let b_dims = pad_leading(other.dims(), rank);
        let a_strides = broadcast_strides(&a_dims, &Shape::new(&a_dims).strides(), &out_dims);
        let b_strides = broadcast_strides(&b_dims, &Shape::new(&b_dims).strides(), &out_dims);

        let mut data = vec![0.0f32; out_shape.len()];
        let mut idx = vec![0usize; rank];
        for slot in data.iter_mut() {
            let mut ao = 0;
            let mut bo = 0;
            for d in 0..rank {
                ao += idx[d] * a_strides[d];
                bo += idx[d] * b_strides[d];
            }
            *slot = f(self.data[ao], other.data[bo]);
            // increment odometer
            for d in (0..rank).rev() {
                idx[d] += 1;
                if idx[d] < out_dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        #[cfg(feature = "sanitize")]
        crate::sanitize::guard_slice("broadcast_with", &data);
        Ok(Tensor {
            data,
            shape: out_shape,
        })
    }

    /// Broadcasting addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on incompatible shapes.
    pub fn add_broadcast(&self, other: &Tensor) -> Result<Self> {
        self.broadcast_with(other, |a, b| a + b)
    }

    /// Broadcasting multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on incompatible shapes.
    pub fn mul_broadcast(&self, other: &Tensor) -> Result<Self> {
        self.broadcast_with(other, |a, b| a * b)
    }

    // ------------------------------------------------------------------
    // Numeric hygiene
    // ------------------------------------------------------------------

    /// Whether every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Dot product treating both tensors as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "dot",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|v| v.clamp(lo, hi))
    }
}

/// Left-pads `dims` with 1s to `rank` axes.
fn pad_leading(dims: &[usize], rank: usize) -> Vec<usize> {
    let mut out = vec![1; rank];
    out[rank - dims.len()..].copy_from_slice(dims);
    out
}

/// Zeroes the stride of broadcast (length-1) axes.
fn broadcast_strides(dims: &[usize], strides: &[usize], out_dims: &[usize]) -> Vec<usize> {
    dims.iter()
        .zip(strides)
        .zip(out_dims)
        .map(|((&d, &s), &od)| if d == od { s } else { 0 })
        .collect()
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... {} elements]", &self.data[..8], self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_contents() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(Tensor::eye(2).as_slice(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn arange_spacing() {
        let t = Tensor::arange(0.0, 1.0, 0.25);
        assert_eq!(t.as_slice(), &[0.0, 0.25, 0.5, 0.75]);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.as_slice()[5], 5.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
        let mut c = Tensor::zeros(&[2]);
        assert!(c.add_assign(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let g = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn broadcast_add_row_vector() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let c = a.add_broadcast(&b).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_mul_column_vector() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 3.0], &[2, 1]).unwrap();
        let c = a.mul_broadcast(&b).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 4.0, 9.0, 12.0]);
    }

    #[test]
    fn broadcast_scalar_tensor() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let s = Tensor::scalar(10.0);
        assert_eq!(a.mul_broadcast(&s).unwrap().as_slice(), &[10.0, 20.0]);
    }

    #[test]
    fn reshape_checks_length() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.reshape(&[3, 2]).is_ok());
        assert!(a.reshape(&[4]).is_err());
        let mut b = a.clone();
        b.reshape_in_place(&[6]).unwrap();
        assert_eq!(b.rank(), 1);
    }

    #[test]
    fn norms_and_dot() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.sq_norm(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let b = Tensor::from_slice(&[1.0, 1.0]);
        assert_eq!(a.dot(&b).unwrap(), 7.0);
    }

    #[test]
    fn finite_detection() {
        let mut a = Tensor::ones(&[2]);
        assert!(a.is_finite());
        a.as_mut_slice()[0] = f32::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn clamp_bounds_values() {
        let a = Tensor::from_slice(&[-2.0, 0.5, 9.0]);
        assert_eq!(a.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn display_never_empty() {
        let t = Tensor::zeros(&[2]);
        assert!(!format!("{t}").is_empty());
        let big = Tensor::zeros(&[100]);
        assert!(format!("{big}").contains("100 elements"));
    }
}
