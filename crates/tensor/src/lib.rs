//! # cq-tensor
//!
//! N-dimensional `f32` tensor substrate for the Contrastive Quant
//! reproduction.
//!
//! This crate provides everything the neural-network stack above it needs:
//! contiguous row-major tensors, elementwise and broadcast arithmetic, a
//! blocked parallel matrix multiply, `im2col`-based convolution lowering
//! (dense and depthwise), pooling, reductions, softmax, random
//! initialisation, and a tiny binary serialisation format for checkpoints.
//!
//! Design notes:
//!
//! - Tensors are always contiguous and row-major; operations that would
//!   produce a strided view (e.g. [`Tensor::transpose`]) materialise the
//!   result instead. This keeps every kernel simple and cache-friendly,
//!   which matters more than view tricks at the model sizes used here.
//! - Matrix products go through the cache-blocked, register-tiled
//!   kernels in [`gemm`], which are bitwise-identical to the unblocked
//!   scalar loops they replaced (see that module's determinism notes).
//! - All randomness is drawn from caller-provided [`rand::Rng`] instances
//!   so experiments are reproducible bit-for-bit; state that must survive
//!   checkpoint/resume uses the serializable [`CqRng`] (bit-compatible
//!   with the vendored `StdRng`).
//! - Parallelism goes through the persistent worker pool in [`par`]
//!   (spawned once per process, parked between jobs); kernels parallelise
//!   over row bands or batch elements on a fixed chunk grid, so results
//!   are bitwise identical at any `CQ_THREADS`.
//!
//! # Example
//!
//! ```
//! use cq_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), cq_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]

mod conv;
mod error;
pub mod gemm;
mod io;
mod linalg;
pub mod par;
mod pool;
mod reduce;
mod rng;
pub mod sanitize;
mod shape;
mod tensor;

pub use conv::{
    col2im, depthwise_conv2d, depthwise_conv2d_backward, depthwise_conv2d_i8, im2col, im2col_i8,
    Conv2dSpec,
};
pub use error::TensorError;
pub use io::{read_tensor, write_tensor};
pub use rng::CqRng;

pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
