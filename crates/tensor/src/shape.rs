//! Shape arithmetic: dimensions, strides, index flattening, broadcasting.

use crate::TensorError;

/// The dimensions of a tensor.
///
/// A `Shape` is an ordered list of axis lengths. Rank-0 (scalar) shapes are
/// represented by an empty list and have one element.
///
/// # Example
///
/// ```
/// use cq_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of axis lengths.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates the rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The axis lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of the axis lengths; 1 for a
    /// scalar shape).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements (any axis of length 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Length of the given axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Flattens a multi-dimensional index into a row-major offset.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the index has the right rank and is in bounds.
    pub fn flatten_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut offset = 0;
        let mut stride = 1;
        for (i, (&d, &ix)) in self.dims.iter().zip(idx.iter()).enumerate().rev() {
            debug_assert!(
                ix < d,
                "index {ix} out of bounds for axis {i} of length {d}"
            );
            offset += ix * stride;
            stride *= d;
        }
        offset
    }

    /// Computes the broadcast shape of two operands following NumPy rules:
    /// axes are aligned from the trailing end, and each pair must be equal
    /// or one of them must be 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes are not
    /// broadcast-compatible.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape, TensorError> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0; rank];
        for (i, dim) in dims.iter_mut().enumerate() {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.dims[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.dims[i - (rank - other.rank())]
            };
            *dim = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return Err(TensorError::ShapeMismatch {
                    lhs: self.dims.clone(),
                    rhs: other.dims.clone(),
                    op: "broadcast",
                });
            };
        }
        Ok(Shape { dims })
    }

    /// Removes the given axis, reducing the rank by one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn remove_axis(&self, axis: usize) -> Result<Shape, TensorError> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Ok(Shape { dims })
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn len_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::scalar().len(), 1);
        assert!(Shape::new(&[3, 0]).is_empty());
    }

    #[test]
    fn flatten_index_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.flatten_index(&[0, 0, 0]), 0);
        assert_eq!(s.flatten_index(&[1, 2, 3]), 23);
        assert_eq!(s.flatten_index(&[1, 0, 2]), 14);
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(&[2, 1, 4]);
        let b = Shape::new(&[3, 1]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[2, 3, 4]));
        let c = Shape::new(&[2, 3]);
        let d = Shape::new(&[4, 3]);
        assert!(c.broadcast(&d).is_err());
        assert_eq!(Shape::scalar().broadcast(&c).unwrap(), c);
    }

    #[test]
    fn remove_axis_shrinks() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.remove_axis(1).unwrap(), Shape::new(&[2, 4]));
        assert!(s.remove_axis(3).is_err());
    }

    #[test]
    fn dim_bounds_checked() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.dim(1).unwrap(), 3);
        assert!(s.dim(2).is_err());
    }
}
