//! Numerics sanitizer: detect NaN / Inf / denormal values and
//! out-of-range fake-quantized values, attributed to the producing op.
//!
//! Two layers of machinery live here:
//!
//! - **Pure scans** ([`scan`], [`scan_quant`]) inspect a buffer and return
//!   the first [`Violation`], if any. They have no hidden state and are
//!   what `cq-nn`'s layer-level checks (driven by `ForwardCtx::sanitize`)
//!   call directly.
//! - **Thread-local recording** ([`enable`], [`take_violations`]): when
//!   enabled, instrumented tensor ops push every violation they produce
//!   into a per-thread buffer for later inspection. The per-op call sites
//!   inside this crate are compiled only with the `sanitize` cargo
//!   feature, so release builds pay nothing.
//!
//! A NaN/Inf is always a violation. Denormals are reported with their own
//! [`ViolationKind::Denormal`] so callers can treat them as warnings —
//! gradual underflow is legal IEEE behaviour but usually indicates scales
//! collapsing somewhere upstream.

use std::cell::RefCell;
use std::fmt;

use crate::Tensor;

/// The class of numeric defect found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ViolationKind {
    /// A not-a-number value.
    Nan,
    /// A positive or negative infinity.
    Inf,
    /// A subnormal (denormal) value — legal but usually a warning sign.
    Denormal,
    /// A fake-quantized value outside the quantizer's clipping range.
    QuantRange {
        /// Lower edge of the quantization range.
        lo: f32,
        /// Upper edge of the quantization range.
        hi: f32,
    },
}

impl ViolationKind {
    /// Whether this defect should fail a sanitized forward pass (NaN/Inf
    /// and quantizer range escapes do; denormals are warnings).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, ViolationKind::Denormal)
    }
}

/// One detected numeric defect, attributed to the op that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the producing op (e.g. `matmul`, `fake_quant`, or a layer
    /// label from `cq-nn`).
    pub op: String,
    /// Shape of the offending buffer.
    pub dims: Vec<usize>,
    /// Flat index of the first offending element.
    pub index: usize,
    /// The offending value.
    pub value: f32,
    /// What kind of defect it is.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            ViolationKind::Nan => "NaN".to_string(),
            ViolationKind::Inf => "Inf".to_string(),
            ViolationKind::Denormal => "denormal".to_string(),
            ViolationKind::QuantRange { lo, hi } => {
                format!("value outside quant range [{lo}, {hi}]")
            }
        };
        write!(
            f,
            "op `{}` produced {} (value {}) at flat index {} of shape {:?}",
            self.op, what, self.value, self.index, self.dims
        )
    }
}

/// Scans `data` for the first NaN/Inf (fatal) or, failing that, the first
/// denormal (warning). Returns `None` for a clean buffer.
pub fn scan(op: &str, dims: &[usize], data: &[f32]) -> Option<Violation> {
    let mut denormal: Option<(usize, f32)> = None;
    for (i, &v) in data.iter().enumerate() {
        if v.is_nan() {
            return Some(Violation {
                op: op.to_string(),
                dims: dims.to_vec(),
                index: i,
                value: v,
                kind: ViolationKind::Nan,
            });
        }
        if v.is_infinite() {
            return Some(Violation {
                op: op.to_string(),
                dims: dims.to_vec(),
                index: i,
                value: v,
                kind: ViolationKind::Inf,
            });
        }
        if denormal.is_none() && v.is_subnormal() {
            denormal = Some((i, v));
        }
    }
    denormal.map(|(index, value)| Violation {
        op: op.to_string(),
        dims: dims.to_vec(),
        index,
        value,
        kind: ViolationKind::Denormal,
    })
}

/// [`scan`] plus a range check for fake-quantized buffers: every finite
/// value must lie in `[lo - slack, hi + slack]`.
pub fn scan_quant(
    op: &str,
    dims: &[usize],
    data: &[f32],
    lo: f32,
    hi: f32,
    slack: f32,
) -> Option<Violation> {
    if let Some(v) = scan(op, dims, data) {
        if v.kind.is_fatal() {
            return Some(v);
        }
    }
    for (i, &v) in data.iter().enumerate() {
        if v < lo - slack || v > hi + slack {
            return Some(Violation {
                op: op.to_string(),
                dims: dims.to_vec(),
                index: i,
                value: v,
                kind: ViolationKind::QuantRange { lo, hi },
            });
        }
    }
    None
}

thread_local! {
    static STATE: RefCell<SanitizeState> = const { RefCell::new(SanitizeState { enabled: false, violations: Vec::new() }) };
}

struct SanitizeState {
    enabled: bool,
    violations: Vec<Violation>,
}

/// Turns on violation recording for the current thread.
pub fn enable() {
    STATE.with(|s| s.borrow_mut().enabled = true);
}

/// Turns off violation recording for the current thread (the buffer is
/// kept until [`take_violations`]).
pub fn disable() {
    STATE.with(|s| s.borrow_mut().enabled = false);
}

/// Whether recording is enabled on the current thread.
pub fn is_enabled() -> bool {
    STATE.with(|s| s.borrow().enabled)
}

/// Records a violation into the current thread's buffer (regardless of the
/// enabled flag — callers gate themselves).
pub fn record(v: Violation) {
    STATE.with(|s| s.borrow_mut().violations.push(v));
}

/// Drains and returns the current thread's recorded violations.
pub fn take_violations() -> Vec<Violation> {
    STATE.with(|s| std::mem::take(&mut s.borrow_mut().violations))
}

/// RAII guard enabling recording for a scope.
///
/// # Example
///
/// ```
/// let _guard = cq_tensor::sanitize::ScopeGuard::new();
/// assert!(cq_tensor::sanitize::is_enabled());
/// ```
#[derive(Debug)]
pub struct ScopeGuard(());

impl ScopeGuard {
    /// Enables recording until the guard is dropped.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        enable();
        ScopeGuard(())
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        disable();
    }
}

/// Per-op instrumentation hook: when recording is enabled, scans `t` and
/// records any violation. Call sites inside this crate are gated on the
/// `sanitize` cargo feature; this function itself always exists so
/// downstream crates can instrument their own ops without feature
/// plumbing.
#[inline]
pub fn guard(op: &str, t: &Tensor) {
    if is_enabled() {
        if let Some(v) = scan(op, t.dims(), t.as_slice()) {
            record(v);
        }
    }
}

/// Slice-level variant of [`guard`] for ops that work on raw buffers.
#[inline]
pub fn guard_slice(op: &str, data: &[f32]) {
    if is_enabled() {
        if let Some(v) = scan(op, &[data.len()], data) {
            record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_first_nan() {
        let data = [1.0, f32::NAN, f32::INFINITY];
        let v = scan("op", &[3], &data).unwrap();
        assert_eq!(v.kind, ViolationKind::Nan);
        assert_eq!(v.index, 1);
        assert!(v.to_string().contains("op `op`"));
        assert!(v.to_string().contains("NaN"));
    }

    #[test]
    fn scan_finds_inf_and_denormal() {
        let v = scan("x", &[2], &[0.0, f32::NEG_INFINITY]).unwrap();
        assert_eq!(v.kind, ViolationKind::Inf);
        assert!(v.kind.is_fatal());

        let tiny = f32::MIN_POSITIVE / 2.0;
        let v = scan("x", &[2], &[1.0, tiny]).unwrap();
        assert_eq!(v.kind, ViolationKind::Denormal);
        assert_eq!(v.index, 1);
        assert!(!v.kind.is_fatal());
    }

    #[test]
    fn scan_clean_buffer_is_none() {
        assert!(scan("x", &[3], &[0.0, -1.5, 2.0]).is_none());
    }

    #[test]
    fn scan_quant_flags_range_escape() {
        let v = scan_quant("fq", &[3], &[0.0, 0.5, 1.2], 0.0, 1.0, 0.05).unwrap();
        assert!(matches!(v.kind, ViolationKind::QuantRange { .. }));
        assert_eq!(v.index, 2);
        assert!(scan_quant("fq", &[2], &[0.0, 1.04], 0.0, 1.0, 0.05).is_none());
    }

    #[test]
    fn recording_is_scoped_and_drainable() {
        assert!(!is_enabled());
        {
            let _g = ScopeGuard::new();
            assert!(is_enabled());
            guard("bad", &Tensor::from_slice(&[f32::NAN]));
            guard_slice("also_bad", &[f32::INFINITY]);
            guard("fine", &Tensor::from_slice(&[1.0]));
        }
        assert!(!is_enabled());
        let vs = take_violations();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].op, "bad");
        assert_eq!(vs[1].op, "also_bad");
        assert!(take_violations().is_empty());
    }

    #[test]
    fn guard_is_inert_when_disabled() {
        guard("bad", &Tensor::from_slice(&[f32::NAN]));
        assert!(take_violations().is_empty());
    }
}
