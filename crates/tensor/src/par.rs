//! Minimal data-parallel helpers built on `crossbeam` scoped threads.
//!
//! The kernels in this crate parallelise over *row bands* (matmul) or
//! *batch elements* (conv, augmentation). Both patterns reduce to "split
//! `0..len` into contiguous chunks and run a closure per chunk", which is
//! what [`parallel_for`] provides.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How a raw `CQ_THREADS` value was interpreted (pure, testable without
/// touching the process environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadsSpec {
    /// Variable not set: use the machine parallelism.
    Unset,
    /// A positive thread count.
    Count(usize),
    /// Explicit `0`: rejected (a zero-thread pool is meaningless); run
    /// single-threaded after warning.
    Zero,
    /// Unparseable value: ignored (machine parallelism) after warning.
    Garbage,
}

fn parse_cq_threads(raw: Option<&str>) -> ThreadsSpec {
    match raw {
        None => ThreadsSpec::Unset,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(0) => ThreadsSpec::Zero,
            Ok(n) => ThreadsSpec::Count(n),
            Err(_) => ThreadsSpec::Garbage,
        },
    }
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Returns the number of worker threads to use.
///
/// Respects the `CQ_THREADS` environment variable when set (useful to pin
/// benchmarks to one thread), otherwise uses the machine parallelism.
/// `CQ_THREADS=0` is rejected — it warns (once, through cq-obs) and runs
/// single-threaded; an unparseable value warns and falls back to the
/// machine parallelism.
pub fn num_threads() -> usize {
    static WARNED: AtomicBool = AtomicBool::new(false);
    let raw = std::env::var("CQ_THREADS").ok();
    match parse_cq_threads(raw.as_deref()) {
        ThreadsSpec::Count(n) => n,
        ThreadsSpec::Unset => machine_parallelism(),
        ThreadsSpec::Zero => {
            if !WARNED.swap(true, Ordering::Relaxed) {
                cq_obs::warn_with(|| {
                    "CQ_THREADS=0 rejected (zero-thread pool is meaningless); using 1".to_string()
                });
            }
            1
        }
        ThreadsSpec::Garbage => {
            if !WARNED.swap(true, Ordering::Relaxed) {
                cq_obs::warn_with(|| {
                    format!(
                        "CQ_THREADS={:?} is not a thread count; using machine parallelism",
                        raw.as_deref().unwrap_or("")
                    )
                });
            }
            machine_parallelism()
        }
    }
}

/// Runs `f(start, end)` over disjoint chunks covering `0..len` in parallel.
///
/// Chunks are at least `min_chunk` long; if `len <= min_chunk` or only one
/// thread is available the closure runs inline on the caller's thread, so
/// the overhead for small work is a single comparison.
///
/// # Example
///
/// ```
/// use cq_tensor::par::parallel_for;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let total = AtomicUsize::new(0);
/// parallel_for(1000, 64, |start, end| {
///     total.fetch_add(end - start, Ordering::Relaxed);
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 1000);
/// ```
pub fn parallel_for<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = num_threads();
    if threads <= 1 || len <= min_chunk.max(1) {
        if len > 0 {
            f(0, len);
        }
        return;
    }
    let n_chunks = threads.min(len / min_chunk.max(1)).max(1);
    if n_chunks == 1 {
        f(0, len);
        return;
    }
    let chunk = len.div_ceil(n_chunks);
    crossbeam::scope(|s| {
        for c in 0..n_chunks {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            if start >= end {
                continue;
            }
            let f = &f;
            s.spawn(move |_| f(start, end));
        }
    })
    .expect("parallel_for worker panicked"); // cq-check: allow — re-raises a worker panic
}

/// Runs `f(i)` for every `i` in `0..len`, dynamically load-balanced.
///
/// Unlike [`parallel_for`], work items are claimed one at a time from an
/// atomic counter, which suits heterogeneous per-item cost (e.g. per-image
/// augmentation where some transforms are more expensive).
pub fn parallel_for_each<F>(len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads().min(len.max(1));
    if threads <= 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let counter = &counter;
            s.spawn(move |_| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                f(i);
            });
        }
    })
    .expect("parallel_for_each worker panicked"); // cq-check: allow — re-raises a worker panic
}

/// Splits `out` into disjoint mutable chunks of `chunk_len` elements and
/// runs `f(chunk_index, chunk)` on each in parallel.
///
/// This is the write-side companion of [`parallel_for_each`]: each logical
/// item owns a fixed-size slice of the output buffer (e.g. one image in a
/// batch), so no synchronisation is needed.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `chunk_len`.
pub fn parallel_chunks_mut<F>(out: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(
        out.len() % chunk_len,
        0,
        "buffer not a multiple of chunk_len"
    );
    let n = out.len() / chunk_len;
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    let base = out.as_mut_ptr() as usize;
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let counter = &counter;
            s.spawn(move |_| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: each index i is claimed exactly once, and chunks
                // [i*chunk_len, (i+1)*chunk_len) are disjoint; the scope
                // guarantees the buffer outlives every worker.
                let chunk = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut f32).add(i * chunk_len), chunk_len)
                };
                f(i, chunk);
            });
        }
    })
    .expect("parallel_chunks_mut worker panicked"); // cq-check: allow — re-raises a worker panic
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parse_cq_threads_rejects_zero_and_garbage() {
        // Pure-function tests: no env mutation, so safe under a parallel
        // test harness.
        assert_eq!(parse_cq_threads(None), ThreadsSpec::Unset);
        assert_eq!(parse_cq_threads(Some("4")), ThreadsSpec::Count(4));
        assert_eq!(parse_cq_threads(Some(" 2 ")), ThreadsSpec::Count(2));
        assert_eq!(parse_cq_threads(Some("0")), ThreadsSpec::Zero);
        assert_eq!(parse_cq_threads(Some("banana")), ThreadsSpec::Garbage);
        assert_eq!(parse_cq_threads(Some("")), ThreadsSpec::Garbage);
        assert_eq!(parse_cq_threads(Some("-3")), ThreadsSpec::Garbage);
        assert_eq!(parse_cq_threads(Some("1.5")), ThreadsSpec::Garbage);
    }

    #[test]
    fn parallel_for_covers_range_exactly() {
        let hits = AtomicUsize::new(0);
        parallel_for(10_000, 16, |s, e| {
            hits.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        parallel_for(0, 16, |_, _| panic!("must not run"));
    }

    #[test]
    fn parallel_for_each_visits_each_index_once() {
        let n = 257;
        let seen: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_each(n, |i| {
            seen[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_chunks_mut_writes_disjoint_chunks() {
        let mut buf = vec![0.0f32; 12 * 7];
        parallel_chunks_mut(&mut buf, 7, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for (i, chunk) in buf.chunks(7).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of chunk_len")]
    fn parallel_chunks_mut_rejects_ragged_buffer() {
        let mut buf = vec![0.0f32; 10];
        parallel_chunks_mut(&mut buf, 3, |_, _| {});
    }
}
