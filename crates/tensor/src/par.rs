//! Deterministic data-parallel runtime: a persistent worker pool driving a
//! fixed chunk grid.
//!
//! The kernels in this crate parallelise over *row bands* (matmul) or
//! *batch elements* (conv, augmentation). Both patterns reduce to "split
//! `0..len` into contiguous chunks and run a closure per chunk", which is
//! what [`parallel_for`] and friends provide. Two invariants distinguish
//! this runtime from a naive scoped-thread fan-out:
//!
//! 1. **Spawn once.** Worker threads are spawned lazily on the first
//!    parallel dispatch and then parked on a condvar between jobs;
//!    `CQ_THREADS` is read and parsed exactly once, at pool
//!    initialisation. A matmul call costs a notify/park round-trip, not
//!    OS thread creation ([`pool_stats`] exposes the spawn count so tests
//!    can pin this down).
//! 2. **Thread-count-independent determinism.** Work is partitioned into
//!    a [`ChunkGrid`] derived *only* from the problem size; workers claim
//!    chunks dynamically, and reduced partials (see
//!    [`parallel_map_chunks`]) are combined in chunk-index order. The
//!    grid, the per-chunk arithmetic, and the combine order are all
//!    independent of how many threads execute the chunks, so results are
//!    bitwise identical at any `CQ_THREADS` — scheduling decides only
//!    *who* computes each chunk, never *what* is computed.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// Pool telemetry (no-ops unless a cq-obs sink is installed). `pool.jobs`
// and `pool.chunks` are workload counters — dispatch count and grid sizes
// are pure functions of the problem, so they are identical at every
// `CQ_THREADS` and cq-trace's diff gate fails on a drift. `pool.busy_ns`,
// `pool.park_ns` and `pool.workers_spawned` are timing/width telemetry
// that legitimately varies with the thread count: diff reports them but
// never gates.
static C_JOBS: cq_obs::Counter = cq_obs::Counter::new("pool.jobs");
static C_CHUNKS: cq_obs::Counter = cq_obs::Counter::new("pool.chunks");
static C_BUSY_NS: cq_obs::Counter = cq_obs::Counter::new("pool.busy_ns");
static C_PARK_NS: cq_obs::Counter = cq_obs::Counter::new("pool.park_ns");
static C_SPAWNED: cq_obs::Counter = cq_obs::Counter::new("pool.workers_spawned");

/// How a raw `CQ_THREADS` value was interpreted (pure, testable without
/// touching the process environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadsSpec {
    /// Variable not set: use the machine parallelism.
    Unset,
    /// A positive thread count.
    Count(usize),
    /// Explicit `0`: rejected (a zero-thread pool is meaningless); run
    /// single-threaded after warning.
    Zero,
    /// Unparseable value: ignored (machine parallelism) after warning.
    Garbage,
}

fn parse_cq_threads(raw: Option<&str>) -> ThreadsSpec {
    match raw {
        None => ThreadsSpec::Unset,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(0) => ThreadsSpec::Zero,
            Ok(n) => ThreadsSpec::Count(n),
            Err(_) => ThreadsSpec::Garbage,
        },
    }
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Once-flags for the two warnable `CQ_THREADS` outcomes. One flag per
/// path: a single shared flag would let whichever warning fires first
/// permanently suppress the other.
#[derive(Debug)]
struct WarnOnce {
    zero: AtomicBool,
    garbage: AtomicBool,
}

impl WarnOnce {
    const fn new() -> Self {
        WarnOnce {
            zero: AtomicBool::new(false),
            garbage: AtomicBool::new(false),
        }
    }
}

/// Maps a raw `CQ_THREADS` value to a thread count, routing each
/// rejection's diagnostic (at most once per flag set) through `warn`.
/// Pure apart from the injected once-flags and hook, so tests can cover
/// both warning orderings without touching the process environment.
fn resolve_threads(raw: Option<&str>, flags: &WarnOnce, warn: &mut dyn FnMut(String)) -> usize {
    match parse_cq_threads(raw) {
        ThreadsSpec::Count(n) => n,
        ThreadsSpec::Unset => machine_parallelism(),
        ThreadsSpec::Zero => {
            if !flags.zero.swap(true, Ordering::Relaxed) {
                warn(
                    "CQ_THREADS=0 rejected (zero-thread pool is meaningless); using 1".to_string(),
                );
            }
            1
        }
        ThreadsSpec::Garbage => {
            if !flags.garbage.swap(true, Ordering::Relaxed) {
                warn(format!(
                    "CQ_THREADS={:?} is not a thread count; using machine parallelism",
                    raw.unwrap_or("")
                ));
            }
            machine_parallelism()
        }
    }
}

/// Returns the number of worker threads the pool uses (including the
/// dispatching caller, which always participates).
///
/// The `CQ_THREADS` environment variable is read and parsed **exactly
/// once** per process — at the first call, which in practice is pool
/// initialisation — and the result is cached. `CQ_THREADS=0` is rejected
/// (warns through cq-obs, runs single-threaded); an unparseable value
/// warns and falls back to the machine parallelism. Since the grid and
/// reduction order are thread-count independent, this value affects
/// wall-clock only, never results.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        static FLAGS: WarnOnce = WarnOnce::new();
        let raw = std::env::var("CQ_THREADS").ok();
        resolve_threads(raw.as_deref(), &FLAGS, &mut |m| cq_obs::warn_with(|| m))
    })
}

thread_local! {
    /// Per-caller cap on how many threads may execute this thread's
    /// dispatches; see [`with_thread_limit`].
    static THREAD_LIMIT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Runs `f` with this thread's parallel dispatches capped at `limit`
/// executing threads (caller included). Results are unaffected — the
/// chunk grid and reduction order never depend on the executor count —
/// which is exactly what the thread-count-determinism tests use this to
/// prove. Also useful to serialise a subsystem for profiling.
pub fn with_thread_limit<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_LIMIT.with(|l| l.set(self.0));
        }
    }
    let prev = THREAD_LIMIT.with(|l| l.replace(limit.max(1)));
    let _restore = Restore(prev);
    f()
}

fn current_thread_limit() -> usize {
    THREAD_LIMIT.with(|l| l.get())
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking task must not wedge the pool for the rest of the
    // process; the data under these locks stays consistent regardless.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Mutable completion state of one job.
struct JobState {
    /// Chunks fully executed (claim + run + record).
    done: usize,
    /// First captured panic payload, re-raised by the dispatching caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One parallel dispatch: a chunk-indexed task plus claim/completion
/// bookkeeping. Lives in an `Arc` so late-waking workers can inspect it
/// safely after the caller has returned.
struct Job {
    /// Type-erased pointer to the caller's task closure. Only valid while
    /// the dispatching caller is blocked in `dispatch` (it waits for
    /// `done == n_chunks` before returning, and chunks are claimed before
    /// execution, so no dereference can happen after it returns).
    task: *const (dyn Fn(usize) + Sync),
    n_chunks: usize,
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Threads that registered to execute chunks (slot 0 = the caller).
    claimers: AtomicUsize,
    /// Threads that claimed at least one chunk (telemetry; only
    /// maintained while a cq-obs sink is installed).
    active_claimers: AtomicUsize,
    /// Most chunks claimed by any single thread (telemetry; only
    /// maintained while a cq-obs sink is installed).
    max_claims: AtomicU64,
    /// Cap on `claimers` (the per-dispatch thread limit).
    max_claimers: usize,
    state: Mutex<JobState>,
    done_cv: Condvar,
}

// SAFETY: `task` crosses threads, but is only dereferenced for claimed
// chunk indices < n_chunks, all of which complete before the dispatching
// caller (which owns the closure) returns.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and executes chunks until the grid is exhausted. Called by
    /// the dispatching caller and by registered pool workers.
    fn run_claims(&self, pool: &Pool) {
        let busy_start = cq_obs::prof::enabled().then(cq_obs::prof::now_ns);
        let mut my_claims: u64 = 0;
        loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            if c >= self.n_chunks {
                break;
            }
            my_claims += 1;
            if cq_obs::enabled() {
                // Claim attribution, updated *before* the chunk completes
                // so the dispatcher (which waits on the last completion)
                // is guaranteed to observe every contribution.
                if my_claims == 1 {
                    self.active_claimers.fetch_add(1, Ordering::Relaxed);
                }
                self.max_claims.fetch_max(my_claims, Ordering::Relaxed);
            }
            // cq-allow(det-time-source): pool timing telemetry only; never feeds a computation
            let t0 = cq_obs::enabled().then(Instant::now);
            // SAFETY: c < n_chunks, so the caller is still blocked in
            // `dispatch` and the closure it owns is alive.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*self.task)(c) }));
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                pool.busy_ns.fetch_add(ns, Ordering::Relaxed);
                C_BUSY_NS.add(ns);
            }
            C_CHUNKS.add(1);
            let mut st = lock(&self.state);
            if let Err(payload) = result {
                st.panic.get_or_insert(payload);
            }
            st.done += 1;
            if st.done == self.n_chunks {
                self.done_cv.notify_all();
            }
        }
        if my_claims > 0 {
            if let Some(start) = busy_start {
                cq_obs::prof::record(
                    cq_obs::prof::POOL_BUSY,
                    cq_obs::prof::CAT_POOL,
                    start,
                    cq_obs::prof::now_ns(),
                );
            }
        }
    }
}

/// The job slot workers watch: a generation counter plus the current job.
struct JobSlot {
    seq: u64,
    job: Option<Arc<Job>>,
}

/// The process-wide persistent pool.
struct Pool {
    slot: Mutex<JobSlot>,
    wake: Condvar,
    workers_spawned: AtomicUsize,
    busy_ns: AtomicU64,
}

/// Jobs dispatched (parallel and inline), tracked outside the pool so the
/// single-threaded configuration reports too.
static JOBS: AtomicU64 = AtomicU64::new(0);
/// Chunks executed, parallel and inline.
static CHUNKS: AtomicU64 = AtomicU64::new(0);
/// Sum over completed jobs of `max chunks claimed by one thread x threads
/// that claimed`. Divided by [`CHUNKS`]'s matching delta this yields the
/// chunk-imbalance ratio (1.0 = perfectly balanced claims). Only
/// maintained while a cq-obs sink is installed.
static CLAIM_WEIGHT: AtomicU64 = AtomicU64::new(0);
/// Nanoseconds workers spent parked between jobs. Only accumulates while
/// timeline profiling is enabled (the park path reads no clock otherwise).
static PARK_NS: AtomicU64 = AtomicU64::new(0);

fn worker_loop(pool: &'static Pool) {
    let mut last_seq = 0u64;
    loop {
        let (job, park_start) = {
            let mut slot = lock(&pool.slot);
            let mut park_start: Option<u64> = None;
            loop {
                if slot.seq != last_seq {
                    last_seq = slot.seq;
                    if let Some(j) = &slot.job {
                        break (Arc::clone(j), park_start);
                    }
                }
                if park_start.is_none() && cq_obs::prof::enabled() {
                    park_start = Some(cq_obs::prof::now_ns());
                }
                slot = pool.wake.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        if let Some(start) = park_start {
            let end = cq_obs::prof::now_ns();
            PARK_NS.fetch_add(end.saturating_sub(start), Ordering::Relaxed);
            C_PARK_NS.add(end.saturating_sub(start));
            cq_obs::prof::record(cq_obs::prof::POOL_PARK, cq_obs::prof::CAT_POOL, start, end);
        }
        // Register as a claimer unless the dispatch's thread limit is
        // already saturated (slot 0 belongs to the dispatching caller).
        if job.claimers.fetch_add(1, Ordering::Relaxed) < job.max_claimers {
            job.run_claims(pool);
        }
        // Workers park indefinitely between jobs, so the job boundary is
        // their one reliable point to hand staged timeline intervals to
        // the sink (a no-op unless profiling is on).
        cq_obs::prof::drain_thread();
    }
}

/// The one pool per process; `None` once initialised means the
/// single-threaded configuration (no workers are ever spawned).
static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();

/// Lazily initialises the pool, spawning `num_threads() - 1` parked
/// workers exactly once per process.
fn pool() -> Option<&'static Pool> {
    *POOL.get_or_init(|| {
        let threads = num_threads();
        if threads <= 1 {
            return None;
        }
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            slot: Mutex::new(JobSlot { seq: 0, job: None }),
            wake: Condvar::new(),
            workers_spawned: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
        }));
        let mut spawned = 0usize;
        for i in 0..threads - 1 {
            let ok = std::thread::Builder::new()
                .name(format!("cq-worker-{i}"))
                .spawn(move || worker_loop(pool))
                .is_ok();
            if ok {
                spawned += 1;
            }
        }
        pool.workers_spawned.store(spawned, Ordering::Release);
        C_SPAWNED.add(spawned as u64);
        Some(pool)
    })
}

/// Point-in-time pool telemetry; see [`pool_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned so far — 0 before the first parallel
    /// dispatch or in the single-threaded configuration, and constant
    /// afterwards (the pool spawns exactly once per process).
    pub workers_spawned: usize,
    /// Parallel + inline dispatches so far.
    pub jobs: u64,
    /// Chunks executed so far (each grid chunk counts once).
    pub chunks: u64,
    /// Nanoseconds of chunk execution on the pool path. Only accumulates
    /// while a cq-obs sink is installed (timing reads are gated to keep
    /// the disabled hot path free of clock calls).
    pub busy_ns: u64,
    /// Nanoseconds workers spent parked between jobs. Only accumulates
    /// while timeline profiling (`CQ_PROF`) is enabled.
    pub park_ns: u64,
    /// Sum over dispatches of `max chunks claimed by one thread x threads
    /// that claimed`: a delta of this divided by the matching delta of
    /// `chunks` is the chunk-imbalance ratio (>= 1.0; 1.0 = perfectly
    /// balanced). Only accumulates while a cq-obs sink is installed.
    pub claim_weight: u64,
}

impl PoolStats {
    /// Pool utilization over the window between `earlier` and `self`:
    /// busy nanoseconds per wall nanosecond per executor (`width` =
    /// workers + dispatching caller), in `(0, 1]` when the pool ran.
    /// `None` when the window is empty or nothing was dispatched.
    pub fn utilization_since(
        &self,
        earlier: &PoolStats,
        wall_ns: u64,
        width: usize,
    ) -> Option<f64> {
        let busy = self.busy_ns.checked_sub(earlier.busy_ns)?;
        if wall_ns == 0 || width == 0 || self.jobs == earlier.jobs {
            return None;
        }
        Some((busy as f64 / (wall_ns as f64 * width as f64)).min(1.0))
    }

    /// Chunk-imbalance ratio over the window between `earlier` and
    /// `self`: mean over the window's jobs of `max claims by one thread /
    /// ideal claims per thread`. 1.0 = perfectly balanced; `None` when no
    /// chunks ran in the window.
    pub fn imbalance_since(&self, earlier: &PoolStats) -> Option<f64> {
        let weight = self.claim_weight.checked_sub(earlier.claim_weight)?;
        let chunks = self.chunks.checked_sub(earlier.chunks)?;
        if chunks == 0 || weight == 0 {
            return None;
        }
        Some(weight as f64 / chunks as f64)
    }
}

/// Snapshot of the pool's counters. Does not initialise the pool.
pub fn pool_stats() -> PoolStats {
    let (workers_spawned, busy_ns) = match POOL.get().copied().flatten() {
        Some(p) => (
            p.workers_spawned.load(Ordering::Acquire),
            p.busy_ns.load(Ordering::Relaxed),
        ),
        None => (0, 0),
    };
    PoolStats {
        workers_spawned,
        jobs: JOBS.load(Ordering::Relaxed),
        chunks: CHUNKS.load(Ordering::Relaxed),
        busy_ns,
        park_ns: PARK_NS.load(Ordering::Relaxed),
        claim_weight: CLAIM_WEIGHT.load(Ordering::Relaxed),
    }
}

/// Core dispatch: runs `task(c)` for every chunk index `c in 0..n_chunks`,
/// each exactly once. Uses the pool when it helps; otherwise runs inline
/// in index order. Panics from any chunk are re-raised here.
fn dispatch<F>(n_chunks: usize, task: F)
where
    F: Fn(usize) + Sync,
{
    if n_chunks == 0 {
        return;
    }
    JOBS.fetch_add(1, Ordering::Relaxed);
    C_JOBS.add(1);
    let limit = current_thread_limit();
    let pool = if n_chunks > 1 && limit > 1 {
        pool()
    } else {
        None
    };
    let Some(pool) = pool else {
        CHUNKS.fetch_add(n_chunks as u64, Ordering::Relaxed);
        // Counted here as well as on the pool path so `pool.chunks` is a
        // pure workload counter (identical at every thread count) and the
        // trace diff gate can hold it fixed across CQ_THREADS.
        C_CHUNKS.add(n_chunks as u64);
        if cq_obs::enabled() {
            // One thread claimed everything: by definition balanced
            // (weight = chunks x 1), keeping the global ratio consistent
            // across serial and parallel dispatches.
            CLAIM_WEIGHT.fetch_add(n_chunks as u64, Ordering::Relaxed);
        }
        for c in 0..n_chunks {
            task(c);
        }
        return;
    };
    let job = Arc::new(Job {
        // Erase the closure's lifetime for storage in the shared Job; the
        // safety argument lives on the `task` field and `run_claims`.
        task: unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                &task as &(dyn Fn(usize) + Sync) as *const (dyn Fn(usize) + Sync + '_),
            )
        },
        n_chunks,
        next: AtomicUsize::new(0),
        claimers: AtomicUsize::new(1),
        active_claimers: AtomicUsize::new(0),
        max_claims: AtomicU64::new(0),
        max_claimers: limit.min(pool.workers_spawned.load(Ordering::Acquire) + 1),
        state: Mutex::new(JobState {
            done: 0,
            panic: None,
        }),
        done_cv: Condvar::new(),
    });
    let seq = {
        let mut slot = lock(&pool.slot);
        slot.seq += 1;
        slot.job = Some(Arc::clone(&job));
        pool.wake.notify_all();
        slot.seq
    };
    CHUNKS.fetch_add(n_chunks as u64, Ordering::Relaxed);
    // The caller is claimer 0: it always participates.
    job.run_claims(pool);
    let payload = {
        let mut st = lock(&job.state);
        while st.done < job.n_chunks {
            st = job.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.panic.take()
    };
    {
        let mut slot = lock(&pool.slot);
        if slot.seq == seq {
            slot.job = None; // don't keep the dead task pointer reachable
        }
    }
    if cq_obs::enabled() {
        // Every claim updated these counters before its completion was
        // recorded, and we waited for the last completion under the job
        // mutex, so both reads are complete for this job.
        let active = job.active_claimers.load(Ordering::Relaxed).max(1) as u64;
        let max_claims = job.max_claims.load(Ordering::Relaxed);
        CLAIM_WEIGHT.fetch_add(max_claims.saturating_mul(active), Ordering::Relaxed);
    }
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

/// Default cap on chunks per job: enough for dynamic load balancing on
/// any plausible machine, small enough that claim traffic is negligible.
/// A constant, so grids never depend on the executing thread count.
const DEFAULT_MAX_CHUNKS: usize = 256;

/// A fixed partition of `0..len` into contiguous chunks, derived **only**
/// from the problem size — never from the thread count. Equal problem
/// sizes produce equal grids on every machine and at every `CQ_THREADS`,
/// which is the foundation of the runtime's determinism: reductions that
/// combine per-chunk partials in index order are reproducible wherever
/// and however the chunks execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkGrid {
    len: usize,
    chunk: usize,
    n_chunks: usize,
}

impl ChunkGrid {
    /// Grid over `0..len` with chunks of at least `min_chunk` elements
    /// and at most [`DEFAULT_MAX_CHUNKS`] chunks.
    pub fn new(len: usize, min_chunk: usize) -> Self {
        Self::with_max_chunks(len, min_chunk, DEFAULT_MAX_CHUNKS)
    }

    /// Grid over `0..len` with chunks of at least `min_chunk` elements
    /// and at most `max_chunks` chunks. Callers that materialise one
    /// reduction partial per chunk use `max_chunks` to bound that memory.
    pub fn with_max_chunks(len: usize, min_chunk: usize, max_chunks: usize) -> Self {
        let target = (len / min_chunk.max(1)).clamp(1, max_chunks.max(1));
        let chunk = len.div_ceil(target).max(1);
        let n_chunks = len.div_ceil(chunk).max(1);
        ChunkGrid {
            len,
            chunk,
            n_chunks,
        }
    }

    /// Number of chunks (≥ 1; a zero-length grid has one empty chunk).
    pub fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    /// Total length covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid covers an empty range.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Half-open element range of chunk `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_chunks()`.
    pub fn range(&self, c: usize) -> (usize, usize) {
        assert!(c < self.n_chunks, "chunk index out of range");
        (c * self.chunk, ((c + 1) * self.chunk).min(self.len))
    }
}

/// Runs `f(start, end)` over the disjoint chunks of a [`ChunkGrid`]
/// covering `0..len` in parallel.
///
/// Chunks are at least `min_chunk` long; if the grid degenerates to one
/// chunk or only one thread is available the closure runs inline on the
/// caller's thread.
///
/// # Example
///
/// ```
/// use cq_tensor::par::parallel_for;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let total = AtomicUsize::new(0);
/// parallel_for(1000, 64, |start, end| {
///     total.fetch_add(end - start, Ordering::Relaxed);
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 1000);
/// ```
pub fn parallel_for<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let grid = ChunkGrid::new(len, min_chunk);
    parallel_for_chunks(grid, |_, start, end| f(start, end));
}

/// Runs `f(chunk_index, start, end)` over every chunk of `grid` in
/// parallel. The chunk index lets callers attribute per-chunk state
/// (scratch buffers, reduction partials) deterministically.
pub fn parallel_for_chunks<F>(grid: ChunkGrid, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    if grid.is_empty() {
        return;
    }
    dispatch(grid.n_chunks(), |c| {
        let (start, end) = grid.range(c);
        f(c, start, end);
    });
}

/// Maps every chunk of `grid` to a value and returns the values in
/// **chunk-index order** — the deterministic-reduction primitive. Each
/// chunk gets a fresh accumulator from `init`; `f(chunk_index, start,
/// end, &mut acc)` fills it. Combining the returned partials left to
/// right reproduces the same result at any thread count, because the
/// grid (and therefore each partial) never depends on the executor
/// count.
pub fn parallel_map_chunks<T, I, F>(grid: ChunkGrid, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(usize, usize, usize, &mut T) + Sync,
{
    let n = grid.n_chunks();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let base = SendPtr(out.as_mut_ptr());
        dispatch(n, |c| {
            let mut acc = init();
            let (start, end) = grid.range(c);
            f(c, start, end, &mut acc);
            // SAFETY: each chunk index is claimed exactly once, so slot
            // `c` is written by exactly one thread; `out` outlives the
            // dispatch, which blocks until every chunk completes.
            unsafe { *base.get().add(c) = Some(acc) };
        });
    }
    out.into_iter()
        .map(|v| v.expect("dispatch ran every chunk")) // cq-check: allow — dispatch guarantees each chunk executed
        .collect()
}

/// Runs `f(i)` for every `i` in `0..len`, dynamically load-balanced.
///
/// Unlike [`parallel_for`], work items are claimed one at a time, which
/// suits heterogeneous per-item cost (e.g. per-image augmentation where
/// some transforms are more expensive).
pub fn parallel_for_each<F>(len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    dispatch(len, f);
}

/// Splits `out` into disjoint mutable chunks of `chunk_len` elements and
/// runs `f(chunk_index, chunk)` on each in parallel.
///
/// This is the write-side companion of [`parallel_for_each`]: each logical
/// item owns a fixed-size slice of the output buffer (e.g. one image in a
/// batch), so no synchronisation is needed.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `chunk_len`.
pub fn parallel_chunks_mut<F>(out: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(
        out.len() % chunk_len,
        0,
        "buffer not a multiple of chunk_len"
    );
    let n = out.len() / chunk_len;
    let base = SendPtr(out.as_mut_ptr());
    dispatch(n, |i| {
        // SAFETY: each index i is claimed exactly once, and chunks
        // [i*chunk_len, (i+1)*chunk_len) are disjoint; the dispatch
        // blocks until every chunk completes, so the buffer outlives
        // every worker access.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(i * chunk_len), chunk_len) };
        f(i, chunk);
    });
}

/// Two-buffer variant of [`parallel_chunks_mut`]: splits `a` and `b` into
/// the same number of disjoint chunks (`chunk_a` / `chunk_b` elements
/// each) and runs `f(i, chunk_a, chunk_b)` per index. Built for producers
/// that fill paired outputs per item — e.g. the two augmented views of
/// one image — without a lock around the whole buffer.
///
/// # Panics
///
/// Panics if either buffer is not a multiple of its chunk length or the
/// two buffers disagree on the number of chunks.
pub fn parallel_chunks_mut_pair<F>(
    a: &mut [f32],
    b: &mut [f32],
    chunk_a: usize,
    chunk_b: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    assert!(chunk_a > 0 && chunk_b > 0, "chunk lengths must be positive");
    assert_eq!(a.len() % chunk_a, 0, "buffer A not a multiple of chunk_a");
    assert_eq!(b.len() % chunk_b, 0, "buffer B not a multiple of chunk_b");
    let n = a.len() / chunk_a;
    assert_eq!(
        n,
        b.len() / chunk_b,
        "buffers disagree on the number of chunks"
    );
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    dispatch(n, |i| {
        // SAFETY: per-index chunks are disjoint in each buffer and every
        // index is claimed exactly once; both buffers outlive the
        // dispatch, which blocks until all chunks complete.
        let ca = unsafe { std::slice::from_raw_parts_mut(pa.get().add(i * chunk_a), chunk_a) };
        let cb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(i * chunk_b), chunk_b) };
        f(i, ca, cb);
    });
}

/// Raw pointer wrapper asserting cross-thread transfer is safe because the
/// caller guarantees disjoint writes.
struct SendPtr<T>(*mut T);
// SAFETY: used only with disjoint index ranges per thread.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field reads) so closures capture the
    /// `Sync` wrapper, not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parse_cq_threads_rejects_zero_and_garbage() {
        // Pure-function tests: no env mutation, so safe under a parallel
        // test harness.
        assert_eq!(parse_cq_threads(None), ThreadsSpec::Unset);
        assert_eq!(parse_cq_threads(Some("4")), ThreadsSpec::Count(4));
        assert_eq!(parse_cq_threads(Some(" 2 ")), ThreadsSpec::Count(2));
        assert_eq!(parse_cq_threads(Some("0")), ThreadsSpec::Zero);
        assert_eq!(parse_cq_threads(Some("banana")), ThreadsSpec::Garbage);
        assert_eq!(parse_cq_threads(Some("")), ThreadsSpec::Garbage);
        assert_eq!(parse_cq_threads(Some("-3")), ThreadsSpec::Garbage);
        assert_eq!(parse_cq_threads(Some("1.5")), ThreadsSpec::Garbage);
    }

    #[test]
    fn zero_then_garbage_both_warn_once_each() {
        // Regression: a single shared once-flag let whichever path fired
        // first suppress the other warning forever. Each ordering must
        // produce both diagnostics, and repeats must stay silent.
        for orderings in [[Some("0"), Some("junk")], [Some("junk"), Some("0")]] {
            let flags = WarnOnce::new();
            let mut messages: Vec<String> = Vec::new();
            for raw in orderings {
                resolve_threads(raw, &flags, &mut |m| messages.push(m));
            }
            assert_eq!(messages.len(), 2, "{orderings:?}: {messages:?}");
            assert!(
                messages.iter().any(|m| m.contains("CQ_THREADS=0")),
                "{messages:?}"
            );
            assert!(
                messages.iter().any(|m| m.contains("not a thread count")),
                "{messages:?}"
            );
            // Second round: both flags latched, no further warnings.
            for raw in orderings {
                resolve_threads(raw, &flags, &mut |m| messages.push(m));
            }
            assert_eq!(messages.len(), 2, "warnings repeated: {messages:?}");
        }
    }

    #[test]
    fn resolve_threads_values() {
        let flags = WarnOnce::new();
        let silent = &mut |m: String| panic!("unexpected warning: {m}");
        assert_eq!(resolve_threads(Some("3"), &flags, silent), 3);
        assert_eq!(resolve_threads(None, &flags, silent), machine_parallelism());
        let flags = WarnOnce::new();
        assert_eq!(resolve_threads(Some("0"), &flags, &mut |_| {}), 1);
        assert_eq!(
            resolve_threads(Some("x"), &flags, &mut |_| {}),
            machine_parallelism()
        );
    }

    #[test]
    fn chunk_grid_covers_range_without_gaps() {
        for len in [0usize, 1, 7, 63, 64, 65, 1000, 4096, 100_000] {
            for min_chunk in [1usize, 8, 64, 1024] {
                let g = ChunkGrid::new(len, min_chunk);
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for c in 0..g.n_chunks() {
                    let (s, e) = g.range(c);
                    assert_eq!(s, prev_end, "gap at chunk {c} (len {len})");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len, "len {len} min {min_chunk}");
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn chunk_grid_is_thread_count_independent() {
        // The grid is a pure function of (len, min_chunk, max_chunks):
        // nothing about it may consult num_threads() or the machine.
        let a = ChunkGrid::new(1234, 8);
        let b = ChunkGrid::new(1234, 8);
        assert_eq!(a, b);
        // Chunks respect the minimum size and the grid is non-trivial.
        let (s0, e0) = a.range(0);
        assert!(e0 - s0 >= 8);
        assert!(a.n_chunks() > 1 && a.n_chunks() <= 1234 / 8);
        let capped = ChunkGrid::with_max_chunks(1 << 20, 1, 16);
        assert_eq!(capped.n_chunks(), 16);
    }

    #[test]
    fn parallel_for_covers_range_exactly() {
        let hits = AtomicUsize::new(0);
        parallel_for(10_000, 16, |s, e| {
            hits.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        parallel_for(0, 16, |_, _| panic!("must not run"));
    }

    #[test]
    fn parallel_for_each_visits_each_index_once() {
        let n = 257;
        let seen: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_each(n, |i| {
            seen[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_map_chunks_returns_partials_in_chunk_order() {
        let grid = ChunkGrid::with_max_chunks(1000, 1, 13);
        let partials = parallel_map_chunks(
            grid,
            || 0usize,
            |c, s, e, acc| {
                assert_eq!((s, e), grid.range(c));
                *acc = (s..e).sum::<usize>();
            },
        );
        assert_eq!(partials.len(), grid.n_chunks());
        let total: usize = partials.iter().sum();
        assert_eq!(total, (0..1000).sum::<usize>());
        // Partials must arrive in chunk order, not completion order.
        let direct: Vec<usize> = (0..grid.n_chunks())
            .map(|c| {
                let (s, e) = grid.range(c);
                (s..e).sum()
            })
            .collect();
        assert_eq!(partials, direct);
    }

    #[test]
    fn parallel_chunks_mut_writes_disjoint_chunks() {
        let mut buf = vec![0.0f32; 12 * 7];
        parallel_chunks_mut(&mut buf, 7, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for (i, chunk) in buf.chunks(7).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    fn parallel_chunks_mut_pair_fills_both_buffers() {
        let mut a = vec![0.0f32; 6 * 4];
        let mut b = vec![0.0f32; 6 * 2];
        parallel_chunks_mut_pair(&mut a, &mut b, 4, 2, |i, ca, cb| {
            ca.fill(i as f32);
            cb.fill(-(i as f32));
        });
        for (i, chunk) in a.chunks(4).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32));
        }
        for (i, chunk) in b.chunks(2).enumerate() {
            assert!(chunk.iter().all(|&v| v == -(i as f32)));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of chunk_len")]
    fn parallel_chunks_mut_rejects_ragged_buffer() {
        let mut buf = vec![0.0f32; 10];
        parallel_chunks_mut(&mut buf, 3, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "chunk 3 exploded")]
    fn worker_panic_propagates_to_caller() {
        parallel_for_each(8, |i| {
            if i == 3 {
                panic!("chunk 3 exploded");
            }
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let caught = std::panic::catch_unwind(|| {
            parallel_for_each(8, |i| {
                if i == 2 {
                    panic!("boom");
                }
            })
        });
        assert!(caught.is_err());
        // The pool must keep dispatching normally afterwards.
        let hits = AtomicUsize::new(0);
        parallel_for_each(64, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn pool_spawns_at_most_once_across_dispatches() {
        // Warm the pool, then check repeated dispatches never spawn again.
        parallel_for(10_000, 8, |_, _| {});
        let first = pool_stats();
        for _ in 0..32 {
            parallel_for(10_000, 8, |_, _| {});
        }
        let after = pool_stats();
        assert_eq!(
            first.workers_spawned, after.workers_spawned,
            "pool must spawn exactly once per process"
        );
        assert!(after.jobs >= first.jobs + 32);
        assert!(after.chunks > first.chunks);
    }

    #[test]
    fn thread_limit_does_not_change_results() {
        // Fill a buffer through every public entry point at several
        // thread limits; all runs must agree bitwise.
        let run = |limit: usize| -> Vec<f32> {
            with_thread_limit(limit, || {
                let mut buf = vec![0.0f32; 512];
                parallel_chunks_mut(&mut buf, 8, |i, chunk| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 31 + j) as f32 * 0.25;
                    }
                });
                let grid = ChunkGrid::new(512, 16);
                let partials = parallel_map_chunks(
                    grid,
                    || 0.0f32,
                    |_, s, e, acc| {
                        for v in &buf[s..e] {
                            *acc += v;
                        }
                    },
                );
                buf.extend(partials);
                buf
            })
        };
        let base = run(1);
        for limit in [2, 5, 8] {
            assert_eq!(run(limit), base, "limit {limit} drifted");
        }
    }
}
