//! Error type shared by all tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
///
/// Every variant carries enough context to diagnose the failing call
/// without a debugger: offending shapes, axes, or element counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (exactly or under
    /// broadcasting rules) did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The raw buffer length does not match the number of elements implied
    /// by the requested shape.
    LengthMismatch {
        /// Number of elements provided.
        len: usize,
        /// Shape requested.
        shape: Vec<usize>,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// The tensor did not have the rank an operation requires
    /// (e.g. `matmul` requires rank 2).
    RankMismatch {
        /// Rank the operation expected.
        expected: usize,
        /// Rank it received.
        got: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A convolution/pooling geometry was invalid (e.g. kernel larger than
    /// the padded input).
    InvalidGeometry(String),
    /// Binary (de)serialisation failed.
    Io(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::LengthMismatch { len, shape } => {
                write!(
                    f,
                    "buffer of length {len} cannot be viewed as shape {shape:?}"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::RankMismatch { expected, got, op } => {
                write!(f, "`{op}` expects rank-{expected} tensors, got rank {got}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::Io(msg) => write!(f, "tensor i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4],
            op: "add",
        };
        let msg = e.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: TensorError = io.into();
        assert!(matches!(e, TensorError::Io(_)));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
