//! Pool profiling attribution: with `CQ_PROF` on, dispatches must emit
//! per-worker busy/park timeline intervals, the claim-weight accounting
//! must yield a sane imbalance ratio, and the per-thread interval streams
//! must be well-formed (no overlap on one worker). One `#[test]` only:
//! the global sink and the profiling gate are process state.

use cq_obs::sink::MemorySink;
use cq_obs::{prof, Event};
use cq_tensor::par::{num_threads, parallel_for_each, pool_stats};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A few tens of microseconds of un-elidable work per item, so several
/// workers get to claim chunks of the same job.
fn busy_work(i: usize) -> f32 {
    let mut acc = i as f32;
    for k in 0..20_000u32 {
        acc = std::hint::black_box(acc * 1.000_001 + k as f32 * 1e-6);
    }
    acc
}

#[test]
fn profiled_pool_attributes_busy_park_and_claims() {
    if num_threads() < 2 {
        eprintln!("skipping: single-threaded configuration");
        return;
    }
    let sink = Arc::new(MemorySink::new());
    cq_obs::install(sink.clone());
    prof::set_enabled(true);

    let before = pool_stats();
    // cq-allow(det-time-source): test wall-clock for utilization telemetry
    let t0 = Instant::now();
    // Repeated jobs: the first wakes the workers, later ones give every
    // worker a park interval between jobs. Workers drain their staged
    // intervals at job boundaries, so poll until the attribution shows
    // up (draining is asynchronous with the dispatcher's return).
    // cq-allow(det-time-source): test deadline only
    let deadline = Instant::now() + Duration::from_secs(30);
    let (busy_tids, parks) = loop {
        for round in 0..4 {
            parallel_for_each(64, |i| {
                std::hint::black_box(busy_work(i + round));
            });
        }
        std::thread::sleep(Duration::from_millis(20));
        let events = sink.snapshot();
        let busy_tids: Vec<u64> = {
            let mut tids: Vec<u64> = events
                .iter()
                .filter_map(|e| match e {
                    Event::Timeline {
                        name: "pool.busy",
                        tid,
                        ..
                    } => Some(*tid),
                    _ => None,
                })
                .collect();
            tids.sort_unstable();
            tids.dedup();
            tids
        };
        let parks = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Timeline {
                        name: "pool.park",
                        ..
                    }
                )
            })
            .count();
        if busy_tids.len() >= 2 && parks >= 1 {
            break (busy_tids, parks);
        }
        assert!(
            Instant::now() < deadline,
            "no multi-thread attribution after 30s: busy tids {busy_tids:?}, {parks} parks"
        );
    };
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let after = pool_stats();
    prof::set_enabled(false);
    cq_obs::uninstall();
    cq_obs::reset();

    assert!(
        busy_tids.len() >= 2,
        "busy intervals on >= 2 threads: {busy_tids:?}"
    );
    assert!(parks >= 1, "at least one park interval");

    // Counter-side attribution: busy/park totals moved, claim weight
    // yields an imbalance ratio >= 1, utilization lands in (0, 1].
    assert!(after.busy_ns > before.busy_ns, "busy_ns accumulated");
    assert!(after.park_ns >= before.park_ns);
    let imbalance = after
        .imbalance_since(&before)
        .expect("chunks ran in the window");
    assert!(
        imbalance >= 1.0,
        "max/ideal claims ratio is >= 1 by construction, got {imbalance}"
    );
    let width = after.workers_spawned + 1;
    let util = after
        .utilization_since(&before, wall_ns, width)
        .expect("jobs ran in the window");
    assert!(
        util > 0.0 && util <= 1.0,
        "utilization in (0,1], got {util}"
    );

    // Per-thread well-formedness: pool intervals on one worker must not
    // overlap (a worker is busy or parked, never both).
    let mut lanes: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for ev in sink.take() {
        if let Event::Timeline {
            cat: "pool",
            tid,
            start_ns,
            dur_ns,
            ..
        } = ev
        {
            lanes
                .entry(tid)
                .or_default()
                .push((start_ns, start_ns + dur_ns));
        }
    }
    for (tid, mut iv) in lanes {
        iv.sort_unstable();
        for w in iv.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "overlapping pool intervals on thread {tid}: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}
