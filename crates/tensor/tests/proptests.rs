//! Property-based tests of the tensor substrate's algebraic invariants.

use cq_tensor::{avg_pool2d, global_avg_pool, im2col, max_pool2d, Conv2dSpec, Shape, Tensor};
use proptest::prelude::*;

fn vecf(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_is_neutral(data in vecf(20)) {
        let a = Tensor::from_vec(data, &[4, 5]).unwrap();
        let out = a.matmul(&Tensor::eye(5)).unwrap();
        for (x, y) in out.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn matmul_transpose_identity(a in vecf(12), b in vecf(12)) {
        // (A B)ᵀ == Bᵀ Aᵀ
        let a = Tensor::from_vec(a, &[3, 4]).unwrap();
        let b = Tensor::from_vec(b, &[4, 3]).unwrap();
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn add_is_commutative_and_scale_distributes(a in vecf(16), b in vecf(16), s in -3.0f32..3.0) {
        let a = Tensor::from_vec(a, &[4, 4]).unwrap();
        let b = Tensor::from_vec(b, &[4, 4]).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        let lhs = a.add(&b).unwrap().scale(s);
        let rhs = a.scale(s).add(&b.scale(s)).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn broadcast_matches_explicit_tile(row in vecf(4), mat in vecf(12)) {
        let m = Tensor::from_vec(mat.clone(), &[3, 4]).unwrap();
        let r = Tensor::from_vec(row.clone(), &[4]).unwrap();
        let b = m.add_broadcast(&r).unwrap();
        for i in 0..3 {
            for j in 0..4 {
                prop_assert_eq!(b.as_slice()[i * 4 + j], mat[i * 4 + j] + row[j]);
            }
        }
    }

    #[test]
    fn sum_axis_partitions_total(data in vecf(24)) {
        let t = Tensor::from_vec(data, &[4, 6]).unwrap();
        let total = t.sum();
        prop_assert!((t.sum_axis(0).unwrap().sum() - total).abs() < 1e-2);
        prop_assert!((t.sum_axis(1).unwrap().sum() - total).abs() < 1e-2);
    }

    #[test]
    fn global_avg_pool_equals_mean(data in vecf(2 * 3 * 4 * 4)) {
        let t = Tensor::from_vec(data, &[2, 3, 4, 4]).unwrap();
        let g = global_avg_pool(&t).unwrap();
        for n in 0..2 {
            for c in 0..3 {
                let mean: f32 =
                    t.as_slice()[(n * 3 + c) * 16..(n * 3 + c + 1) * 16].iter().sum::<f32>() / 16.0;
                prop_assert!((g.as_slice()[n * 3 + c] - mean).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn max_pool_dominates_avg_pool(data in vecf(2 * 4 * 4)) {
        let t = Tensor::from_vec(data, &[1, 2, 4, 4]).unwrap();
        let spec = Conv2dSpec::new(2, 2, 0);
        let (mx, _) = max_pool2d(&t, &spec).unwrap();
        let av = avg_pool2d(&t, &spec).unwrap();
        for (m, a) in mx.as_slice().iter().zip(av.as_slice()) {
            prop_assert!(m >= a);
        }
    }

    #[test]
    fn im2col_columns_contain_only_input_values_or_zero(data in vecf(2 * 5 * 5)) {
        let spec = Conv2dSpec::new(3, 1, 1);
        let (oh, ow) = spec.out_hw(5, 5).unwrap();
        let mut cols = vec![0.0f32; 2 * 9 * oh * ow];
        im2col(&data, 2, 5, 5, &spec, &mut cols);
        for &v in &cols {
            prop_assert!(v == 0.0 || data.contains(&v));
        }
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm(data in vecf(20)) {
        let t = Tensor::from_vec(data, &[4, 5]).unwrap();
        let n = t.l2_normalize_rows(1e-9).unwrap();
        for i in 0..4 {
            let norm = n.row(i).unwrap().norm();
            // rows with tiny norm are left unchanged
            prop_assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn shape_broadcast_is_associative_when_defined(
        a in 1usize..3, b in 1usize..3, c in 1usize..3,
    ) {
        let s1 = Shape::new(&[a, 1]);
        let s2 = Shape::new(&[1, b]);
        let s3 = Shape::new(&[c, 1]);
        if let (Ok(l), Ok(r)) = (
            s1.broadcast(&s2).and_then(|s| s.broadcast(&s3)),
            s2.broadcast(&s3).and_then(|s| s1.broadcast(&s)),
        ) {
            prop_assert_eq!(l, r);
        }
    }

    #[test]
    fn broadcast_is_commutative_for_any_ranks(
        a in proptest::collection::vec(1usize..5, 0..4usize),
        b in proptest::collection::vec(1usize..5, 0..4usize),
    ) {
        // Ranks 0..=3 with axes 1..=4: exercises rank-0 scalars, size-1
        // axes and mismatched ranks in one sweep.
        let (sa, sb) = (Shape::new(&a), Shape::new(&b));
        match (sa.broadcast(&sb), sb.broadcast(&sa)) {
            (Ok(l), Ok(r)) => prop_assert_eq!(l, r),
            (Err(_), Err(_)) => {}
            (l, r) => prop_assert!(false, "asymmetric broadcast: {:?} vs {:?}", l, r),
        }
    }

    #[test]
    fn broadcast_with_scalar_and_self_is_identity(
        dims in proptest::collection::vec(1usize..5, 0..4usize),
    ) {
        let s = Shape::new(&dims);
        prop_assert_eq!(s.broadcast(&Shape::scalar()).unwrap(), s.clone());
        prop_assert_eq!(Shape::scalar().broadcast(&s).unwrap(), s.clone());
        prop_assert_eq!(s.broadcast(&s).unwrap(), s);
    }

    #[test]
    fn broadcast_aligns_from_trailing_axes(
        dims in proptest::collection::vec(1usize..5, 1..4usize),
        extra in 1usize..5,
    ) {
        // A rank-(n+1) shape with a leading axis broadcasts against the
        // rank-n suffix; the suffix axes must survive unchanged.
        let mut longer = vec![extra];
        longer.extend_from_slice(&dims);
        let out = Shape::new(&longer).broadcast(&Shape::new(&dims)).unwrap();
        prop_assert_eq!(out.dims(), &longer[..]);
    }

    #[test]
    fn size_one_axis_stretches_to_any_extent(
        dims in proptest::collection::vec(1usize..5, 1..4usize),
        axis_seed in 0usize..8,
        stretch in 1usize..6,
    ) {
        let axis = axis_seed % dims.len();
        let mut pinched = dims.clone();
        pinched[axis] = 1;
        let mut stretched = dims.clone();
        stretched[axis] = stretch;
        let out = Shape::new(&pinched).broadcast(&Shape::new(&stretched)).unwrap();
        prop_assert_eq!(out.dims(), &stretched[..]);
    }

    #[test]
    fn incompatible_axes_are_rejected(
        dims in proptest::collection::vec(2usize..5, 1..4usize),
        axis_seed in 0usize..8,
    ) {
        // Two shapes differing (both > 1) on one axis can never broadcast.
        let axis = axis_seed % dims.len();
        let mut other = dims.clone();
        other[axis] += 1;
        prop_assert!(Shape::new(&dims).broadcast(&Shape::new(&other)).is_err());
    }

    #[test]
    fn strides_are_suffix_products_and_index_bijective(
        dims in proptest::collection::vec(1usize..5, 0..4usize),
    ) {
        let s = Shape::new(&dims);
        let strides = s.strides();
        prop_assert_eq!(strides.len(), dims.len());
        for (i, &st) in strides.iter().enumerate() {
            prop_assert_eq!(st, dims[i + 1..].iter().product::<usize>());
        }
        // flatten_index enumerates 0..len exactly once over the index grid.
        let mut seen = vec![false; s.len()];
        let mut idx = vec![0usize; dims.len()];
        loop {
            let flat = s.flatten_index(&idx);
            prop_assert!(!seen[flat], "index {:?} collided at {}", idx, flat);
            seen[flat] = true;
            // odometer increment over the dims grid
            let mut axis = dims.len();
            loop {
                if axis == 0 {
                    break;
                }
                idx[axis - 1] += 1;
                if idx[axis - 1] < dims[axis - 1] {
                    break;
                }
                idx[axis - 1] = 0;
                axis -= 1;
            }
            if axis == 0 {
                break;
            }
        }
        prop_assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn remove_axis_divides_element_count(
        dims in proptest::collection::vec(1usize..5, 1..4usize),
        axis_seed in 0usize..8,
    ) {
        let axis = axis_seed % dims.len();
        let s = Shape::new(&dims);
        let r = s.remove_axis(axis).unwrap();
        prop_assert_eq!(r.rank(), s.rank() - 1);
        prop_assert_eq!(r.len() * dims[axis], s.len());
        prop_assert!(s.remove_axis(dims.len()).is_err());
    }

    #[test]
    fn io_round_trip_any_shape(data in vecf(24)) {
        let t = Tensor::from_vec(data, &[2, 3, 4]).unwrap();
        let mut buf = Vec::new();
        cq_tensor::write_tensor(&mut buf, &t).unwrap();
        prop_assert_eq!(cq_tensor::read_tensor(buf.as_slice()).unwrap(), t);
    }
}
