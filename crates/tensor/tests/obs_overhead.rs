//! Overhead guard for the observability hooks (ISSUE satellite).
//!
//! With no sink installed, every hook must be a branch-on-atomic-load
//! no-op: this test installs a counting global allocator and asserts the
//! disabled paths of `span`/`Counter::add`/`histogram`/`metric`/
//! `warn_with` perform **zero** heap allocations. With a sink installed,
//! it asserts events actually flow (and stop flowing after `uninstall`),
//! that spans nest in the correct order, and that the matmul kernel
//! counters in cq-tensor reconcile with the executed shape.
//!
//! Everything lives in ONE `#[test]` so the global allocator tally and
//! the process-global sink are never raced by a sibling test thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cq_obs::sink::{CountingSink, MemorySink};
use cq_obs::Event;
use cq_tensor::Tensor;

/// Passes through to the system allocator, tallying `alloc` calls.
/// `GlobalAlloc`'s default `realloc`/`alloc_zeroed` route through
/// `alloc`, so those are tallied too.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

static LOCAL_COUNTER: cq_obs::Counter = cq_obs::Counter::new("test.obs_overhead.local");

#[test]
fn hooks_are_zero_alloc_disabled_and_ordered_enabled() {
    // ---- Phase 1: no sink installed → hooks allocate nothing. ----
    assert!(!cq_obs::enabled(), "no sink should be installed at start");
    // Warm up lazy thread-local initialisation before tallying.
    for _ in 0..8 {
        let _sp = cq_obs::span("warmup");
        LOCAL_COUNTER.add(1);
    }
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for step in 0..1_000u64 {
        let _sp = cq_obs::span("tensor.matmul");
        LOCAL_COUNTER.add(3);
        cq_obs::histogram("quant.bits", 8.0);
        cq_obs::metric("train.loss", step, 0.5);
        cq_obs::warn_with(|| panic!("warn_with closure must not run when disabled"));
    }
    let hook_allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        hook_allocs, 0,
        "disabled obs hooks performed {hook_allocs} heap allocations; \
         they must be branch-on-atomic-load no-ops"
    );

    // ---- Phase 2: counting sink sees events; uninstall stops them. ----
    let counting = Arc::new(CountingSink::new());
    cq_obs::install(counting.clone());
    assert!(cq_obs::enabled());
    {
        let _sp = cq_obs::span("phase2");
        cq_obs::metric("phase2.metric", 0, 1.0);
    }
    let while_installed = counting.count();
    assert_eq!(
        while_installed, 3,
        "expected SpanStart + Metric + SpanEnd while installed"
    );
    let returned = cq_obs::uninstall();
    assert!(returned.is_some(), "uninstall returns the sink");
    assert!(!cq_obs::enabled());
    {
        let _sp = cq_obs::span("phase2.after");
        cq_obs::metric("phase2.metric", 1, 2.0);
    }
    assert_eq!(
        counting.count(),
        while_installed,
        "events must stop flowing after uninstall"
    );

    // ---- Phase 3: memory sink records spans in nesting order and the
    // matmul counters reconcile with the executed shape. ----
    cq_obs::reset();
    let mem = Arc::new(MemorySink::new());
    cq_obs::install(mem.clone());
    let (m, k, n) = (2usize, 3usize, 4usize);
    {
        let _outer = cq_obs::span("outer");
        {
            let _inner = cq_obs::span("inner");
            let a = Tensor::from_vec(vec![1.0; m * k], &[m, k]).unwrap();
            let b = Tensor::from_vec(vec![1.0; k * n], &[k, n]).unwrap();
            let c = a.matmul(&b).unwrap();
            assert_eq!(c.shape().dims(), &[m, n]);
        }
    }
    cq_obs::flush();
    cq_obs::uninstall();
    let events = mem.take();

    let spans: Vec<(&str, bool, u16)> = events
        .iter()
        .filter_map(|e| match e {
            Event::SpanStart { name, depth } => Some((*name, true, *depth)),
            Event::SpanEnd { name, depth, .. } => Some((*name, false, *depth)),
            _ => None,
        })
        .collect();
    assert_eq!(
        spans,
        vec![
            ("outer", true, 0),
            ("inner", true, 1),
            ("inner", false, 1),
            ("outer", false, 0),
        ],
        "spans must open and close in proper nesting order"
    );

    let counter_total = |want: &str| -> Option<u64> {
        events.iter().find_map(|e| match e {
            Event::Counter { name, total } if *name == want => Some(*total),
            _ => None,
        })
    };
    assert_eq!(counter_total("tensor.matmul.calls"), Some(1));
    assert_eq!(
        counter_total("tensor.matmul.flops"),
        Some(2 * (m * n * k) as u64),
        "observed FLOPs must reconcile with 2*m*n*k for the executed matmul"
    );
    cq_obs::reset();
}
