//! Property-based equivalence of the blocked GEMM kernels against their
//! naive references, over adversarial shapes and thread counts.
//!
//! The blocked kernels promise *bitwise* equality with the serial
//! reference implementations (see `gemm/mod.rs` for the contract), so
//! every comparison here is on `f32::to_bits`, never an epsilon. Shapes
//! are drawn from the hostile corners: 1, primes, `K = 0`, and the tile
//! boundaries `MR/NR = 8` and the widened 16-column panel, each ±1. The
//! parallel entry point is additionally run under thread limits
//! {1, 2, 5, 8} — all must produce identical bits.

use cq_tensor::gemm::{self, reference, Kind};
use cq_tensor::par::with_thread_limit;
use proptest::prelude::*;

/// Checked thread limits: serial, even split, odd/ragged split, and more
/// threads than most row-tile grids have.
const THREAD_LIMITS: [usize; 4] = [1, 2, 5, 8];

/// Adversarial extents: 1, primes, and blocked-kernel tile boundaries
/// (`MR/NR = 8`, AVX-512 panel width 16) each ±1.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2usize),
        Just(3usize),
        Just(5usize),
        Just(7usize),
        Just(8usize),
        Just(9usize),
        Just(13usize),
        Just(15usize),
        Just(16usize),
        Just(17usize),
        Just(23usize),
        Just(24usize),
        Just(25usize),
        Just(31usize),
        Just(33usize),
    ]
}

/// Like [`dim`] but including zero — `K = 0` must yield an all-zero
/// (or untouched, for the accumulating kernel) output.
fn kdim() -> impl Strategy<Value = usize> {
    prop_oneof![1 => Just(0usize), 8 => dim()]
}

/// Extents that force the packed path (`m*n*k >= 4096` and `n >= NR`),
/// so the microkernel itself is exercised, not the small-shape fallback.
fn big_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(16usize),
        Just(17usize),
        Just(23usize),
        Just(25usize),
        Just(31usize),
        Just(33usize)
    ]
}

/// Element values with exact zeros mixed in so the zero-skip fast path
/// of the NN/TN kernels runs alongside the generic lanes.
fn elem() -> impl Strategy<Value = f32> {
    prop_oneof![3 => -4.0f32..4.0, 1 => Just(0.0f32)]
}

fn matrix(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(elem(), len)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs the serial naive reference for `kind` (the ground truth every
/// blocked variant must reproduce bit-for-bit).
fn reference_gemm(kind: Kind, a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    let mut out = vec![f32::NAN; m * n];
    match kind {
        Kind::Nn => reference::gemm_nn(a, m, k, b, n, &mut out),
        Kind::Nt => reference::gemm_nt(a, m, k, b, n, &mut out),
        Kind::Tn => reference::gemm_tn(a, k, m, b, n, &mut out),
    }
    out
}

fn operand_lens(kind: Kind, m: usize, n: usize, k: usize) -> (usize, usize) {
    match kind {
        Kind::Nn => (m * k, k * n),
        Kind::Nt => (m * k, n * k),
        Kind::Tn => (k * m, k * n),
    }
}

/// Asserts `par_gemm` equals the naive reference bit-for-bit at every
/// thread limit in [`THREAD_LIMITS`].
fn check_par_gemm(kind: Kind, a: &[f32], b: &[f32], m: usize, n: usize, k: usize) {
    let want = bits(&reference_gemm(kind, a, b, m, n, k));
    for limit in THREAD_LIMITS {
        let mut out = vec![f32::NAN; m * n];
        with_thread_limit(limit, || gemm::par_gemm(kind, a, b, m, n, k, &mut out));
        prop_assert_eq!(
            bits(&out),
            want.clone(),
            "{:?} diverged from reference at thread limit {} (m={}, n={}, k={})",
            kind,
            limit,
            m,
            n,
            k
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_gemm_nn_matches_reference_bitwise(
        m in dim(), n in dim(), k in kdim(), seed_a in matrix(33 * 33), seed_b in matrix(33 * 33),
    ) {
        let (alen, blen) = operand_lens(Kind::Nn, m, n, k);
        check_par_gemm(Kind::Nn, &seed_a[..alen], &seed_b[..blen], m, n, k);
    }

    #[test]
    fn par_gemm_nt_matches_reference_bitwise(
        m in dim(), n in dim(), k in kdim(), seed_a in matrix(33 * 33), seed_b in matrix(33 * 33),
    ) {
        let (alen, blen) = operand_lens(Kind::Nt, m, n, k);
        check_par_gemm(Kind::Nt, &seed_a[..alen], &seed_b[..blen], m, n, k);
    }

    #[test]
    fn par_gemm_tn_matches_reference_bitwise(
        m in dim(), n in dim(), k in kdim(), seed_a in matrix(33 * 33), seed_b in matrix(33 * 33),
    ) {
        let (alen, blen) = operand_lens(Kind::Tn, m, n, k);
        check_par_gemm(Kind::Tn, &seed_a[..alen], &seed_b[..blen], m, n, k);
    }

    #[test]
    fn packed_path_matches_reference_bitwise_all_layouts(
        m in big_dim(), n in big_dim(), k in big_dim(),
        seed_a in matrix(33 * 33), seed_b in matrix(33 * 33),
    ) {
        // big_dim() guarantees m*n*k >= 4096 and n >= NR, so these runs
        // take the packed microkernel, never the small-shape fallback.
        for kind in [Kind::Nn, Kind::Nt, Kind::Tn] {
            let (alen, blen) = operand_lens(kind, m, n, k);
            check_par_gemm(kind, &seed_a[..alen], &seed_b[..blen], m, n, k);
        }
    }

    #[test]
    fn serial_entries_match_reference_bitwise(
        m in dim(), n in dim(), k in kdim(),
        seed_a in matrix(33 * 33), seed_b in matrix(33 * 33), seed_c in matrix(33 * 33),
    ) {
        // gemm_nn: out = A @ B, overwritten.
        let mut blocked = vec![f32::NAN; m * n];
        gemm::gemm_nn(&seed_a[..m * k], m, k, &seed_b[..k * n], n, &mut blocked);
        let mut naive = vec![f32::NAN; m * n];
        reference::gemm_nn(&seed_a[..m * k], m, k, &seed_b[..k * n], n, &mut naive);
        prop_assert_eq!(bits(&blocked), bits(&naive), "gemm_nn");

        // gemm_tn: out = Aᵀ @ B, overwritten.
        let mut blocked = vec![f32::NAN; m * n];
        gemm::gemm_tn(&seed_a[..k * m], k, m, &seed_b[..k * n], n, &mut blocked);
        let mut naive = vec![f32::NAN; m * n];
        reference::gemm_tn(&seed_a[..k * m], k, m, &seed_b[..k * n], n, &mut naive);
        prop_assert_eq!(bits(&blocked), bits(&naive), "gemm_tn");

        // gemm_nt_acc: out += A @ Bᵀ, so a shared nonzero initial image
        // checks the accumulate semantics too.
        let mut blocked = seed_c[..m * n].to_vec();
        gemm::gemm_nt_acc(&seed_a[..m * k], m, k, &seed_b[..n * k], n, &mut blocked);
        let mut naive = seed_c[..m * n].to_vec();
        reference::gemm_nt_acc(&seed_a[..m * k], m, k, &seed_b[..n * k], n, &mut naive);
        prop_assert_eq!(bits(&blocked), bits(&naive), "gemm_nt_acc");
    }

    #[test]
    fn thread_limits_agree_with_each_other_exactly(
        m in big_dim(), n in big_dim(), k in big_dim(),
        seed_a in matrix(33 * 33), seed_b in matrix(33 * 33),
    ) {
        // Independent of the reference: every thread limit must produce
        // the same bits as every other (the determinism half of the
        // contract, without the equivalence half).
        for kind in [Kind::Nn, Kind::Nt, Kind::Tn] {
            let (alen, blen) = operand_lens(kind, m, n, k);
            let (a, b) = (&seed_a[..alen], &seed_b[..blen]);
            let mut first: Option<Vec<u32>> = None;
            for limit in THREAD_LIMITS {
                let mut out = vec![f32::NAN; m * n];
                with_thread_limit(limit, || gemm::par_gemm(kind, a, b, m, n, k, &mut out));
                let got = bits(&out);
                match &first {
                    None => first = Some(got),
                    Some(want) => prop_assert_eq!(
                        &got, want, "{:?} not thread-count independent at limit {}", kind, limit
                    ),
                }
            }
        }
    }
}
