//! SSL collapse probes over projector embeddings.
//!
//! Computed once per epoch by the trainers (on the first batch of the
//! epoch, with an extra eval-style forward) and fed to the cq-obs metric
//! hook under the canonical `embed.*` names, where the health monitor's
//! collapse probe watches them. All statistics operate on L2-normalized
//! rows, matching how the NT-Xent/BYOL objectives consume projections.

use cq_nn::NnError;
use cq_tensor::Tensor;

/// The per-epoch embedding statistics (see `cq_obs::names` for the
/// semantics of each value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbeddingStats {
    /// Mean per-dimension std of normalized embeddings, scaled by
    /// `sqrt(d)`: ~1 for an isotropic representation, 0 when collapsed.
    pub feature_std: f32,
    /// Mean cosine similarity between positive pairs.
    pub pos_cosine: f32,
    /// Wang & Isola alignment: mean squared positive-pair distance.
    pub alignment: f32,
    /// Wang & Isola uniformity: `log E exp(-2 ||z_i - z_j||^2)` over
    /// distinct pairs; 0 means every embedding coincides.
    pub uniformity: f32,
}

/// Whether the per-epoch probe is worth computing: either telemetry is
/// being recorded or the health monitor is watching. Trainers gate the
/// extra forward pass on this, so disabled runs pay nothing.
pub fn stats_enabled() -> bool {
    cq_obs::enabled() || cq_obs::health::enabled()
}

fn normalized_rows(z: &Tensor) -> Result<(Vec<f32>, usize, usize), NnError> {
    let dims = z.dims();
    let [n, d] = dims else {
        return Err(NnError::Param(format!(
            "embedding_stats expects [N, D] projections, got {dims:?}"
        )));
    };
    let (n, d) = (*n, *d);
    let mut rows = z.as_slice().to_vec();
    for i in 0..n {
        let row = &mut rows[i * d..(i + 1) * d];
        // cq-allow(det-float-accum): sequential slice-order sum, fixed by construction
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
        for v in row.iter_mut() {
            *v /= norm;
        }
    }
    Ok((rows, n, d))
}

/// Computes the collapse probes from the two views' projections
/// (`[N, D]` each, same shape).
///
/// # Errors
///
/// Returns [`NnError::Param`] on a shape mismatch or empty batch.
pub fn embedding_stats(z1: &Tensor, z2: &Tensor) -> Result<EmbeddingStats, NnError> {
    if z1.dims() != z2.dims() {
        return Err(NnError::Param(format!(
            "embedding_stats: view shapes differ ({:?} vs {:?})",
            z1.dims(),
            z2.dims()
        )));
    }
    let (r1, n, d) = normalized_rows(z1)?;
    let (r2, _, _) = normalized_rows(z2)?;
    if n == 0 || d == 0 {
        return Err(NnError::Param("embedding_stats: empty batch".to_string()));
    }

    // Positive-pair cosine and alignment over matching rows.
    let mut pos_cosine = 0.0f64;
    let mut alignment = 0.0f64;
    for i in 0..n {
        let (a, b) = (&r1[i * d..(i + 1) * d], &r2[i * d..(i + 1) * d]);
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let dist2: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        pos_cosine += dot as f64;
        alignment += dist2 as f64;
    }
    pos_cosine /= n as f64;
    alignment /= n as f64;

    // Feature std over the pooled 2N normalized embeddings.
    let all: Vec<&[f32]> = (0..n)
        .map(|i| &r1[i * d..(i + 1) * d])
        .chain((0..n).map(|i| &r2[i * d..(i + 1) * d]))
        .collect();
    let rows = all.len();
    let mut feature_std = 0.0f64;
    for dim in 0..d {
        // cq-allow(det-float-accum): row-order f64 sum over a fixed embedding set
        let mean: f64 = all.iter().map(|r| r[dim] as f64).sum::<f64>() / rows as f64;
        let var: f64 = all
            .iter()
            .map(|r| {
                let dv = r[dim] as f64 - mean;
                dv * dv
            })
            // cq-allow(det-float-accum): row-order f64 sum over a fixed embedding set
            .sum::<f64>()
            / rows as f64;
        feature_std += var.sqrt();
    }
    feature_std = feature_std / d as f64 * (d as f64).sqrt();

    // Uniformity over distinct pooled pairs (O(N^2 D); per-epoch on one
    // batch, so the cost is negligible next to a training step).
    let mut acc = 0.0f64;
    let mut pairs = 0u64;
    for i in 0..rows {
        for j in (i + 1)..rows {
            let dist2: f32 = all[i]
                .iter()
                .zip(all[j])
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            acc += (-2.0 * dist2 as f64).exp();
            pairs += 1;
        }
    }
    let uniformity = if pairs > 0 {
        (acc / pairs as f64).ln()
    } else {
        0.0
    };

    Ok(EmbeddingStats {
        feature_std: feature_std as f32,
        pos_cosine: pos_cosine as f32,
        alignment: alignment as f32,
        uniformity: uniformity as f32,
    })
}

/// Computes the probes and emits them as `embed.*` metrics at `step`
/// (the emission is what feeds the health monitor's collapse probe).
///
/// # Errors
///
/// Propagates [`embedding_stats`] errors.
pub fn record_embedding_stats(
    step: u64,
    z1: &Tensor,
    z2: &Tensor,
) -> Result<EmbeddingStats, NnError> {
    let stats = embedding_stats(z1, z2)?;
    cq_obs::metric(
        cq_obs::names::EMBED_FEATURE_STD,
        step,
        stats.feature_std as f64,
    );
    cq_obs::metric(
        cq_obs::names::EMBED_POS_COSINE,
        step,
        stats.pos_cosine as f64,
    );
    cq_obs::metric(cq_obs::names::EMBED_ALIGNMENT, step, stats.alignment as f64);
    cq_obs::metric(
        cq_obs::names::EMBED_UNIFORMITY,
        step,
        stats.uniformity as f64,
    );
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(rows: &[&[f32]]) -> Tensor {
        let d = rows[0].len();
        let flat: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(flat, &[rows.len(), d]).unwrap()
    }

    #[test]
    fn identical_views_are_perfectly_aligned() {
        let z = tensor(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let s = embedding_stats(&z, &z).unwrap();
        assert!((s.pos_cosine - 1.0).abs() < 1e-6);
        assert!(s.alignment.abs() < 1e-6);
        // Orthogonal embeddings: spread out, healthy std.
        assert!(s.feature_std > 0.5, "std={}", s.feature_std);
        assert!(s.uniformity < -0.5, "uniformity={}", s.uniformity);
    }

    #[test]
    fn collapsed_embeddings_have_zero_std_and_zero_uniformity() {
        // Every row identical: the collapse signature.
        let z = tensor(&[&[0.6, 0.8], &[0.6, 0.8], &[0.6, 0.8]]);
        let s = embedding_stats(&z, &z).unwrap();
        assert!(s.feature_std.abs() < 1e-6, "std={}", s.feature_std);
        assert!(s.uniformity.abs() < 1e-6, "uniformity={}", s.uniformity);
        assert!((s.pos_cosine - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_embeddings_read_as_collapsed() {
        let z = tensor(&[&[0.0, 0.0], &[0.0, 0.0]]);
        let s = embedding_stats(&z, &z).unwrap();
        assert_eq!(s.feature_std, 0.0);
        assert_eq!(s.uniformity, 0.0);
    }

    #[test]
    fn alignment_matches_cosine_identity() {
        // For normalized vectors, ||a-b||^2 = 2 - 2 cos(a,b).
        let z1 = tensor(&[&[1.0, 0.0], &[0.8, 0.6]]);
        let z2 = tensor(&[&[0.0, 1.0], &[0.6, 0.8]]);
        let s = embedding_stats(&z1, &z2).unwrap();
        assert!(
            (s.alignment - (2.0 - 2.0 * s.pos_cosine)).abs() < 1e-5,
            "alignment={} cosine={}",
            s.alignment,
            s.pos_cosine
        );
    }

    #[test]
    fn shape_mismatch_and_empty_batch_error() {
        let a = tensor(&[&[1.0, 0.0]]);
        let b = tensor(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(embedding_stats(&a, &b).is_err());
        let flat = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert!(embedding_stats(&flat, &flat).is_err());
    }
}
