//! Symbolic [`Plan`]s mirroring every backbone/head this crate builds.
//!
//! Each builder here follows the corresponding constructor
//! ([`crate::build_resnet`], [`crate::build_mobilenet_v2`],
//! [`crate::mlp_head`]) layer for layer, so [`Plan::infer`],
//! [`Plan::param_count`] and [`Plan::flops`] describe the real network
//! without allocating a tensor. [`crate::Encoder::new`] validates its
//! configuration against [`encoder_plan`] before any weight is
//! initialised, and the `cq-check` binary runs the same pass over every
//! built-in experiment configuration.

use cq_nn::spec::{LayerKind, Plan, SpecError};
use cq_tensor::Conv2dSpec;

use crate::{Arch, EncoderConfig, HeadConfig};

/// Nominal input shape used when validating encoder configurations
/// (CIFAR-sized, batch 2 so BatchNorm statistics are well defined).
pub const NOMINAL_INPUT: [usize; 4] = [2, 3, 32, 32];

/// Plan of a [`crate::BasicBlock`]: residual main/skip branches followed
/// by the output ReLU.
fn basic_block_plan(name: &str, in_ch: usize, out_ch: usize, stride: usize) -> LayerKind {
    let mut main = Plan::new();
    main.push(
        format!("{name}.conv1"),
        LayerKind::Conv2d {
            in_ch,
            out_ch,
            spec: Conv2dSpec::new(3, stride, 1),
            bias: false,
        },
    );
    main.push(
        format!("{name}.bn1"),
        LayerKind::BatchNorm2d { channels: out_ch },
    );
    main.push(format!("{name}.relu1"), LayerKind::Relu);
    main.push(
        format!("{name}.conv2"),
        LayerKind::Conv2d {
            in_ch: out_ch,
            out_ch,
            spec: Conv2dSpec::new(3, 1, 1),
            bias: false,
        },
    );
    main.push(
        format!("{name}.bn2"),
        LayerKind::BatchNorm2d { channels: out_ch },
    );
    let skip = (stride != 1 || in_ch != out_ch).then(|| {
        let mut s = Plan::new();
        s.push(
            format!("{name}.down.conv"),
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                spec: Conv2dSpec::new(1, stride, 0),
                bias: false,
            },
        );
        s.push(
            format!("{name}.down.bn"),
            LayerKind::BatchNorm2d { channels: out_ch },
        );
        s
    });
    let mut block = Plan::new();
    block.push(format!("{name}.res"), LayerKind::Residual { main, skip });
    block.push(format!("{name}.relu_out"), LayerKind::Relu);
    LayerKind::Block(block)
}

/// Plan of a [`crate::InvertedResidual`] block.
fn inverted_residual_plan(
    name: &str,
    in_ch: usize,
    out_ch: usize,
    t: usize,
    stride: usize,
) -> LayerKind {
    let hidden = in_ch * t;
    let mut main = Plan::new();
    if t != 1 {
        main.push(
            format!("{name}.expand.conv"),
            LayerKind::Conv2d {
                in_ch,
                out_ch: hidden,
                spec: Conv2dSpec::new(1, 1, 0),
                bias: false,
            },
        );
        main.push(
            format!("{name}.expand.bn"),
            LayerKind::BatchNorm2d { channels: hidden },
        );
        main.push(format!("{name}.expand.relu6"), LayerKind::Relu6);
    }
    main.push(
        format!("{name}.dw"),
        LayerKind::DepthwiseConv2d {
            channels: hidden,
            spec: Conv2dSpec::new(3, stride, 1),
        },
    );
    main.push(
        format!("{name}.dw.bn"),
        LayerKind::BatchNorm2d { channels: hidden },
    );
    main.push(format!("{name}.dw.relu6"), LayerKind::Relu6);
    main.push(
        format!("{name}.project.conv"),
        LayerKind::Conv2d {
            in_ch: hidden,
            out_ch,
            spec: Conv2dSpec::new(1, 1, 0),
            bias: false,
        },
    );
    main.push(
        format!("{name}.project.bn"),
        LayerKind::BatchNorm2d { channels: out_ch },
    );
    if stride == 1 && in_ch == out_ch {
        LayerKind::Residual { main, skip: None }
    } else {
        LayerKind::Block(main)
    }
}

/// Plan of [`crate::build_resnet`], returning `(plan, feat_dim)`.
///
/// # Errors
///
/// Returns a config-attributed [`SpecError`] for `width == 0` or
/// [`Arch::MobileNetV2`] (use [`mobilenet_v2_plan`]).
pub fn resnet_plan(arch: Arch, width: usize) -> Result<(Plan, usize), SpecError> {
    if width == 0 {
        return Err(SpecError::config("backbone", "width must be positive"));
    }
    let (stage_blocks, stage_mults): (Vec<usize>, Vec<usize>) = match arch {
        Arch::ResNet18 => (vec![2, 2, 2, 2], vec![1, 2, 4, 8]),
        Arch::ResNet34 => (vec![3, 4, 6, 3], vec![1, 2, 4, 8]),
        Arch::ResNet74 => (vec![12, 12, 12], vec![1, 2, 4]),
        Arch::ResNet110 => (vec![18, 18, 18], vec![1, 2, 4]),
        Arch::ResNet152 => (vec![25, 25, 25], vec![1, 2, 4]),
        Arch::MobileNetV2 => {
            return Err(SpecError::config(
                "backbone",
                "use mobilenet_v2_plan for MobileNetV2",
            ));
        }
    };
    let mut plan = Plan::new();
    plan.push(
        "stem.conv",
        LayerKind::Conv2d {
            in_ch: 3,
            out_ch: width,
            spec: Conv2dSpec::new(3, 1, 1),
            bias: false,
        },
    );
    plan.push("stem.bn", LayerKind::BatchNorm2d { channels: width });
    plan.push("stem.relu", LayerKind::Relu);
    let mut in_ch = width;
    for (si, (&n_blocks, &mult)) in stage_blocks.iter().zip(&stage_mults).enumerate() {
        let out_ch = width * mult;
        for bi in 0..n_blocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let name = format!("s{si}.b{bi}");
            plan.push(&name, basic_block_plan(&name, in_ch, out_ch, stride));
            in_ch = out_ch;
        }
    }
    plan.push("gap", LayerKind::GlobalAvgPool);
    Ok((plan, in_ch))
}

/// Plan of [`crate::build_mobilenet_v2`], returning `(plan, feat_dim)`.
///
/// # Errors
///
/// Returns a config-attributed [`SpecError`] for `width == 0`.
pub fn mobilenet_v2_plan(width: usize) -> Result<(Plan, usize), SpecError> {
    if width == 0 {
        return Err(SpecError::config("backbone", "width must be positive"));
    }
    let mut plan = Plan::new();
    plan.push(
        "stem.conv",
        LayerKind::Conv2d {
            in_ch: 3,
            out_ch: width,
            spec: Conv2dSpec::new(3, 1, 1),
            bias: false,
        },
    );
    plan.push("stem.bn", LayerKind::BatchNorm2d { channels: width });
    plan.push("stem.relu6", LayerKind::Relu6);
    let stages: [(usize, usize, usize, usize); 3] =
        [(1, width, 1, 1), (6, 2 * width, 2, 2), (6, 4 * width, 2, 2)];
    let mut in_ch = width;
    for (si, &(t, c, n, s)) in stages.iter().enumerate() {
        for bi in 0..n {
            let stride = if bi == 0 { s } else { 1 };
            let name = format!("ir{si}.{bi}");
            plan.push(&name, inverted_residual_plan(&name, in_ch, c, t, stride));
            in_ch = c;
        }
    }
    let feat = 8 * width;
    plan.push(
        "head.conv",
        LayerKind::Conv2d {
            in_ch,
            out_ch: feat,
            spec: Conv2dSpec::new(1, 1, 0),
            bias: false,
        },
    );
    plan.push("head.bn", LayerKind::BatchNorm2d { channels: feat });
    plan.push("head.relu6", LayerKind::Relu6);
    plan.push("gap", LayerKind::GlobalAvgPool);
    Ok((plan, feat))
}

/// Plan of any backbone architecture, returning `(plan, feat_dim)`.
///
/// # Errors
///
/// Returns a config-attributed [`SpecError`] for `width == 0`.
pub fn backbone_plan(arch: Arch, width: usize) -> Result<(Plan, usize), SpecError> {
    match arch {
        Arch::MobileNetV2 => mobilenet_v2_plan(width),
        _ => resnet_plan(arch, width),
    }
}

/// Plan of [`crate::mlp_head`] (`Linear → [BN] → ReLU → Linear`).
pub fn mlp_head_plan(cfg: &HeadConfig, name: &str) -> Plan {
    let mut plan = Plan::new();
    plan.push(
        format!("{name}.fc1"),
        LayerKind::Linear {
            in_features: cfg.in_dim,
            out_features: cfg.hidden,
            bias: !cfg.batch_norm,
        },
    );
    if cfg.batch_norm {
        plan.push(
            format!("{name}.bn"),
            LayerKind::BatchNorm1d {
                features: cfg.hidden,
            },
        );
    }
    plan.push(format!("{name}.relu"), LayerKind::Relu);
    plan.push(
        format!("{name}.fc2"),
        LayerKind::Linear {
            in_features: cfg.hidden,
            out_features: cfg.out_dim,
            bias: true,
        },
    );
    plan
}

/// Plan of a full [`crate::Encoder`] (backbone + optional projector),
/// returning `(plan, feat_dim, proj_dim)`.
///
/// # Errors
///
/// Returns a layer- or config-attributed [`SpecError`] for invalid widths
/// or projector dimensions.
pub fn encoder_plan(cfg: &EncoderConfig) -> Result<(Plan, usize, usize), SpecError> {
    let (mut plan, feat) = backbone_plan(cfg.arch, cfg.width)?;
    let proj_dim = match cfg.proj {
        Some((hidden, out)) => {
            if hidden == 0 || out == 0 {
                return Err(SpecError::config(
                    "proj",
                    format!("projector dims must be positive, got ({hidden}, {out})"),
                ));
            }
            let hc = if cfg.proj_bn {
                HeadConfig::byol(feat, hidden, out)
            } else {
                HeadConfig::simclr(feat, hidden, out)
            };
            for l in mlp_head_plan(&hc, "proj").layers() {
                plan.push(l.name.clone(), l.kind.clone());
            }
            out
        }
        None => feat,
    };
    Ok((plan, feat, proj_dim))
}

/// Statically validates an encoder configuration: builds its plan and
/// interprets it on [`NOMINAL_INPUT`], returning `(feat_dim, proj_dim)`.
///
/// # Errors
///
/// Returns the first layer-attributed [`SpecError`] — this is what makes
/// [`crate::Encoder::new`] reject invalid configurations before touching
/// any weights.
pub fn validate_encoder(cfg: &EncoderConfig) -> Result<(usize, usize), SpecError> {
    let (plan, feat, proj) = encoder_plan(cfg)?;
    plan.infer(&NOMINAL_INPUT)?;
    Ok((feat, proj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_mobilenet_v2, build_resnet, Encoder};
    use cq_nn::{ForwardCtx, Layer, ParamSet};
    use cq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Plans must agree with the real networks on parameter count and
    /// output shape — for every architecture the paper evaluates.
    #[test]
    fn plans_match_real_networks_for_every_arch() {
        for arch in Arch::all() {
            let mut ps = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(0);
            let (mut net, feat) = match arch {
                Arch::MobileNetV2 => build_mobilenet_v2(2, &mut ps, &mut rng),
                _ => build_resnet(arch, 2, &mut ps, &mut rng),
            };
            let (plan, plan_feat) = backbone_plan(arch, 2).unwrap();
            assert_eq!(plan_feat, feat, "{arch}: feature dim");
            assert_eq!(plan.param_count(), ps.num_scalars(), "{arch}: param count");
            let x = Tensor::zeros(&[2, 3, 16, 16]);
            let (y, _) = net.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
            assert_eq!(
                plan.infer(&[2, 3, 16, 16]).unwrap(),
                y.dims(),
                "{arch}: shape"
            );
            assert!(plan.flops(&[2, 3, 16, 16]).unwrap() > 0, "{arch}: flops");
        }
    }

    #[test]
    fn encoder_plan_matches_encoder_for_every_arch() {
        for arch in Arch::all() {
            let cfg = EncoderConfig::new(arch, 2).with_proj(8, 4);
            let mut enc = Encoder::new(&cfg, 1).unwrap();
            let (plan, feat, proj) = encoder_plan(&cfg).unwrap();
            assert_eq!(feat, enc.feat_dim(), "{arch}: feat dim");
            assert_eq!(proj, enc.proj_dim(), "{arch}: proj dim");
            assert_eq!(plan.param_count(), enc.num_params(), "{arch}: params");
            let x = Tensor::zeros(&[2, 3, 16, 16]);
            let out = enc.forward(&x, &ForwardCtx::eval()).unwrap();
            assert_eq!(
                plan.infer(&[2, 3, 16, 16]).unwrap(),
                out.projection.dims(),
                "{arch}"
            );
        }
    }

    #[test]
    fn byol_encoder_plan_counts_bn_head() {
        let cfg = EncoderConfig::new(Arch::ResNet18, 2).with_byol_proj(8, 4);
        let enc = Encoder::new(&cfg, 1).unwrap();
        let (plan, _, _) = encoder_plan(&cfg).unwrap();
        assert_eq!(plan.param_count(), enc.num_params());
    }

    #[test]
    fn zero_width_rejected_before_any_allocation() {
        let cfg = EncoderConfig::new(Arch::ResNet18, 0);
        let err = validate_encoder(&cfg).unwrap_err();
        assert!(err.to_string().contains("width"));
        assert!(Encoder::new(&cfg, 0).is_err());
    }

    #[test]
    fn zero_projector_dims_rejected() {
        let cfg = EncoderConfig::new(Arch::ResNet18, 2).with_proj(0, 4);
        let err = validate_encoder(&cfg).unwrap_err();
        assert_eq!(err.layer, "proj");
        assert!(Encoder::new(&cfg, 0).is_err());
    }

    #[test]
    fn off_by_one_projector_input_is_layer_attributed() {
        // A hand-built head whose input dim misses the backbone features
        // by one — the canonical wiring mistake cq-check exists to catch.
        let (mut plan, feat) = backbone_plan(Arch::ResNet18, 2).unwrap();
        let head = mlp_head_plan(&HeadConfig::simclr(feat + 1, 8, 4), "proj");
        for l in head.layers() {
            plan.push(l.name.clone(), l.kind.clone());
        }
        let err = plan.infer(&NOMINAL_INPUT).unwrap_err();
        assert_eq!(err.layer, "proj.fc1");
        assert!(err
            .to_string()
            .contains(&format!("expected {} input features", feat + 1)));
    }
}
