//! CIFAR-style residual networks at the paper's six depths.
//!
//! ResNet-18/34 use the 4-stage BasicBlock layout of the ImageNet family
//! (block counts [2,2,2,2] / [3,4,6,3]) with a 3×3 stem (no stem pooling —
//! inputs here are small). ResNet-74/110/152 use the classic 3-stage CIFAR
//! layout `6n+2` with `n` = 12 / 18 / 25.

use cq_nn::graph::Recorder;
use cq_nn::{
    BatchNorm2d, Cache, Conv2d, ForwardCtx, GlobalAvgPool, GradSet, Layer, NnError, ParamSet, Relu,
    Sequential,
};
use cq_tensor::{Conv2dSpec, Tensor};
use rand::rngs::StdRng;

/// Backbone architecture identifiers (the paper's six networks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// 4-stage BasicBlock ResNet, blocks [2,2,2,2].
    ResNet18,
    /// 4-stage BasicBlock ResNet, blocks [3,4,6,3].
    ResNet34,
    /// 3-stage CIFAR ResNet, 6·12+2 layers.
    ResNet74,
    /// 3-stage CIFAR ResNet, 6·18+2 layers.
    ResNet110,
    /// 3-stage CIFAR ResNet, 6·25+2 layers.
    ResNet152,
    /// MobileNetV2 with inverted residual blocks.
    MobileNetV2,
}

impl Arch {
    /// All architectures evaluated in the paper, in table order.
    pub fn all() -> [Arch; 6] {
        [
            Arch::ResNet18,
            Arch::ResNet34,
            Arch::ResNet74,
            Arch::ResNet110,
            Arch::ResNet152,
            Arch::MobileNetV2,
        ]
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::ResNet18 => "ResNet-18",
            Arch::ResNet34 => "ResNet-34",
            Arch::ResNet74 => "ResNet-74",
            Arch::ResNet110 => "ResNet-110",
            Arch::ResNet152 => "ResNet-152",
            Arch::MobileNetV2 => "MobileNetV2",
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The standard two-conv residual block with identity or projection skip.
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    down: Option<(Conv2d, BatchNorm2d)>,
    relu_out: Relu,
}

impl std::fmt::Debug for BasicBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BasicBlock(out={}, down={})",
            self.conv2.out_channels(),
            self.down.is_some()
        )
    }
}

/// Forward trace of [`BasicBlock`].
struct BlockCache {
    c1: Cache,
    b1: Cache,
    r1: Cache,
    c2: Cache,
    b2: Cache,
    down: Option<(Cache, Cache)>,
    rout: Cache,
}

impl BasicBlock {
    /// Creates a block mapping `in_ch -> out_ch` with the given stride on
    /// the first conv; a 1×1 projection skip is added when the shape
    /// changes.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        let conv1 = Conv2d::new(
            ps,
            &format!("{name}.conv1"),
            in_ch,
            out_ch,
            Conv2dSpec::new(3, stride, 1),
            false,
            rng,
        );
        let bn1 = BatchNorm2d::new(ps, &format!("{name}.bn1"), out_ch);
        let conv2 = Conv2d::new(
            ps,
            &format!("{name}.conv2"),
            out_ch,
            out_ch,
            Conv2dSpec::new(3, 1, 1),
            false,
            rng,
        );
        let bn2 = BatchNorm2d::new(ps, &format!("{name}.bn2"), out_ch);
        let down = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(
                    ps,
                    &format!("{name}.down.conv"),
                    in_ch,
                    out_ch,
                    Conv2dSpec::new(1, stride, 0),
                    false,
                    rng,
                ),
                BatchNorm2d::new(ps, &format!("{name}.down.bn"), out_ch),
            )
        });
        BasicBlock {
            conv1,
            bn1,
            relu1: Relu::new(),
            conv2,
            bn2,
            down,
            relu_out: Relu::new(),
        }
    }
}

impl Layer for BasicBlock {
    fn layer_kind(&self) -> &'static str {
        "BasicBlock"
    }

    fn forward(
        &mut self,
        ps: &ParamSet,
        x: &Tensor,
        ctx: &ForwardCtx,
    ) -> Result<(Tensor, Cache), NnError> {
        // Record the main branch as one graph chain: bn2, the residual
        // add, relu_out and its fake-quant fuse into a single pass.
        let mut rec = Recorder::new(ps, ctx, x.clone());
        rec.run(&mut self.conv1)?;
        rec.run(&mut self.bn1)?;
        rec.run(&mut self.relu1)?;
        rec.run(&mut self.conv2)?;
        rec.run(&mut self.bn2)?;
        let (skip, down) = match &mut self.down {
            Some((dc, db)) => {
                let (s1, dcc) = dc.forward(ps, x, ctx)?;
                let (s2, dbc) = db.forward(ps, &s1, ctx)?;
                (s2, Some((dcc, dbc)))
            }
            None => (x.clone(), None),
        };
        rec.push_add(skip)?;
        rec.run(&mut self.relu_out)?;
        let (out, caches) = rec.finish()?;
        let mut it = caches.into_iter();
        let (c1, b1, r1, c2, b2, rout) = match (
            it.next(),
            it.next(),
            it.next(),
            it.next(),
            it.next(),
            it.next(),
        ) {
            (Some(c1), Some(b1), Some(r1), Some(c2), Some(b2), Some(rout)) => {
                (c1, b1, r1, c2, b2, rout)
            }
            _ => {
                return Err(NnError::CacheMismatch {
                    layer: "BasicBlock".into(),
                })
            }
        };
        Ok((
            out,
            Cache::new(BlockCache {
                c1,
                b1,
                r1,
                c2,
                b2,
                down,
                rout,
            }),
        ))
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor, NnError> {
        let c = cache.downcast::<BlockCache>("BasicBlock")?;
        let dsum = self.relu_out.backward(ps, &c.rout, dy, gs)?;
        // main branch
        let d5 = self.bn2.backward(ps, &c.b2, &dsum, gs)?;
        let d4 = self.conv2.backward(ps, &c.c2, &d5, gs)?;
        let d3 = self.relu1.backward(ps, &c.r1, &d4, gs)?;
        let d2 = self.bn1.backward(ps, &c.b1, &d3, gs)?;
        let dx_main = self.conv1.backward(ps, &c.c1, &d2, gs)?;
        // skip branch
        let dx_skip = match (&self.down, &c.down) {
            (Some((dc, db)), Some((dcc, dbc))) => {
                let ds = db.backward(ps, dbc, &dsum, gs)?;
                dc.backward(ps, dcc, &ds, gs)?
            }
            (None, None) => dsum,
            _ => {
                return Err(NnError::CacheMismatch {
                    layer: "BasicBlock".into(),
                })
            }
        };
        Ok(dx_main.add(&dx_skip)?)
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        let mut v = Vec::new();
        v.extend(self.bn1.state_tensors());
        v.extend(self.bn2.state_tensors());
        if let Some((_, db)) = &self.down {
            v.extend(db.state_tensors());
        }
        v
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = Vec::new();
        v.extend(self.bn1.state_tensors_mut());
        v.extend(self.bn2.state_tensors_mut());
        if let Some((_, db)) = &mut self.down {
            v.extend(db.state_tensors_mut());
        }
        v
    }
}

/// Builds a ResNet backbone mapping `[N, 3, H, W] -> [N, feat_dim]`.
///
/// `width` is the first-stage channel count (the paper's full-scale models
/// correspond to width 64 / 16; the scaled protocol uses 4–16). Returns the
/// layer and the feature dimension.
///
/// # Panics
///
/// Panics if `arch` is [`Arch::MobileNetV2`] (use
/// [`crate::build_mobilenet_v2`]) or `width == 0`.
pub fn build_resnet(
    arch: Arch,
    width: usize,
    ps: &mut ParamSet,
    rng: &mut StdRng,
) -> (Sequential, usize) {
    assert!(width > 0, "width must be positive");
    let (stage_blocks, stage_mults): (Vec<usize>, Vec<usize>) = match arch {
        Arch::ResNet18 => (vec![2, 2, 2, 2], vec![1, 2, 4, 8]),
        Arch::ResNet34 => (vec![3, 4, 6, 3], vec![1, 2, 4, 8]),
        Arch::ResNet74 => (vec![12, 12, 12], vec![1, 2, 4]),
        Arch::ResNet110 => (vec![18, 18, 18], vec![1, 2, 4]),
        Arch::ResNet152 => (vec![25, 25, 25], vec![1, 2, 4]),
        Arch::MobileNetV2 => panic!("use build_mobilenet_v2 for MobileNetV2"),
    };
    let mut net = Sequential::new();
    net.push(Conv2d::new(
        ps,
        "stem.conv",
        3,
        width,
        Conv2dSpec::new(3, 1, 1),
        false,
        rng,
    ));
    net.push(BatchNorm2d::new(ps, "stem.bn", width));
    net.push(Relu::new());
    let mut in_ch = width;
    for (si, (&n_blocks, &mult)) in stage_blocks.iter().zip(&stage_mults).enumerate() {
        let out_ch = width * mult;
        for bi in 0..n_blocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            net.push(BasicBlock::new(
                ps,
                &format!("s{si}.b{bi}"),
                in_ch,
                out_ch,
                stride,
                rng,
            ));
            in_ch = out_ch;
        }
    }
    net.push(GlobalAvgPool::new());
    (net, in_ch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn arch_names_match_paper() {
        assert_eq!(Arch::ResNet18.name(), "ResNet-18");
        assert_eq!(Arch::all().len(), 6);
        assert_eq!(Arch::MobileNetV2.to_string(), "MobileNetV2");
    }

    #[test]
    fn basic_block_identity_skip_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut blk = BasicBlock::new(&mut ps, "b", 4, 4, 1, &mut rng);
        let x = Tensor::ones(&[2, 4, 6, 6]);
        let (y, _) = blk.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 4, 6, 6]);
        assert_eq!(blk.state_tensors().len(), 4); // 2 BNs x (mean, var)
    }

    #[test]
    fn basic_block_projection_skip_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut blk = BasicBlock::new(&mut ps, "b", 4, 8, 2, &mut rng);
        let x = Tensor::ones(&[2, 4, 6, 6]);
        let (y, _) = blk.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 8, 3, 3]);
        assert_eq!(blk.state_tensors().len(), 6); // 3 BNs
    }

    #[test]
    fn basic_block_gradcheck_identity() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let blk = BasicBlock::new(&mut ps, "b", 3, 3, 1, &mut rng);
        cq_nn::gradcheck::check_layer_soft(blk, ps, &[2, 3, 4, 4], &ForwardCtx::train(), 8e-2);
    }

    #[test]
    fn basic_block_gradcheck_projection() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let blk = BasicBlock::new(&mut ps, "b", 3, 4, 2, &mut rng);
        cq_nn::gradcheck::check_layer_soft(blk, ps, &[2, 3, 4, 4], &ForwardCtx::train(), 8e-2);
    }

    #[test]
    fn resnet18_shapes_and_feat_dim() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let (mut net, dim) = build_resnet(Arch::ResNet18, 4, &mut ps, &mut rng);
        assert_eq!(dim, 32);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let (y, _) = net.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
        assert_eq!(y.dims(), &[2, 32]);
    }

    #[test]
    fn cifar_resnet_depth_counts() {
        // ResNet-74 = 6*12+2: stem conv + 36 blocks*2 convs + fc (not here)
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let (_, dim) = build_resnet(Arch::ResNet74, 4, &mut ps, &mut rng);
        assert_eq!(dim, 16);
        // weight params: stem conv + stem bn(2) + blocks
        // 36 blocks, each 2 convs + 2 bns(2 each) = 6 params, plus 2
        // projection blocks with 1x1 conv + bn = +3 each.
        let expected = 1 + 2 + 36 * 6 + 2 * 3;
        assert_eq!(ps.len(), expected);
    }

    #[test]
    fn resnet_backward_runs_and_produces_finite_grads() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(6);
        let (mut net, dim) = build_resnet(Arch::ResNet18, 2, &mut ps, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (_y, cache) = net.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        let mut gs = ps.zero_grads();
        let dy = Tensor::ones(&[2, dim]);
        let dx = net.backward(&ps, &cache, &dy, &mut gs).unwrap();
        assert_eq!(dx.dims(), x.dims());
        assert!(gs.is_finite());
        assert!(gs.global_norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "build_mobilenet_v2")]
    fn resnet_builder_rejects_mobilenet() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        build_resnet(Arch::MobileNetV2, 4, &mut ps, &mut rng);
    }
}
