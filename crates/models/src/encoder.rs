//! The [`Encoder`]: a backbone plus optional projection head over one
//! parameter set — the unit Contrastive Quant trains.

use std::io::{Read, Write};

use cq_nn::{Cache, ForwardCtx, GradSet, Layer, NnError, ParamSet, Sequential};
use cq_tensor::{read_tensor, write_tensor, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{build_mobilenet_v2, build_resnet, mlp_head, Arch, HeadConfig};

/// Build-time description of an [`Encoder`]; kept by the encoder so BYOL
/// targets and checkpoints can reconstruct the same architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Backbone architecture.
    pub arch: Arch,
    /// Backbone base width.
    pub width: usize,
    /// Projection head `(hidden, out)` dimensions; `None` = no projector
    /// (projection output equals the features).
    pub proj: Option<(usize, usize)>,
    /// Use a BYOL-style (batch-normed) projection head.
    pub proj_bn: bool,
}

impl EncoderConfig {
    /// Backbone-only configuration.
    pub fn new(arch: Arch, width: usize) -> Self {
        EncoderConfig {
            arch,
            width,
            proj: None,
            proj_bn: false,
        }
    }

    /// Adds a SimCLR-style projection head.
    pub fn with_proj(mut self, hidden: usize, out: usize) -> Self {
        self.proj = Some((hidden, out));
        self
    }

    /// Adds a BYOL-style (batch-normed) projection head.
    pub fn with_byol_proj(mut self, hidden: usize, out: usize) -> Self {
        self.proj = Some((hidden, out));
        self.proj_bn = true;
        self
    }
}

/// Trace of one [`Encoder::forward`]; several traces of the same encoder
/// can be alive at once (the multi-quantization branches of Contrastive
/// Quant).
pub struct EncoderTrace {
    backbone: Cache,
    proj: Option<Cache>,
}

impl std::fmt::Debug for EncoderTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EncoderTrace(proj={})", self.proj.is_some())
    }
}

/// Output of one encoder forward pass.
#[derive(Debug)]
pub struct EncoderOutput {
    /// Backbone features `h` (`[N, feat_dim]`) — what linear evaluation
    /// and fine-tuning consume.
    pub features: Tensor,
    /// Projected representation `z` (`[N, proj_dim]`) — what the
    /// contrastive losses consume. Equals `features` when no projector is
    /// configured.
    pub projection: Tensor,
    /// Backward trace.
    pub trace: EncoderTrace,
}

/// A backbone + optional projection head over a single [`ParamSet`].
pub struct Encoder {
    cfg: EncoderConfig,
    params: ParamSet,
    backbone: Sequential,
    projector: Option<Sequential>,
    feat_dim: usize,
    proj_dim: usize,
}

impl std::fmt::Debug for Encoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Encoder({} w{}, feat={}, proj={})",
            self.cfg.arch, self.cfg.width, self.feat_dim, self.proj_dim
        )
    }
}

impl Encoder {
    /// Builds an encoder from `cfg`, initialising all weights from `seed`.
    ///
    /// The configuration is first validated symbolically (see
    /// [`crate::plan::validate_encoder`]); an invalid stack is rejected
    /// with a layer-attributed error before any weight is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] describing the offending layer when the
    /// configuration is invalid (zero width, bad projector dimensions).
    pub fn new(cfg: &EncoderConfig, seed: u64) -> Result<Self, NnError> {
        crate::plan::validate_encoder(cfg)
            .map_err(|e| NnError::Param(format!("invalid encoder config: {e}")))?;
        // cq-allow(det-rng-ctor): one-shot weight-init stream derived from the caller's seed, consumed before training
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let (backbone, feat_dim) = match cfg.arch {
            Arch::MobileNetV2 => build_mobilenet_v2(cfg.width, &mut params, &mut rng),
            _ => build_resnet(cfg.arch, cfg.width, &mut params, &mut rng),
        };
        let (projector, proj_dim) = match cfg.proj {
            Some((hidden, out)) => {
                let hc = if cfg.proj_bn {
                    HeadConfig::byol(feat_dim, hidden, out)
                } else {
                    HeadConfig::simclr(feat_dim, hidden, out)
                };
                (Some(mlp_head(&hc, "proj", &mut params, &mut rng)), out)
            }
            None => (None, feat_dim),
        };
        Ok(Encoder {
            cfg: *cfg,
            params,
            backbone,
            projector,
            feat_dim,
            proj_dim,
        })
    }

    /// The configuration this encoder was built from.
    pub fn config(&self) -> EncoderConfig {
        self.cfg
    }

    /// Backbone feature dimension.
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// Projection output dimension.
    pub fn proj_dim(&self) -> usize {
        self.proj_dim
    }

    /// The parameter set (optimizers are built against this).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable parameter set (optimizer steps; registering extra heads
    /// such as BYOL's predictor or a fine-tuning classifier).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.params.num_scalars()
    }

    /// Runs the encoder, returning features, projection and the trace.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (bad input shapes etc.).
    pub fn forward(&mut self, x: &Tensor, ctx: &ForwardCtx) -> Result<EncoderOutput, NnError> {
        let _sp = cq_obs::span("encoder.forward");
        let (features, backbone) = self.backbone.forward(&self.params, x, ctx)?;
        let (projection, proj) = match &mut self.projector {
            Some(p) => {
                let (z, c) = p.forward(&self.params, &features, ctx)?;
                (z, Some(c))
            }
            None => (features.clone(), None),
        };
        Ok(EncoderOutput {
            features,
            projection,
            trace: EncoderTrace { backbone, proj },
        })
    }

    /// Convenience: features only, no projector run (evaluation paths).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn features(&mut self, x: &Tensor, ctx: &ForwardCtx) -> Result<Tensor, NnError> {
        let (features, _) = self.backbone.forward(&self.params, x, ctx)?;
        Ok(features)
    }

    /// Backpropagates a gradient w.r.t. the *projection* through projector
    /// and backbone, accumulating into `gs`.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. a trace from another encoder).
    pub fn backward_projection(
        &self,
        trace: &EncoderTrace,
        dz: &Tensor,
        gs: &mut GradSet,
    ) -> Result<(), NnError> {
        let _sp = cq_obs::span("encoder.backward");
        let dh = match (&self.projector, &trace.proj) {
            (Some(p), Some(c)) => p.backward(&self.params, c, dz, gs)?,
            (None, None) => dz.clone(),
            _ => {
                return Err(NnError::CacheMismatch {
                    layer: "Encoder".into(),
                })
            }
        };
        self.backbone
            .backward(&self.params, &trace.backbone, &dh, gs)?;
        Ok(())
    }

    /// Backpropagates a gradient w.r.t. the *features* (fine-tuning path:
    /// a classifier sits directly on `h`).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn backward_features(
        &self,
        trace: &EncoderTrace,
        dh: &Tensor,
        gs: &mut GradSet,
    ) -> Result<(), NnError> {
        self.backbone
            .backward(&self.params, &trace.backbone, dh, gs)?;
        Ok(())
    }

    /// Runs the backbone *without* its final global pooling, returning the
    /// spatial feature map `[N, feat_dim, h, w]` — what dense-prediction
    /// heads (detection transfer, Tab. 3) consume — plus a trace for
    /// [`Encoder::backward_spatial`].
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward_spatial(
        &mut self,
        x: &Tensor,
        ctx: &ForwardCtx,
    ) -> Result<(Tensor, Cache), NnError> {
        let n = self.backbone.len() - 1; // last layer is GlobalAvgPool
        self.backbone.forward_upto(&self.params, x, ctx, n)
    }

    /// Backpropagates a gradient w.r.t. the spatial feature map produced
    /// by [`Encoder::forward_spatial`].
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn backward_spatial(
        &self,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<(), NnError> {
        self.backbone.backward(&self.params, cache, dy, gs)?;
        Ok(())
    }

    /// Builds a structural copy with identical parameters and state — the
    /// starting point of a BYOL target network.
    ///
    /// # Errors
    ///
    /// Propagates parameter-copy errors (never expected for a fresh copy).
    pub fn duplicate(&self) -> Result<Encoder, NnError> {
        let mut copy = Encoder::new(&self.cfg, 0)?;
        copy.params.copy_from(&self.params)?;
        cq_nn::copy_state(&mut copy.backbone, &self.backbone)?;
        if let (Some(d), Some(s)) = (&mut copy.projector, &self.projector) {
            cq_nn::copy_state(d, s)?;
        }
        Ok(copy)
    }

    /// BYOL target update: `self.params = tau * self.params + (1 - tau) *
    /// online.params`. The online network may carry extra trailing
    /// parameters (its prediction head); they are ignored. Running
    /// statistics are left to the target's own forward passes.
    ///
    /// # Errors
    ///
    /// Returns an error if the shared-prefix parameters do not align.
    pub fn ema_update_from(&mut self, online: &Encoder, tau: f32) -> Result<(), NnError> {
        self.params.ema_from_prefix(&online.params, tau)
    }

    /// Serialises config, parameters and layer state.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), NnError> {
        w.write_all(b"CQEN")?;
        let arch_tag: u8 = match self.cfg.arch {
            Arch::ResNet18 => 0,
            Arch::ResNet34 => 1,
            Arch::ResNet74 => 2,
            Arch::ResNet110 => 3,
            Arch::ResNet152 => 4,
            Arch::MobileNetV2 => 5,
        };
        w.write_all(&[arch_tag, u8::from(self.cfg.proj_bn)])?;
        w.write_all(&(self.cfg.width as u64).to_le_bytes())?;
        let (ph, po) = self.cfg.proj.unwrap_or((0, 0));
        w.write_all(&(ph as u64).to_le_bytes())?;
        w.write_all(&(po as u64).to_le_bytes())?;
        self.params.save(&mut w)?;
        let state = self.state_tensors();
        w.write_all(&(state.len() as u32).to_le_bytes())?;
        for t in state {
            write_tensor(&mut w, t).map_err(NnError::Tensor)?;
        }
        Ok(())
    }

    /// Deserialises an encoder written with [`Encoder::save`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on malformed input.
    pub fn load<R: Read>(mut r: R) -> Result<Encoder, NnError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"CQEN" {
            return Err(NnError::Io(format!("bad encoder magic {magic:?}")));
        }
        let mut hdr = [0u8; 2];
        r.read_exact(&mut hdr)?;
        let arch = match hdr[0] {
            0 => Arch::ResNet18,
            1 => Arch::ResNet34,
            2 => Arch::ResNet74,
            3 => Arch::ResNet110,
            4 => Arch::ResNet152,
            5 => Arch::MobileNetV2,
            t => return Err(NnError::Io(format!("unknown arch tag {t}"))),
        };
        let proj_bn = hdr[1] != 0;
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let width = u64::from_le_bytes(b8) as usize;
        r.read_exact(&mut b8)?;
        let ph = u64::from_le_bytes(b8) as usize;
        r.read_exact(&mut b8)?;
        let po = u64::from_le_bytes(b8) as usize;
        let cfg = EncoderConfig {
            arch,
            width,
            proj: (ph != 0 || po != 0).then_some((ph, po)),
            proj_bn,
        };
        let params = ParamSet::load(&mut r)?;
        let mut enc = Encoder::new(&cfg, 0)?;
        enc.params.copy_from(&params)?;
        let mut cnt = [0u8; 4];
        r.read_exact(&mut cnt)?;
        let n = u32::from_le_bytes(cnt) as usize;
        let mut loaded = Vec::with_capacity(n);
        for _ in 0..n {
            loaded.push(read_tensor(&mut r).map_err(NnError::Tensor)?);
        }
        let mut state = enc.state_tensors_mut();
        if state.len() != n {
            return Err(NnError::Io(format!(
                "state tensor count mismatch: file {n}, model {}",
                state.len()
            )));
        }
        for (dst, src) in state.iter_mut().zip(&loaded) {
            if dst.dims() != src.dims() {
                return Err(NnError::Io("state tensor shape mismatch".into()));
            }
            dst.as_mut_slice().copy_from_slice(src.as_slice());
        }
        Ok(enc)
    }

    /// Non-parameter state tensors (BatchNorm running stats) of the
    /// backbone followed by the projector, in a fixed traversal order.
    /// Exposed so checkpointing can capture state that `params()` misses.
    pub fn state_tensors(&self) -> Vec<&Tensor> {
        let mut v = self.backbone.state_tensors();
        if let Some(p) = &self.projector {
            v.extend(p.state_tensors());
        }
        v
    }

    /// Mutable view of [`state_tensors`], for checkpoint restore.
    ///
    /// [`state_tensors`]: Encoder::state_tensors
    pub fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = self.backbone.state_tensors_mut();
        if let Some(p) = &mut self.projector {
            v.extend(p.state_tensors_mut());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_quant::{Precision, QuantConfig};

    fn small_cfg() -> EncoderConfig {
        EncoderConfig::new(Arch::ResNet18, 2).with_proj(8, 4)
    }

    #[test]
    fn forward_shapes() {
        let mut enc = Encoder::new(&small_cfg(), 1).unwrap();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let out = enc.forward(&x, &ForwardCtx::eval()).unwrap();
        assert_eq!(out.features.dims(), &[2, 16]);
        assert_eq!(out.projection.dims(), &[2, 4]);
    }

    #[test]
    fn no_projector_projection_equals_features() {
        let cfg = EncoderConfig::new(Arch::ResNet18, 2);
        let mut enc = Encoder::new(&cfg, 1).unwrap();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let out = enc.forward(&x, &ForwardCtx::eval()).unwrap();
        assert_eq!(out.features, out.projection);
        assert_eq!(enc.proj_dim(), enc.feat_dim());
    }

    #[test]
    fn backward_projection_accumulates() {
        let mut enc = Encoder::new(&small_cfg(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let out = enc.forward(&x, &ForwardCtx::train()).unwrap();
        let mut gs = enc.params().zero_grads();
        let dz = Tensor::ones(&[2, 4]);
        enc.backward_projection(&out.trace, &dz, &mut gs).unwrap();
        assert!(gs.global_norm() > 0.0);
        assert!(gs.is_finite());
    }

    #[test]
    fn multiple_traces_same_params() {
        // the Contrastive Quant pattern: two quantized branches, gradients
        // accumulated from both into one GradSet
        let mut enc = Encoder::new(&small_cfg(), 3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let ctx1 = ForwardCtx::train().with_quant(QuantConfig::uniform(Precision::Bits(6)));
        let ctx2 = ForwardCtx::train().with_quant(QuantConfig::uniform(Precision::Bits(12)));
        let out1 = enc.forward(&x, &ctx1).unwrap();
        let out2 = enc.forward(&x, &ctx2).unwrap();
        assert!(out1.projection.sub(&out2.projection).unwrap().norm() > 1e-6);
        let mut gs = enc.params().zero_grads();
        let dz = Tensor::ones(&[2, 4]);
        enc.backward_projection(&out1.trace, &dz, &mut gs).unwrap();
        let n1 = gs.global_norm();
        enc.backward_projection(&out2.trace, &dz, &mut gs).unwrap();
        assert!(gs.global_norm() != n1);
    }

    #[test]
    fn duplicate_matches_and_then_diverges() {
        let mut enc = Encoder::new(&small_cfg(), 4).unwrap();
        let mut dup = enc.duplicate().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let a = enc.forward(&x, &ForwardCtx::eval()).unwrap();
        let b = dup.forward(&x, &ForwardCtx::eval()).unwrap();
        assert!(a.projection.sub(&b.projection).unwrap().norm() < 1e-6);
    }

    #[test]
    fn ema_update_moves_target_toward_online() {
        let online = Encoder::new(&small_cfg(), 5).unwrap();
        let mut target = Encoder::new(&small_cfg(), 6).unwrap();
        let before: f32 = target
            .params()
            .iter()
            .zip(online.params().iter())
            .map(|((_, _, a), (_, _, b))| a.sub(b).unwrap().sq_norm())
            .sum();
        target.ema_update_from(&online, 0.5).unwrap();
        let after: f32 = target
            .params()
            .iter()
            .zip(online.params().iter())
            .map(|((_, _, a), (_, _, b))| a.sub(b).unwrap().sq_norm())
            .sum();
        assert!(after < before);
    }

    #[test]
    fn save_load_round_trip_preserves_outputs() {
        let mut enc = Encoder::new(&small_cfg(), 7).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        // push some state into BN running stats
        let x = Tensor::randn(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        enc.forward(&x, &ForwardCtx::train()).unwrap();
        let mut buf = Vec::new();
        enc.save(&mut buf).unwrap();
        let mut back = Encoder::load(buf.as_slice()).unwrap();
        assert_eq!(back.config(), enc.config());
        let a = enc.forward(&x, &ForwardCtx::eval()).unwrap();
        let b = back.forward(&x, &ForwardCtx::eval()).unwrap();
        assert!(a.projection.sub(&b.projection).unwrap().norm() < 1e-5);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Encoder::load(&b"NOPE"[..]).is_err());
    }

    #[test]
    fn forward_spatial_shapes_per_arch() {
        // ResNet-18 (4 stages): 16x16 -> 2x2 spatial map; channels == feat_dim
        let mut r18 = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2), 1).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let (sp, _) = r18.forward_spatial(&x, &ForwardCtx::eval()).unwrap();
        assert_eq!(sp.dims(), &[2, r18.feat_dim(), 2, 2]);

        // ResNet-74 (3 stages): 16x16 -> 4x4
        let mut r74 = Encoder::new(&EncoderConfig::new(Arch::ResNet74, 2), 2).unwrap();
        let (sp, _) = r74.forward_spatial(&x, &ForwardCtx::eval()).unwrap();
        assert_eq!(sp.dims(), &[2, r74.feat_dim(), 4, 4]);

        // MobileNetV2 (two stride-2 stages): 16x16 -> 4x4
        let mut mnv = Encoder::new(&EncoderConfig::new(Arch::MobileNetV2, 2), 3).unwrap();
        let (sp, _) = mnv.forward_spatial(&x, &ForwardCtx::eval()).unwrap();
        assert_eq!(sp.dims(), &[2, mnv.feat_dim(), 4, 4]);
    }

    #[test]
    fn spatial_pooled_matches_features() {
        // global-average-pooling the spatial map reproduces features()
        let mut enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (sp, _) = enc.forward_spatial(&x, &ForwardCtx::eval()).unwrap();
        let pooled = cq_tensor::global_avg_pool(&sp).unwrap();
        let feats = enc.features(&x, &ForwardCtx::eval()).unwrap();
        for (a, b) in pooled.as_slice().iter().zip(feats.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_spatial_accumulates_gradients() {
        let mut enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2), 5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (sp, cache) = enc.forward_spatial(&x, &ForwardCtx::train()).unwrap();
        let mut gs = enc.params().zero_grads();
        enc.backward_spatial(&cache, &Tensor::ones(sp.dims()), &mut gs)
            .unwrap();
        assert!(gs.global_norm() > 0.0);
        assert!(gs.is_finite());
    }
}
