//! # cq-models
//!
//! Backbones and heads for the Contrastive Quant reproduction: CIFAR-style
//! ResNets at the paper's six depths (18/34/74/110/152), MobileNetV2, the
//! SimCLR/BYOL projection and prediction heads, and the [`Encoder`] wrapper
//! bundling a backbone + projector over one parameter set.
//!
//! All backbones are width-configurable so the CPU-scale experiment
//! protocol (DESIGN.md §5) can shrink them uniformly across methods.
//!
//! # Example
//!
//! ```
//! use cq_models::{Arch, Encoder, EncoderConfig};
//! use cq_nn::ForwardCtx;
//! use cq_tensor::Tensor;
//!
//! let cfg = EncoderConfig::new(Arch::ResNet18, 4).with_proj(16, 8);
//! let mut enc = Encoder::new(&cfg, 42)?;
//! let x = Tensor::zeros(&[2, 3, 16, 16]);
//! let out = enc.forward(&x, &cq_nn::ForwardCtx::eval())?;
//! assert_eq!(out.features.dims(), &[2, enc.feat_dim()]);
//! assert_eq!(out.projection.dims(), &[2, 8]);
//! # Ok::<(), cq_nn::NnError>(())
//! ```

#![deny(missing_docs)]

mod encoder;
mod heads;
mod mobilenet;
pub mod plan;
mod resnet;
pub mod stats;

pub use encoder::{Encoder, EncoderConfig, EncoderOutput, EncoderTrace};
pub use heads::{mlp_head, HeadConfig};
pub use mobilenet::{build_mobilenet_v2, InvertedResidual};
pub use resnet::{build_resnet, Arch, BasicBlock};
pub use stats::{embedding_stats, record_embedding_stats, EmbeddingStats};
