//! Projection and prediction heads.
//!
//! SimCLR (§3.4: "adding a projection head after the encoder") uses a
//! 2-layer MLP; BYOL additionally uses a prediction head on the online
//! network. Both are the same shape: `Linear → [BN] → ReLU → Linear`.

use cq_nn::{BatchNorm1d, Linear, ParamSet, Relu, Sequential};
use rand::Rng;

/// Configuration of an MLP head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadConfig {
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Insert BatchNorm1d after the first linear (BYOL-style head).
    pub batch_norm: bool,
}

impl HeadConfig {
    /// SimCLR-style head (no batch norm).
    pub fn simclr(in_dim: usize, hidden: usize, out_dim: usize) -> Self {
        HeadConfig {
            in_dim,
            hidden,
            out_dim,
            batch_norm: false,
        }
    }

    /// BYOL-style head (batch norm after the first linear).
    pub fn byol(in_dim: usize, hidden: usize, out_dim: usize) -> Self {
        HeadConfig {
            in_dim,
            hidden,
            out_dim,
            batch_norm: true,
        }
    }
}

/// Builds the `Linear → [BN] → ReLU → Linear` head described by `cfg`.
pub fn mlp_head<R: Rng>(
    cfg: &HeadConfig,
    name: &str,
    ps: &mut ParamSet,
    rng: &mut R,
) -> Sequential {
    let mut head = Sequential::new();
    head.push(Linear::new(
        ps,
        &format!("{name}.fc1"),
        cfg.in_dim,
        cfg.hidden,
        !cfg.batch_norm,
        rng,
    ));
    if cfg.batch_norm {
        head.push(BatchNorm1d::new(ps, &format!("{name}.bn"), cfg.hidden));
    }
    head.push(Relu::new());
    head.push(Linear::new(
        ps,
        &format!("{name}.fc2"),
        cfg.hidden,
        cfg.out_dim,
        true,
        rng,
    ));
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_nn::{ForwardCtx, Layer};
    use cq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simclr_head_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut head = mlp_head(&HeadConfig::simclr(8, 16, 4), "proj", &mut ps, &mut rng);
        let (z, _) = head
            .forward(&ps, &Tensor::ones(&[3, 8]), &ForwardCtx::eval())
            .unwrap();
        assert_eq!(z.dims(), &[3, 4]);
        assert!(head.state_tensors().is_empty());
    }

    #[test]
    fn byol_head_has_bn_state() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = mlp_head(&HeadConfig::byol(8, 16, 4), "proj", &mut ps, &mut rng);
        assert_eq!(head.state_tensors().len(), 2);
        let (z, _) = head
            .forward(&ps, &Tensor::ones(&[3, 8]), &ForwardCtx::eval())
            .unwrap();
        assert_eq!(z.dims(), &[3, 4]);
    }

    #[test]
    fn head_gradcheck() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let head = mlp_head(&HeadConfig::simclr(5, 7, 3), "proj", &mut ps, &mut rng);
        cq_nn::gradcheck::check_layer(head, ps, &[4, 5], &ForwardCtx::train(), 5e-2);
    }
}
