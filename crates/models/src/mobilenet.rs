//! MobileNetV2 with inverted residual (expand → depthwise → linear
//! bottleneck) blocks, CIFAR-style stem for small inputs.

use cq_nn::graph::Recorder;
use cq_nn::{
    BatchNorm2d, Cache, Conv2d, DepthwiseConv2d, ForwardCtx, GlobalAvgPool, GradSet, Layer,
    NnError, ParamSet, Relu6, Sequential,
};
use cq_tensor::{Conv2dSpec, Tensor};
use rand::rngs::StdRng;

/// MobileNetV2 inverted residual block.
///
/// `expand 1×1 conv (t×) → BN → ReLU6 → depthwise 3×3 → BN → ReLU6 →
/// project 1×1 conv → BN`, with an identity residual when the stride is 1
/// and the channel count is unchanged. The expansion stage is omitted when
/// `t == 1` (the first block), exactly as in the reference network.
pub struct InvertedResidual {
    expand: Option<(Conv2d, BatchNorm2d, Relu6)>,
    dw: DepthwiseConv2d,
    bn_dw: BatchNorm2d,
    act_dw: Relu6,
    project: Conv2d,
    bn_proj: BatchNorm2d,
    use_res: bool,
}

impl std::fmt::Debug for InvertedResidual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "InvertedResidual(out={}, res={})",
            self.project.out_channels(),
            self.use_res
        )
    }
}

/// Forward trace of [`InvertedResidual`].
struct IrCache {
    expand: Option<(Cache, Cache, Cache)>,
    dw: Cache,
    bn_dw: Cache,
    act_dw: Cache,
    project: Cache,
    bn_proj: Cache,
}

impl InvertedResidual {
    /// Creates a block `in_ch -> out_ch` with expansion factor `t` and the
    /// given depthwise stride.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        t: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(t >= 1, "expansion factor must be >= 1");
        let hidden = in_ch * t;
        let expand = (t != 1).then(|| {
            (
                Conv2d::new(
                    ps,
                    &format!("{name}.expand.conv"),
                    in_ch,
                    hidden,
                    Conv2dSpec::new(1, 1, 0),
                    false,
                    rng,
                ),
                BatchNorm2d::new(ps, &format!("{name}.expand.bn"), hidden),
                Relu6::new(),
            )
        });
        let dw = DepthwiseConv2d::new(
            ps,
            &format!("{name}.dw"),
            hidden,
            Conv2dSpec::new(3, stride, 1),
            rng,
        );
        let bn_dw = BatchNorm2d::new(ps, &format!("{name}.dw.bn"), hidden);
        let project = Conv2d::new(
            ps,
            &format!("{name}.project.conv"),
            hidden,
            out_ch,
            Conv2dSpec::new(1, 1, 0),
            false,
            rng,
        );
        let bn_proj = BatchNorm2d::new(ps, &format!("{name}.project.bn"), out_ch);
        InvertedResidual {
            expand,
            dw,
            bn_dw,
            act_dw: Relu6::new(),
            project,
            bn_proj,
            use_res: stride == 1 && in_ch == out_ch,
        }
    }
}

impl Layer for InvertedResidual {
    fn layer_kind(&self) -> &'static str {
        "InvertedResidual"
    }

    fn forward(
        &mut self,
        ps: &ParamSet,
        x: &Tensor,
        ctx: &ForwardCtx,
    ) -> Result<(Tensor, Cache), NnError> {
        // One recorded chain for the whole block: each BN+ReLU6 pair
        // fuses with its activation fake-quant, and the linear bottleneck
        // fuses bn_proj with the identity residual when present.
        let mut rec = Recorder::new(ps, ctx, x.clone());
        let has_expand = self.expand.is_some();
        if let Some((c, b, a)) = &mut self.expand {
            rec.run(c)?;
            rec.run(b)?;
            rec.run(a)?;
        }
        rec.run(&mut self.dw)?;
        rec.run(&mut self.bn_dw)?;
        rec.run(&mut self.act_dw)?;
        rec.run(&mut self.project)?;
        rec.run(&mut self.bn_proj)?;
        if self.use_res {
            rec.push_add(x.clone())?;
        }
        let (out, caches) = rec.finish()?;
        let mut it = caches.into_iter();
        let expand_cache = if has_expand {
            match (it.next(), it.next(), it.next()) {
                (Some(cc), Some(bc), Some(ac)) => Some((cc, bc, ac)),
                _ => {
                    return Err(NnError::CacheMismatch {
                        layer: "InvertedResidual".into(),
                    })
                }
            }
        } else {
            None
        };
        let (dw, bn_dw, act_dw, project, bn_proj) =
            match (it.next(), it.next(), it.next(), it.next(), it.next()) {
                (Some(d), Some(bd), Some(ad), Some(p), Some(bp)) => (d, bd, ad, p, bp),
                _ => {
                    return Err(NnError::CacheMismatch {
                        layer: "InvertedResidual".into(),
                    })
                }
            };
        Ok((
            out,
            Cache::new(IrCache {
                expand: expand_cache,
                dw,
                bn_dw,
                act_dw,
                project,
                bn_proj,
            }),
        ))
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor, NnError> {
        let c = cache.downcast::<IrCache>("InvertedResidual")?;
        let dp = self.bn_proj.backward(ps, &c.bn_proj, dy, gs)?;
        let dd3 = self.project.backward(ps, &c.project, &dp, gs)?;
        let dd2 = self.act_dw.backward(ps, &c.act_dw, &dd3, gs)?;
        let dd1 = self.bn_dw.backward(ps, &c.bn_dw, &dd2, gs)?;
        let dh = self.dw.backward(ps, &c.dw, &dd1, gs)?;
        let dx_main = match (&self.expand, &c.expand) {
            (Some((conv, bn, act)), Some((cc, bc, ac))) => {
                let d3 = act.backward(ps, ac, &dh, gs)?;
                let d2 = bn.backward(ps, bc, &d3, gs)?;
                conv.backward(ps, cc, &d2, gs)?
            }
            (None, None) => dh,
            _ => {
                return Err(NnError::CacheMismatch {
                    layer: "InvertedResidual".into(),
                })
            }
        };
        if self.use_res {
            Ok(dx_main.add(dy)?)
        } else {
            Ok(dx_main)
        }
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        let mut v = Vec::new();
        if let Some((_, b, _)) = &self.expand {
            v.extend(b.state_tensors());
        }
        v.extend(self.bn_dw.state_tensors());
        v.extend(self.bn_proj.state_tensors());
        v
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = Vec::new();
        if let Some((_, b, _)) = &mut self.expand {
            v.extend(b.state_tensors_mut());
        }
        v.extend(self.bn_dw.state_tensors_mut());
        v.extend(self.bn_proj.state_tensors_mut());
        v
    }
}

/// Builds a width-scaled MobileNetV2 backbone
/// `[N, 3, H, W] -> [N, feat_dim]`.
///
/// Stage table (scaled-down version of the reference network, preserving
/// the expansion-factor pattern): stem 3×3 conv, then inverted residuals
/// `(t, c, n, s)` = (1, w, 1, 1), (6, 2w, 2, 2), (6, 4w, 2, 2), followed by
/// a 1×1 conv to `8w` features and global average pooling.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn build_mobilenet_v2(
    width: usize,
    ps: &mut ParamSet,
    rng: &mut StdRng,
) -> (Sequential, usize) {
    assert!(width > 0, "width must be positive");
    let mut net = Sequential::new();
    net.push(Conv2d::new(
        ps,
        "stem.conv",
        3,
        width,
        Conv2dSpec::new(3, 1, 1),
        false,
        rng,
    ));
    net.push(BatchNorm2d::new(ps, "stem.bn", width));
    net.push(Relu6::new());

    let stages: [(usize, usize, usize, usize); 3] =
        [(1, width, 1, 1), (6, 2 * width, 2, 2), (6, 4 * width, 2, 2)];
    let mut in_ch = width;
    for (si, &(t, c, n, s)) in stages.iter().enumerate() {
        for bi in 0..n {
            let stride = if bi == 0 { s } else { 1 };
            net.push(InvertedResidual::new(
                ps,
                &format!("ir{si}.{bi}"),
                in_ch,
                c,
                t,
                stride,
                rng,
            ));
            in_ch = c;
        }
    }
    let feat = 8 * width;
    net.push(Conv2d::new(
        ps,
        "head.conv",
        in_ch,
        feat,
        Conv2dSpec::new(1, 1, 0),
        false,
        rng,
    ));
    net.push(BatchNorm2d::new(ps, "head.bn", feat));
    net.push(Relu6::new());
    net.push(GlobalAvgPool::new());
    (net, feat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn inverted_residual_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ir = InvertedResidual::new(&mut ps, "ir", 4, 4, 6, 1, &mut rng);
        assert!(ir.use_res);
        let x = Tensor::ones(&[2, 4, 6, 6]);
        let (y, _) = ir.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 4, 6, 6]);

        let mut ir2 = InvertedResidual::new(&mut ps, "ir2", 4, 8, 6, 2, &mut rng);
        assert!(!ir2.use_res);
        let (y2, _) = ir2.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        assert_eq!(y2.dims(), &[2, 8, 3, 3]);
    }

    #[test]
    fn t1_block_has_no_expand_stage() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let ir = InvertedResidual::new(&mut ps, "ir", 4, 4, 1, 1, &mut rng);
        assert!(ir.expand.is_none());
        // dw weight + 2 bn(gamma,beta) + project + bn = 1 + 2 + 1 + 2
        assert_eq!(ps.len(), 6);
    }

    #[test]
    fn inverted_residual_gradcheck() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let ir = InvertedResidual::new(&mut ps, "ir", 3, 3, 2, 1, &mut rng);
        cq_nn::gradcheck::check_layer_soft(ir, ps, &[2, 3, 4, 4], &ForwardCtx::train(), 8e-2);
    }

    #[test]
    fn inverted_residual_gradcheck_strided_no_res() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let ir = InvertedResidual::new(&mut ps, "ir", 3, 4, 2, 2, &mut rng);
        cq_nn::gradcheck::check_layer_soft(ir, ps, &[2, 3, 4, 4], &ForwardCtx::train(), 8e-2);
    }

    #[test]
    fn mobilenet_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let (mut net, dim) = build_mobilenet_v2(4, &mut ps, &mut rng);
        assert_eq!(dim, 32);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let (y, _) = net.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
        assert_eq!(y.dims(), &[2, 32]);
    }

    #[test]
    fn mobilenet_backward_finite() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let (mut net, dim) = build_mobilenet_v2(2, &mut ps, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (_, cache) = net.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        let mut gs = ps.zero_grads();
        net.backward(&ps, &cache, &Tensor::ones(&[2, dim]), &mut gs)
            .unwrap();
        assert!(gs.is_finite());
        assert!(gs.global_norm() > 0.0);
    }
}
