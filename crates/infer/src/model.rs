//! Plan-driven conversion of a trained [`Encoder`] into an integer
//! program, and the executor that runs it.
//!
//! Conversion walks the symbolic [`Plan`] of the encoder's architecture
//! (the same plan `cq-models` builds alongside every real network, so
//! layer names match the parameter set exactly), consuming batch-norm
//! running statistics positionally in plan order — which a
//! `cq-models` invariant guarantees equals `Encoder::state_tensors()`
//! order. Every batch norm that directly follows a conv / depthwise /
//! linear layer is folded into that layer's *per-channel rescale*
//! (gain `gamma/sqrt(var+eps)`, shift absorbing bias/mean/beta) rather
//! than its weights: weight-space folding would requantize on a grid
//! quantization-aware training never saw, and the per-layer discrepancy
//! compounds over deep stacks. The rare unfoldable position falls back
//! to an explicit per-channel scale/shift op.
//!
//! Execution quantizes each MAC layer's input tensor to i8 on the fly
//! (the same zero-anchored per-tensor grid the fake-quant training path
//! uses — for post-ReLU inputs the re-derived grid is identical, so
//! those MACs are integer-exact realizations of the f32 fake-quant
//! computation), runs the multiply-accumulate entirely in i8×i8→i32
//! through [`cq_tensor::gemm::int8`], then applies one final f32
//! rescale per output element:
//!
//! ```text
//! y[o,j] = sa·sw·gain[o]·(dot[o,j] + za·wsum[o] + zw·asum[j] + K·za·zw) + shift[o]
//! ```
//!
//! with the zero-point corrections evaluated in i64 (`wsum` precomputed
//! per row, `asum` summed per input column at run time). Convolution
//! padding uses the stored i8 code `-za` (true code 0), so padded taps
//! cancel exactly inside the correction. Everything between MACs
//! (activations, pooling, residual adds) runs in f32.
//!
//! At conversion time every MAC layer is checked against the shared
//! accumulator-headroom proof ([`cq_quant::intmath::acc_fits_i32`], the
//! same bound `cq-check quantflow` certifies): a layer whose tap count
//! could overflow i32 at 8 bits is rejected with
//! [`InferError::Headroom`], never silently converted.

use std::collections::HashMap;

use cq_core::TrainState;
use cq_models::plan::{backbone_plan, mlp_head_plan};
use cq_models::{Encoder, EncoderConfig, HeadConfig};
use cq_nn::spec::{LayerKind, Plan};
use cq_quant::intmath::{acc_fits_i32, INT_INFER_MAX_BITS};
use cq_tensor::gemm::int8::{gemm_i8, par_gemm_i8, IntKind};
use cq_tensor::par::parallel_chunks_mut;
use cq_tensor::{
    avg_pool2d, depthwise_conv2d_i8, global_avg_pool, im2col_i8, max_pool2d, Conv2dSpec, Tensor,
};

use crate::quantize::{quantize_activations, quantize_weights};
use crate::InferError;

/// A quantized multiply-accumulate layer: i8 weight codes plus the
/// per-output-channel metadata for the final rescale.
#[derive(Debug, Clone)]
struct IntMac {
    /// Layer name (diagnostics only).
    name: String,
    /// Output channels / features.
    rows: usize,
    /// Reduction length (taps).
    cols: usize,
    /// Stored i8 weight codes, `[rows, cols]`.
    codes: Vec<i8>,
    /// Per-tensor weight grid step.
    wstep: f32,
    /// Weight zero point (true code = stored + `wzp`).
    wzp: i32,
    /// Per-row stored-code sum (zero-point correction factor).
    wsum: Vec<i32>,
    /// Per-row rescale gain (folded batch-norm `gamma/sqrt(var+eps)`,
    /// 1.0 when no batch norm follows).
    gain: Vec<f32>,
    /// Per-row f32 shift applied after the rescale (bias with batch-norm
    /// mean/beta folded in).
    shift: Vec<f32>,
}

impl IntMac {
    /// Rescales one row-major `[rows, cota]` i32 accumulator block into
    /// `out`. `asum[j]` is the stored-code column sum of the activation
    /// (shared by every output row); the zero-point corrections run in
    /// i64:
    /// `out[o,j] = astep·wstep·gain[o]·(acc[o,j] + za·wsum[o] + wzp·asum[j] + K·za·wzp) + shift[o]`.
    fn rescale(
        &self,
        acc: &[i32],
        asum: &[i32],
        cota: usize,
        astep: f32,
        azp: i32,
        out: &mut [f32],
    ) {
        debug_assert_eq!(acc.len(), self.rows * cota);
        debug_assert_eq!(asum.len(), cota);
        debug_assert_eq!(out.len(), self.rows * cota);
        let za = azp as i64;
        let zw = self.wzp as i64;
        let kzz = self.cols as i64 * za * zw;
        for o in 0..self.rows {
            let m = astep * self.wstep * self.gain[o];
            let row_corr = za * self.wsum[o] as i64 + kzz;
            let b = self.shift[o];
            let arow = &acc[o * cota..(o + 1) * cota];
            let orow = &mut out[o * cota..(o + 1) * cota];
            for ((dst, &a), &s) in orow.iter_mut().zip(arow).zip(asum) {
                *dst = m * (a as i64 + row_corr + zw * s as i64) as f32 + b;
            }
        }
    }

    /// Like [`IntMac::rescale`] but with a per-element `asum` of the same
    /// layout as `acc` (depthwise convolution: each output element has
    /// its own tap window).
    fn rescale_elems(&self, acc: &[i32], asum: &[i32], astep: f32, azp: i32, out: &mut [f32]) {
        debug_assert_eq!(acc.len(), out.len());
        debug_assert_eq!(asum.len(), out.len());
        let cota = acc.len() / self.rows.max(1);
        let za = azp as i64;
        let zw = self.wzp as i64;
        let kzz = self.cols as i64 * za * zw;
        for o in 0..self.rows {
            let m = astep * self.wstep * self.gain[o];
            let row_corr = za * self.wsum[o] as i64 + kzz;
            let b = self.shift[o];
            let r = o * cota..(o + 1) * cota;
            for ((dst, &a), &s) in out[r.clone()].iter_mut().zip(&acc[r.clone()]).zip(&asum[r]) {
                *dst = m * (a as i64 + row_corr + zw * s as i64) as f32 + b;
            }
        }
    }
}

/// One operation of the integer program.
#[derive(Debug, Clone)]
enum IntOp {
    /// Dense convolution via `im2col_i8` + i8 GEMM.
    Conv {
        /// Conv geometry.
        spec: Conv2dSpec,
        /// Input channels.
        in_ch: usize,
        /// Quantized weights `[out_ch, in_ch·kh·kw]`.
        mac: IntMac,
    },
    /// Depthwise convolution (`rows == channels`, `cols == kh·kw`).
    Depthwise {
        /// Conv geometry.
        spec: Conv2dSpec,
        /// Quantized per-channel kernels.
        mac: IntMac,
    },
    /// Fully connected layer via i8 GEMM (Nt layout).
    Linear {
        /// Quantized weights `[out_features, in_features]`.
        mac: IntMac,
    },
    /// Unfolded batch norm fallback: `y = scale[c]·x + shift[c]`.
    BatchNorm {
        /// Per-channel multiplier `gamma/sqrt(var+eps)`.
        scale: Vec<f32>,
        /// Per-channel offset `beta - mean·scale`.
        shift: Vec<f32>,
    },
    /// `max(x, 0)`.
    Relu,
    /// `min(max(x, 0), 6)`.
    Relu6,
    /// Max pooling (f32).
    MaxPool(Conv2dSpec),
    /// Average pooling (f32).
    AvgPool(Conv2dSpec),
    /// Global average pooling; collapses spatial extent to features.
    GlobalAvgPool,
    /// Residual block: `main(x) + skip(x)` (identity skip when `None`).
    Residual {
        /// Main branch program.
        main: Vec<IntOp>,
        /// Projection shortcut program, or identity.
        skip: Option<Vec<IntOp>>,
    },
}

/// Pre-quantization MAC layer: f32 weights awaiting requantization, plus
/// the per-row rescale gain/shift a following batch norm folds into.
struct RawMac {
    name: String,
    rows: usize,
    cols: usize,
    w: Vec<f32>,
    gain: Vec<f32>,
    bias: Vec<f32>,
}

/// Pre-quantization op stream (f32 weights, batch norms already folded).
enum RawOp {
    Conv {
        spec: Conv2dSpec,
        in_ch: usize,
        mac: RawMac,
    },
    Depthwise {
        spec: Conv2dSpec,
        mac: RawMac,
    },
    Linear {
        mac: RawMac,
    },
    BatchNorm {
        scale: Vec<f32>,
        shift: Vec<f32>,
    },
    Relu,
    Relu6,
    MaxPool(Conv2dSpec),
    AvgPool(Conv2dSpec),
    GlobalAvgPool,
    Residual {
        main: Vec<RawOp>,
        skip: Option<Vec<RawOp>>,
    },
}

impl RawOp {
    /// The pending MAC to fold a following batch norm into, if this op
    /// is a MAC with matching channel count.
    fn foldable_mac(&mut self, channels: usize) -> Option<&mut RawMac> {
        let mac = match self {
            RawOp::Conv { mac, .. } | RawOp::Depthwise { mac, .. } | RawOp::Linear { mac } => mac,
            _ => return None,
        };
        (mac.rows == channels).then_some(mac)
    }
}

/// Walks a plan against a parameter set and state-tensor stream.
struct Converter<'a> {
    params: HashMap<&'a str, &'a Tensor>,
    state: Vec<&'a Tensor>,
    state_pos: usize,
}

impl<'a> Converter<'a> {
    fn param(&self, name: &str, len: usize) -> Result<&'a Tensor, InferError> {
        let t = self
            .params
            .get(name)
            .copied()
            .ok_or_else(|| InferError::MissingParam(name.to_string()))?;
        if t.len() != len {
            return Err(InferError::Shape {
                name: name.to_string(),
                expected: vec![len],
                got: t.dims().to_vec(),
            });
        }
        Ok(t)
    }

    /// Consumes the next `(running_mean, running_var)` pair from the
    /// state stream, validating channel count.
    fn next_state_pair(
        &mut self,
        name: &str,
        channels: usize,
    ) -> Result<(&'a [f32], &'a [f32]), InferError> {
        if self.state_pos + 2 > self.state.len() {
            return Err(InferError::StateExhausted(name.to_string()));
        }
        let mean = self.state[self.state_pos];
        let var = self.state[self.state_pos + 1];
        self.state_pos += 2;
        if mean.len() != channels || var.len() != channels {
            return Err(InferError::Shape {
                name: format!("{name} running stats"),
                expected: vec![channels],
                got: mean.dims().to_vec(),
            });
        }
        Ok((mean.as_slice(), var.as_slice()))
    }

    fn convert_plan(&mut self, plan: &Plan) -> Result<Vec<RawOp>, InferError> {
        let mut ops = Vec::new();
        for layer in plan.layers() {
            self.convert_layer(&layer.name, &layer.kind, &mut ops)?;
        }
        Ok(ops)
    }

    fn convert_layer(
        &mut self,
        name: &str,
        kind: &LayerKind,
        ops: &mut Vec<RawOp>,
    ) -> Result<(), InferError> {
        match kind {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                spec,
                bias,
            } => {
                let cols = in_ch * spec.kernel.0 * spec.kernel.1;
                let w = self.param(&format!("{name}.weight"), out_ch * cols)?;
                let b = if *bias {
                    self.param(&format!("{name}.bias"), *out_ch)?
                        .as_slice()
                        .to_vec()
                } else {
                    vec![0.0; *out_ch]
                };
                ops.push(RawOp::Conv {
                    spec: *spec,
                    in_ch: *in_ch,
                    mac: RawMac {
                        name: name.to_string(),
                        rows: *out_ch,
                        cols,
                        w: w.as_slice().to_vec(),
                        gain: vec![1.0; *out_ch],
                        bias: b,
                    },
                });
            }
            LayerKind::DepthwiseConv2d { channels, spec } => {
                let cols = spec.kernel.0 * spec.kernel.1;
                let w = self.param(&format!("{name}.weight"), channels * cols)?;
                ops.push(RawOp::Depthwise {
                    spec: *spec,
                    mac: RawMac {
                        name: name.to_string(),
                        rows: *channels,
                        cols,
                        w: w.as_slice().to_vec(),
                        gain: vec![1.0; *channels],
                        bias: vec![0.0; *channels],
                    },
                });
            }
            LayerKind::Linear {
                in_features,
                out_features,
                bias,
            } => {
                let w = self.param(&format!("{name}.weight"), out_features * in_features)?;
                let b = if *bias {
                    self.param(&format!("{name}.bias"), *out_features)?
                        .as_slice()
                        .to_vec()
                } else {
                    vec![0.0; *out_features]
                };
                ops.push(RawOp::Linear {
                    mac: RawMac {
                        name: name.to_string(),
                        rows: *out_features,
                        cols: *in_features,
                        w: w.as_slice().to_vec(),
                        gain: vec![1.0; *out_features],
                        bias: b,
                    },
                });
            }
            LayerKind::BatchNorm2d { channels } | LayerKind::BatchNorm1d { features: channels } => {
                let c = *channels;
                let gamma = self.param(&format!("{name}.gamma"), c)?.as_slice().to_vec();
                let beta = self.param(&format!("{name}.beta"), c)?.as_slice().to_vec();
                let (mean, var) = self.next_state_pair(name, c)?;
                match ops.last_mut().and_then(|op| op.foldable_mac(c)) {
                    Some(mac) => {
                        // Fold into the rescale, not the weights: the
                        // quantization grid must stay the one training saw.
                        for o in 0..mac.rows {
                            let g = gamma[o] / (var[o] + crate::quantize::BN_EPS).sqrt();
                            mac.bias[o] = beta[o] + g * (mac.bias[o] - mean[o]);
                            mac.gain[o] *= g;
                        }
                    }
                    None => {
                        let scale: Vec<f32> = gamma
                            .iter()
                            .zip(var)
                            .map(|(&g, &v)| g / (v + crate::quantize::BN_EPS).sqrt())
                            .collect();
                        let shift: Vec<f32> = beta
                            .iter()
                            .zip(mean)
                            .zip(&scale)
                            .map(|((&b, &m), &s)| b - m * s)
                            .collect();
                        ops.push(RawOp::BatchNorm { scale, shift });
                    }
                }
            }
            LayerKind::Relu => ops.push(RawOp::Relu),
            LayerKind::Relu6 => ops.push(RawOp::Relu6),
            LayerKind::MaxPool2d { spec } => ops.push(RawOp::MaxPool(*spec)),
            LayerKind::AvgPool2d { spec } => ops.push(RawOp::AvgPool(*spec)),
            LayerKind::GlobalAvgPool => ops.push(RawOp::GlobalAvgPool),
            LayerKind::Residual { main, skip } => {
                let main_ops = self.convert_plan(main)?;
                let skip_ops = match skip {
                    Some(p) => Some(self.convert_plan(p)?),
                    None => None,
                };
                ops.push(RawOp::Residual {
                    main: main_ops,
                    skip: skip_ops,
                });
            }
            LayerKind::Block(inner) => {
                ops.extend(self.convert_plan(inner)?);
            }
        }
        Ok(())
    }
}

/// Requantizes a folded MAC to i8, enforcing the accumulator headroom
/// proof (`taps + 1` for the bias tap, matching the quantflow bound).
fn finalize_mac(mac: RawMac) -> Result<IntMac, InferError> {
    let taps = mac.cols as u64 + 1;
    let fits = acc_fits_i32(taps, INT_INFER_MAX_BITS).map_err(InferError::Quant)?;
    if !fits {
        return Err(InferError::Headroom {
            layer: mac.name,
            taps,
        });
    }
    let q = quantize_weights(&mac.w, mac.rows, mac.cols);
    Ok(IntMac {
        name: mac.name,
        rows: mac.rows,
        cols: mac.cols,
        codes: q.codes,
        wstep: q.step,
        wzp: q.zp,
        wsum: q.wsum,
        gain: mac.gain,
        shift: mac.bias,
    })
}

fn finalize_ops(raw: Vec<RawOp>) -> Result<Vec<IntOp>, InferError> {
    raw.into_iter()
        .map(|op| {
            Ok(match op {
                RawOp::Conv { spec, in_ch, mac } => IntOp::Conv {
                    spec,
                    in_ch,
                    mac: finalize_mac(mac)?,
                },
                RawOp::Depthwise { spec, mac } => IntOp::Depthwise {
                    spec,
                    mac: finalize_mac(mac)?,
                },
                RawOp::Linear { mac } => IntOp::Linear {
                    mac: finalize_mac(mac)?,
                },
                RawOp::BatchNorm { scale, shift } => IntOp::BatchNorm { scale, shift },
                RawOp::Relu => IntOp::Relu,
                RawOp::Relu6 => IntOp::Relu6,
                RawOp::MaxPool(s) => IntOp::MaxPool(s),
                RawOp::AvgPool(s) => IntOp::AvgPool(s),
                RawOp::GlobalAvgPool => IntOp::GlobalAvgPool,
                RawOp::Residual { main, skip } => IntOp::Residual {
                    main: finalize_ops(main)?,
                    skip: skip.map(finalize_ops).transpose()?,
                },
            })
        })
        .collect()
}

/// Intermediate activation flowing through the integer program.
#[derive(Debug, Clone)]
enum Act {
    /// `[n, c, h, w]` spatial tensor.
    Spatial {
        data: Vec<f32>,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    },
    /// `[n, f]` feature matrix.
    Flat { data: Vec<f32>, n: usize, f: usize },
}

impl Act {
    fn data(&self) -> &[f32] {
        match self {
            Act::Spatial { data, .. } | Act::Flat { data, .. } => data,
        }
    }

    fn data_mut(&mut self) -> &mut [f32] {
        match self {
            Act::Spatial { data, .. } | Act::Flat { data, .. } => data,
        }
    }

    fn to_tensor(&self) -> Result<Tensor, InferError> {
        match self {
            Act::Spatial { data, n, c, h, w } => {
                Tensor::from_vec(data.clone(), &[*n, *c, *h, *w]).map_err(InferError::Tensor)
            }
            Act::Flat { data, n, f } => {
                Tensor::from_vec(data.clone(), &[*n, *f]).map_err(InferError::Tensor)
            }
        }
    }
}

/// Result of one [`IntEncoder::forward`] pass.
#[derive(Debug, Clone)]
pub struct IntOutput {
    /// Backbone features, `[n, feat_dim]`.
    pub features: Tensor,
    /// Projection-head output, `[n, proj_dim]` (equals `features` when
    /// the encoder has no projector).
    pub projection: Tensor,
}

/// A trained encoder converted to an i8 integer inference program.
pub struct IntEncoder {
    backbone: Vec<IntOp>,
    head: Vec<IntOp>,
    feat_dim: usize,
    proj_dim: usize,
}

impl IntEncoder {
    /// Converts a trained [`Encoder`] (weights + batch-norm running
    /// statistics) into an integer program.
    ///
    /// # Errors
    ///
    /// Fails if the encoder's plan cannot be built, a parameter is
    /// missing or mis-shaped, or any MAC layer's tap count fails the
    /// i32 accumulator headroom proof.
    pub fn from_encoder(enc: &Encoder) -> Result<IntEncoder, InferError> {
        let cfg = enc.config();
        let (bplan, feat_dim) = backbone_plan(cfg.arch, cfg.width).map_err(InferError::Spec)?;
        let head_plan = cfg.proj.map(|(hidden, out)| {
            let hc = if cfg.proj_bn {
                HeadConfig::byol(feat_dim, hidden, out)
            } else {
                HeadConfig::simclr(feat_dim, hidden, out)
            };
            mlp_head_plan(&hc, "proj")
        });
        let proj_dim = cfg.proj.map_or(feat_dim, |(_, out)| out);

        let state = enc.state_tensors();
        let mut conv = Converter {
            params: enc.params().iter().map(|(_, name, t)| (name, t)).collect(),
            state,
            state_pos: 0,
        };
        let backbone = finalize_ops(conv.convert_plan(&bplan)?)?;
        let head = match &head_plan {
            Some(p) => finalize_ops(conv.convert_plan(p)?)?,
            None => Vec::new(),
        };
        if conv.state_pos != conv.state.len() {
            return Err(InferError::StateExhausted(format!(
                "{} state tensors unconsumed after plan walk",
                conv.state.len() - conv.state_pos
            )));
        }
        Ok(IntEncoder {
            backbone,
            head,
            feat_dim,
            proj_dim,
        })
    }

    /// Rebuilds the encoder a checkpoint describes and converts it.
    ///
    /// Copies parameters by name and batch-norm state positionally (the
    /// encoder's state tensors are the prefix of the method's state
    /// list), then delegates to [`IntEncoder::from_encoder`].
    ///
    /// # Errors
    ///
    /// Fails if the checkpoint's parameter set does not cover the
    /// architecture `cfg` describes, shapes mismatch, or conversion
    /// itself fails.
    pub fn from_train_state(
        st: &TrainState,
        cfg: &EncoderConfig,
    ) -> Result<IntEncoder, InferError> {
        IntEncoder::from_encoder(&encoder_from_train_state(st, cfg)?)
    }

    /// Backbone feature dimension.
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// Projection output dimension.
    pub fn proj_dim(&self) -> usize {
        self.proj_dim
    }

    /// Number of quantized MAC layers in the program.
    pub fn num_macs(&self) -> usize {
        fn count(ops: &[IntOp]) -> usize {
            ops.iter()
                .map(|op| match op {
                    IntOp::Conv { .. } | IntOp::Depthwise { .. } | IntOp::Linear { .. } => 1,
                    IntOp::Residual { main, skip } => {
                        count(main) + skip.as_deref().map_or(0, count)
                    }
                    _ => 0,
                })
                .sum()
        }
        count(&self.backbone) + count(&self.head)
    }

    /// Runs the integer program on a `[n, 3, h, w]` batch.
    ///
    /// # Errors
    ///
    /// Fails on a mis-shaped input or invalid conv/pool geometry for the
    /// given spatial size.
    pub fn forward(&self, x: &Tensor) -> Result<IntOutput, InferError> {
        let feats = self.run_backbone(x)?;
        let features = feats.to_tensor()?;
        let projection = if self.head.is_empty() {
            features.clone()
        } else {
            run_ops(&self.head, feats)?.to_tensor()?
        };
        Ok(IntOutput {
            features,
            projection,
        })
    }

    /// Runs only the backbone, returning `[n, feat_dim]` features.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IntEncoder::forward`].
    pub fn features(&self, x: &Tensor) -> Result<Tensor, InferError> {
        self.run_backbone(x)?.to_tensor()
    }

    fn run_backbone(&self, x: &Tensor) -> Result<Act, InferError> {
        let dims = x.dims();
        if dims.len() != 4 {
            return Err(InferError::Input(format!(
                "expected [n, c, h, w] input, got {dims:?}"
            )));
        }
        let act = Act::Spatial {
            data: x.as_slice().to_vec(),
            n: dims[0],
            c: dims[1],
            h: dims[2],
            w: dims[3],
        };
        run_ops(&self.backbone, act)
    }
}

/// Executes an op stream over an activation.
/// Rebuilds the f32 [`Encoder`] a checkpoint describes: parameters are
/// copied by name, batch-norm running statistics positionally (the
/// encoder's state tensors are the prefix of the method's state list).
///
/// This is the f32 twin of [`IntEncoder::from_train_state`] — callers
/// comparing the integer path against the fake-quant reference on the
/// same checkpoint (e.g. `pilot --infer`) need both.
///
/// # Errors
///
/// Fails if the checkpoint's parameter set does not cover the
/// architecture `cfg` describes or shapes mismatch.
pub fn encoder_from_train_state(
    st: &TrainState,
    cfg: &EncoderConfig,
) -> Result<Encoder, InferError> {
    let mut enc = Encoder::new(cfg, 0).map_err(InferError::Nn)?;
    let src: HashMap<&str, &Tensor> = st.params.iter().map(|(_, n, t)| (n, t)).collect();
    let ids: Vec<_> = enc
        .params()
        .iter()
        .map(|(id, name, t)| (id, name.to_string(), t.dims().to_vec()))
        .collect();
    for (id, name, dims) in ids {
        let t = src
            .get(name.as_str())
            .copied()
            .ok_or_else(|| InferError::MissingParam(name.clone()))?;
        if t.dims() != dims.as_slice() {
            return Err(InferError::Shape {
                name,
                expected: dims,
                got: t.dims().to_vec(),
            });
        }
        enc.params_mut()
            .get_mut(id)
            .as_mut_slice()
            .copy_from_slice(t.as_slice());
    }
    let n_state = enc.state_tensors().len();
    if st.state.len() < n_state {
        return Err(InferError::StateExhausted(format!(
            "checkpoint has {} state tensors, encoder needs {n_state}",
            st.state.len()
        )));
    }
    for (dst, s) in enc.state_tensors_mut().into_iter().zip(&st.state) {
        if dst.dims() != s.dims() {
            return Err(InferError::Shape {
                name: "state tensor".to_string(),
                expected: dst.dims().to_vec(),
                got: s.dims().to_vec(),
            });
        }
        dst.as_mut_slice().copy_from_slice(s.as_slice());
    }
    Ok(enc)
}

fn run_ops(ops: &[IntOp], mut act: Act) -> Result<Act, InferError> {
    for op in ops {
        act = run_op(op, act)?;
    }
    Ok(act)
}

fn run_op(op: &IntOp, act: Act) -> Result<Act, InferError> {
    match op {
        IntOp::Conv { spec, in_ch, mac } => {
            let Act::Spatial { data, n, c, h, w } = act else {
                return Err(InferError::Input("conv applied to flat activation".into()));
            };
            if c != *in_ch {
                return Err(InferError::Input(format!(
                    "conv {} expects {in_ch} channels, got {c}",
                    mac.name
                )));
            }
            let (oh, ow) = spec.out_hw(h, w).map_err(InferError::Tensor)?;
            let q = quantize_activations(&data);
            let pad = (-q.zp) as i8;
            let cota = oh * ow;
            let mut out = vec![0.0f32; n * mac.rows * cota];
            parallel_chunks_mut(&mut out, mac.rows * cota, |i, chunk| {
                let sample = &q.codes[i * c * h * w..(i + 1) * c * h * w];
                let mut cols = vec![0i8; mac.cols * cota];
                im2col_i8(sample, c, h, w, spec, pad, &mut cols);
                // Stored-code column sums (pad bytes included, so padded
                // taps cancel inside the zero-point correction).
                let mut asum = vec![0i32; cota];
                for krow in cols.chunks_exact(cota) {
                    for (s, &v) in asum.iter_mut().zip(krow) {
                        *s += v as i32;
                    }
                }
                let mut acc = vec![0i32; mac.rows * cota];
                gemm_i8(
                    IntKind::Nn,
                    &mac.codes,
                    &cols,
                    mac.rows,
                    cota,
                    mac.cols,
                    &mut acc,
                );
                mac.rescale(&acc, &asum, cota, q.step, q.zp, chunk);
            });
            Ok(Act::Spatial {
                data: out,
                n,
                c: mac.rows,
                h: oh,
                w: ow,
            })
        }
        IntOp::Depthwise { spec, mac } => {
            let Act::Spatial { data, n, c, h, w } = act else {
                return Err(InferError::Input(
                    "depthwise conv applied to flat activation".into(),
                ));
            };
            if c != mac.rows {
                return Err(InferError::Input(format!(
                    "depthwise {} expects {} channels, got {c}",
                    mac.name, mac.rows
                )));
            }
            let (oh, ow) = spec.out_hw(h, w).map_err(InferError::Tensor)?;
            let q = quantize_activations(&data);
            let pad = (-q.zp) as i8;
            let cota = oh * ow;
            // All-ones kernel: running the depthwise conv with it yields
            // the per-window stored-code sum (`asum`), pad bytes included.
            let ones = vec![1i8; mac.rows * mac.cols];
            let mut out = vec![0.0f32; n * c * cota];
            parallel_chunks_mut(&mut out, c * cota, |i, chunk| {
                let sample = &q.codes[i * c * h * w..(i + 1) * c * h * w];
                let mut acc = vec![0i32; c * cota];
                depthwise_conv2d_i8(sample, &mac.codes, c, h, w, spec, pad, &mut acc);
                let mut asum = vec![0i32; c * cota];
                depthwise_conv2d_i8(sample, &ones, c, h, w, spec, pad, &mut asum);
                mac.rescale_elems(&acc, &asum, q.step, q.zp, chunk);
            });
            Ok(Act::Spatial {
                data: out,
                n,
                c,
                h: oh,
                w: ow,
            })
        }
        IntOp::Linear { mac } => {
            let Act::Flat { data, n, f } = act else {
                return Err(InferError::Input(
                    "linear applied to spatial activation".into(),
                ));
            };
            if f != mac.cols {
                return Err(InferError::Input(format!(
                    "linear {} expects {} features, got {f}",
                    mac.name, mac.cols
                )));
            }
            let q = quantize_activations(&data);
            let mut acc = vec![0i32; n * mac.rows];
            par_gemm_i8(
                IntKind::Nt,
                &q.codes,
                &mac.codes,
                n,
                mac.rows,
                mac.cols,
                &mut acc,
            );
            // Rescale transposed relative to IntMac::rescale: rows here
            // are samples, columns are output features; each sample has
            // one stored-code sum.
            let za = q.zp as i64;
            let zw = mac.wzp as i64;
            let kzz = mac.cols as i64 * za * zw;
            let mut out = vec![0.0f32; n * mac.rows];
            for i in 0..n {
                let asum: i64 = q.codes[i * mac.cols..(i + 1) * mac.cols]
                    .iter()
                    .map(|&v| v as i64)
                    .sum();
                for o in 0..mac.rows {
                    let a = acc[i * mac.rows + o] as i64;
                    let t = a + za * mac.wsum[o] as i64 + zw * asum + kzz;
                    out[i * mac.rows + o] =
                        q.step * mac.wstep * mac.gain[o] * t as f32 + mac.shift[o];
                }
            }
            Ok(Act::Flat {
                data: out,
                n,
                f: mac.rows,
            })
        }
        IntOp::BatchNorm { scale, shift } => {
            let mut act = act;
            match &mut act {
                Act::Spatial { data, c, h, w, .. } => {
                    let (c, hw) = (*c, *h * *w);
                    if c != scale.len() {
                        return Err(InferError::Input(format!(
                            "batch norm expects {} channels, got {c}",
                            scale.len()
                        )));
                    }
                    for (s, chunk) in data.chunks_mut(hw).enumerate() {
                        let ch = s % c;
                        for v in chunk.iter_mut() {
                            *v = scale[ch] * *v + shift[ch];
                        }
                    }
                }
                Act::Flat { data, f, .. } => {
                    if *f != scale.len() {
                        return Err(InferError::Input(format!(
                            "batch norm expects {} features, got {f}",
                            scale.len()
                        )));
                    }
                    for row in data.chunks_mut(*f) {
                        for (v, (&s, &sh)) in row.iter_mut().zip(scale.iter().zip(shift)) {
                            *v = s * *v + sh;
                        }
                    }
                }
            }
            Ok(act)
        }
        IntOp::Relu => {
            let mut act = act;
            for v in act.data_mut() {
                *v = v.max(0.0);
            }
            snap_to_grid(act.data_mut());
            Ok(act)
        }
        IntOp::Relu6 => {
            let mut act = act;
            for v in act.data_mut() {
                *v = v.clamp(0.0, 6.0);
            }
            snap_to_grid(act.data_mut());
            Ok(act)
        }
        IntOp::MaxPool(spec) => {
            let t = act.to_tensor()?;
            let (y, _) = max_pool2d(&t, spec).map_err(InferError::Tensor)?;
            spatial_from_tensor(y)
        }
        IntOp::AvgPool(spec) => {
            let t = act.to_tensor()?;
            let y = avg_pool2d(&t, spec).map_err(InferError::Tensor)?;
            spatial_from_tensor(y)
        }
        IntOp::GlobalAvgPool => {
            let t = act.to_tensor()?;
            let y = global_avg_pool(&t).map_err(InferError::Tensor)?;
            let dims = y.dims().to_vec();
            Ok(Act::Flat {
                data: y.into_vec(),
                n: dims[0],
                f: dims[1],
            })
        }
        IntOp::Residual { main, skip } => {
            let saved = act.clone();
            let main_out = run_ops(main, act)?;
            let skip_out = match skip {
                Some(ops) => run_ops(ops, saved)?,
                None => saved,
            };
            let mut out = main_out;
            if out.data().len() != skip_out.data().len() {
                return Err(InferError::Input(format!(
                    "residual branch size mismatch: {} vs {}",
                    out.data().len(),
                    skip_out.data().len()
                )));
            }
            for (a, &b) in out.data_mut().iter_mut().zip(skip_out.data()) {
                *a += b;
            }
            Ok(out)
        }
    }
}

/// Projects an activation onto the 8-bit grid at the same point the
/// training path does (post-activation quantization in `cq_nn::act`),
/// using the very same fake quantizer. This is where a deployment
/// runtime would requantize to i8 codes; keeping the projection here —
/// not only at the next MAC's input — matters because *every* consumer
/// of the activation must see grid values: the identity skip of a
/// residual block and the final pooled features read it too, and
/// skipping the projection there lets sub-step errors accumulate per
/// block instead of being absorbed by the grid.
fn snap_to_grid(data: &mut [f32]) {
    cq_quant::fake_quant_into(
        data,
        cq_quant::Precision::Bits(INT_INFER_MAX_BITS),
        cq_quant::QuantMode::Round,
    );
}

fn spatial_from_tensor(t: Tensor) -> Result<Act, InferError> {
    let dims = t.dims().to_vec();
    if dims.len() != 4 {
        return Err(InferError::Input(format!(
            "expected spatial tensor, got {dims:?}"
        )));
    }
    Ok(Act::Spatial {
        data: t.into_vec(),
        n: dims[0],
        c: dims[1],
        h: dims[2],
        w: dims[3],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::fold_batch_norm;
    use cq_models::Arch;
    use cq_nn::{BatchNorm2d, ForwardCtx, Layer, ParamSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Randomizes batch-norm running statistics so folding is non-trivial
    /// (a fresh encoder has mean 0 / var 1, which would make BN ≈ identity).
    fn randomize_state(enc: &mut Encoder, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, t) in enc.state_tensors_mut().into_iter().enumerate() {
            let mean_like = i % 2 == 0;
            for v in t.as_mut_slice() {
                *v = if mean_like {
                    rng.gen_range(-0.2..0.2f32)
                } else {
                    rng.gen_range(0.6..1.4f32)
                };
            }
        }
    }

    /// Relative max-abs error of `got` against `want`.
    fn rel_err(got: &Tensor, want: &Tensor) -> f32 {
        let denom = want
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-6);
        got.as_slice()
            .iter()
            .zip(want.as_slice())
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
            / denom
    }

    fn check_parity(cfg: EncoderConfig, seed: u64, tol: f32) {
        let mut enc = Encoder::new(&cfg, seed).unwrap();
        randomize_state(&mut enc, seed ^ 0x5eed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let f32_out = enc.forward(&x, &ForwardCtx::eval()).unwrap();

        let int = IntEncoder::from_encoder(&enc).unwrap();
        assert_eq!(int.feat_dim(), enc.feat_dim());
        assert_eq!(int.proj_dim(), enc.proj_dim());
        assert!(int.num_macs() > 0);
        let int_out = int.forward(&x).unwrap();

        assert_eq!(int_out.features.dims(), f32_out.features.dims());
        assert_eq!(int_out.projection.dims(), f32_out.projection.dims());
        let fe = rel_err(&int_out.features, &f32_out.features);
        let pe = rel_err(&int_out.projection, &f32_out.projection);
        assert!(fe < tol, "feature rel err {fe} >= {tol} for {cfg:?}");
        assert!(pe < tol, "projection rel err {pe} >= {tol} for {cfg:?}");
    }

    #[test]
    fn int_path_tracks_fake_quant_path_tightly() {
        // The integer program realizes the 8-bit fake-quant forward in
        // integer arithmetic. The only inexact sites are MACs whose input
        // the training path leaves unquantized (the image stem, the
        // pooled head input) — everything ReLU-fed is grid-exact — so the
        // two paths must agree far tighter than generic 8-bit error.
        let cfg = EncoderConfig::new(Arch::ResNet18, 8).with_proj(16, 8);
        let mut enc = Encoder::new(&cfg, 41).unwrap();
        randomize_state(&mut enc, 42);
        let mut rng = StdRng::seed_from_u64(43);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let fake8 = ForwardCtx::eval()
            .with_quant(cq_quant::QuantConfig::uniform(cq_quant::Precision::Bits(8)));
        let want = enc.features(&x, &fake8).unwrap();
        let int = IntEncoder::from_encoder(&enc).unwrap();
        let got = int.features(&x).unwrap();
        let e = rel_err(&got, &want);
        assert!(e < 0.02, "int vs fake-quant rel err {e} >= 0.02");
    }

    #[test]
    fn int_features_track_f32_resnet() {
        check_parity(
            EncoderConfig::new(Arch::ResNet18, 8).with_proj(16, 8),
            11,
            0.1,
        );
    }

    #[test]
    fn int_features_track_f32_mobilenet_byol_head() {
        check_parity(
            EncoderConfig::new(Arch::MobileNetV2, 8).with_byol_proj(16, 8),
            13,
            0.1,
        );
    }

    #[test]
    fn backbone_only_projection_equals_features() {
        let cfg = EncoderConfig::new(Arch::ResNet18, 8);
        let enc = Encoder::new(&cfg, 3).unwrap();
        let int = IntEncoder::from_encoder(&enc).unwrap();
        let x = Tensor::zeros(&[1, 3, 16, 16]);
        let out = int.forward(&x).unwrap();
        assert_eq!(out.features.as_slice(), out.projection.as_slice());
    }

    #[test]
    fn headroom_rejects_oversized_mac() {
        // 33025 taps (cols + bias) is the largest count the shared proof
        // admits at 8 bits; one more column must be refused.
        let ok = RawMac {
            name: "fits".into(),
            rows: 1,
            cols: 33024,
            w: vec![0.0; 33024],
            gain: vec![1.0],
            bias: vec![0.0],
        };
        assert!(finalize_mac(ok).is_ok());
        let too_big = RawMac {
            name: "overflows".into(),
            rows: 1,
            cols: 33025,
            w: vec![0.0; 33025],
            gain: vec![1.0],
            bias: vec![0.0],
        };
        match finalize_mac(too_big) {
            Err(InferError::Headroom { layer, taps }) => {
                assert_eq!(layer, "overflows");
                assert_eq!(taps, 33026);
            }
            other => panic!("expected headroom rejection, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn bn_fold_matches_real_batchnorm_eval() {
        // Folding into an identity linear layer must reproduce the real
        // BatchNorm2d eval output exactly — this pins BN_EPS against the
        // cq-nn default.
        let mut ps = ParamSet::new();
        let mut bn = BatchNorm2d::new(&mut ps, "bn", 3);
        let ids: Vec<_> = ps
            .iter()
            .map(|(id, name, _)| (id, name.to_string()))
            .collect();
        let mut rng = StdRng::seed_from_u64(99);
        for (id, name) in &ids {
            for v in ps.get_mut(*id).as_mut_slice() {
                *v = if name.ends_with(".gamma") {
                    rng.gen_range(0.5..1.5f32)
                } else {
                    rng.gen_range(-0.5..0.5f32)
                };
            }
        }
        let mut stats = Vec::new();
        for (i, t) in bn.state_tensors_mut().into_iter().enumerate() {
            for v in t.as_mut_slice() {
                *v = if i == 0 {
                    rng.gen_range(-0.5..0.5f32)
                } else {
                    rng.gen_range(0.4..2.0f32)
                };
            }
            stats.push(t.as_slice().to_vec());
        }

        let gamma = ps
            .iter()
            .find(|(_, n, _)| *n == "bn.gamma")
            .map(|(_, _, t)| t.as_slice().to_vec())
            .unwrap();
        let beta = ps
            .iter()
            .find(|(_, n, _)| *n == "bn.beta")
            .map(|(_, _, t)| t.as_slice().to_vec())
            .unwrap();

        // Identity "linear" per channel: w = I3, bias = 0, then fold.
        let mut w = vec![0.0f32; 9];
        for c in 0..3 {
            w[c * 3 + c] = 1.0;
        }
        let mut bias = vec![0.0f32; 3];
        fold_batch_norm(&mut w, &mut bias, 3, 3, &gamma, &beta, &stats[0], &stats[1]);

        let x = Tensor::randn(&[2, 3, 4, 4], 0.0, 1.0, &mut rng);
        let (want, _) = bn.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
        let hw = 16;
        for (idx, (&xv, &wv)) in x.as_slice().iter().zip(want.as_slice()).enumerate() {
            let c = (idx / hw) % 3;
            let got = w[c * 3 + c] * xv + bias[c];
            assert!(
                (got - wv).abs() < 1e-5,
                "channel {c}: folded {got} vs batchnorm {wv}"
            );
        }
    }

    #[test]
    fn from_train_state_matches_from_encoder() {
        let cfg = EncoderConfig::new(Arch::ResNet18, 8).with_proj(16, 8);
        let mut enc = Encoder::new(&cfg, 21).unwrap();
        randomize_state(&mut enc, 22);
        let st = TrainState {
            version: TrainState::VERSION,
            method_tag: 0,
            pipeline_tag: 0,
            seed: 21,
            batch_size: 4,
            steps_taken: 0,
            epochs_done: 0,
            engine_rng: [1, 2, 3, 4],
            loader_rng: [5, 6, 7, 8],
            history: Default::default(),
            params: enc.params().clone(),
            state: enc.state_tensors().into_iter().cloned().collect(),
            velocity: Vec::new(),
            target: None,
        };
        let from_ckpt = IntEncoder::from_train_state(&st, &cfg).unwrap();
        let direct = IntEncoder::from_encoder(&enc).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let a = from_ckpt.forward(&x).unwrap();
        let b = direct.forward(&x).unwrap();
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        assert_eq!(a.projection.as_slice(), b.projection.as_slice());
    }

    #[test]
    fn from_train_state_rejects_mismatched_checkpoint() {
        let cfg = EncoderConfig::new(Arch::ResNet18, 8);
        let enc = Encoder::new(&cfg, 5).unwrap();
        let st = TrainState {
            version: TrainState::VERSION,
            method_tag: 0,
            pipeline_tag: 0,
            seed: 5,
            batch_size: 4,
            steps_taken: 0,
            epochs_done: 0,
            engine_rng: [1, 2, 3, 4],
            loader_rng: [5, 6, 7, 8],
            history: Default::default(),
            params: ParamSet::new(),
            state: enc.state_tensors().into_iter().cloned().collect(),
            velocity: Vec::new(),
            target: None,
        };
        assert!(matches!(
            IntEncoder::from_train_state(&st, &cfg),
            Err(InferError::MissingParam(_))
        ));
    }

    #[test]
    fn forward_is_thread_count_invariant() {
        // Integer accumulation plus a fixed-order f32 rescale must give
        // bitwise-identical outputs at any worker count.
        let cfg = EncoderConfig::new(Arch::ResNet18, 8).with_proj(16, 8);
        let mut enc = Encoder::new(&cfg, 31).unwrap();
        randomize_state(&mut enc, 32);
        let int = IntEncoder::from_encoder(&enc).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let x = Tensor::randn(&[3, 3, 16, 16], 0.0, 1.0, &mut rng);
        let base = cq_tensor::par::with_thread_limit(1, || int.forward(&x).unwrap());
        for threads in [2, 5, 8] {
            let got = cq_tensor::par::with_thread_limit(threads, || int.forward(&x).unwrap());
            assert_eq!(
                base.features.as_slice(),
                got.features.as_slice(),
                "features diverge at {threads} threads"
            );
            assert_eq!(
                base.projection.as_slice(),
                got.projection.as_slice(),
                "projection diverges at {threads} threads"
            );
        }
    }
}
