//! # cq-infer
//!
//! Post-training integer inference for the Contrastive Quant
//! reproduction: converts a trained encoder (or a CQTS-v1 training
//! checkpoint) into a real i8 program and executes it with
//! i8×i8→i32 integer kernels.
//!
//! The training stack simulates quantization in f32 ("fake quant": the
//! grid projection of `cq-quant` applied between f32 ops). This crate
//! closes the loop to deployment arithmetic:
//!
//! 1. **Scale/zero-point extraction** ([`quantize`]) — activations on a
//!    per-tensor asymmetric zero-extended grid, weights per output
//!    channel on a symmetric grid, both using the repo-wide
//!    round-half-away-from-zero rule pinned by [`cq_quant::intmath`].
//! 2. **Batch-norm folding** — running statistics are folded into the
//!    preceding conv/linear weights before requantization, so the
//!    integer program has one MAC where the f32 network had conv+BN.
//! 3. **Integer execution** ([`model`]) — convolutions lower through
//!    `im2col_i8` into the blocked i8 GEMM kernels of
//!    [`cq_tensor::gemm::int8`]; accumulation stays in i32 end to end
//!    with a single final f32 rescale per layer. Integer accumulation
//!    is associative, so results are bitwise identical at any thread
//!    count — provided accumulators cannot overflow, which conversion
//!    *proves* per layer with the shared headroom bound
//!    ([`cq_quant::intmath::acc_fits_i32`], the same inequality the
//!    `cq-check quantflow` gate certifies) and otherwise refuses to
//!    convert.
//!
//! Parity against the f32 path is threshold-based, not bitwise: the two
//! paths round in different places (the integer path quantizes every MAC
//! input and folds batch norms; the fake-quant path perturbs weights and
//! post-activation tensors in f32). The `cq-bench` parity harness checks
//! max-abs feature error and kNN top-1 agreement across every paper
//! configuration.
//!
//! # Example
//!
//! ```
//! use cq_infer::IntEncoder;
//! use cq_models::{Arch, Encoder, EncoderConfig};
//! use cq_tensor::Tensor;
//!
//! let cfg = EncoderConfig::new(Arch::ResNet18, 8).with_proj(16, 8);
//! let enc = Encoder::new(&cfg, 7)?;
//! let int = IntEncoder::from_encoder(&enc)?;
//! let x = Tensor::zeros(&[2, 3, 16, 16]);
//! let out = int.forward(&x)?;
//! assert_eq!(out.features.dims(), &[2, int.feat_dim()]);
//! assert_eq!(out.projection.dims(), &[2, int.proj_dim()]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod model;
pub mod quantize;

pub use model::{encoder_from_train_state, IntEncoder, IntOutput};
pub use quantize::{quantize_activations, quantize_weights, ActQuant, WeightQuant};

use cq_nn::spec::SpecError;
use cq_nn::NnError;
use cq_quant::QuantError;
use cq_tensor::TensorError;

/// What went wrong during conversion or integer execution.
#[derive(Debug)]
pub enum InferError {
    /// Architecture plan construction failed.
    Spec(SpecError),
    /// Rebuilding the encoder from a checkpoint failed.
    Nn(NnError),
    /// A tensor operation failed (geometry, shapes).
    Tensor(TensorError),
    /// Shared quantization arithmetic rejected a bit-width.
    Quant(QuantError),
    /// A parameter the plan requires is absent from the parameter set.
    MissingParam(String),
    /// A parameter or state tensor has the wrong shape.
    Shape {
        /// Offending tensor's name.
        name: String,
        /// Shape the plan requires.
        expected: Vec<usize>,
        /// Shape found.
        got: Vec<usize>,
    },
    /// Batch-norm state tensors ran out (or were left over) during the
    /// plan walk — the checkpoint does not match the architecture.
    StateExhausted(String),
    /// A MAC layer's tap count fails the i32 accumulator headroom proof
    /// at 8 bits; converting it could overflow silently.
    Headroom {
        /// Offending layer name.
        layer: String,
        /// Tap count (reduction length + bias).
        taps: u64,
    },
    /// The input or an intermediate activation has the wrong form.
    Input(String),
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::Spec(e) => write!(f, "plan construction failed: {e}"),
            InferError::Nn(e) => write!(f, "encoder rebuild failed: {e}"),
            InferError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            InferError::Quant(e) => write!(f, "quantization arithmetic rejected: {e}"),
            InferError::MissingParam(name) => write!(f, "parameter `{name}` not found"),
            InferError::Shape {
                name,
                expected,
                got,
            } => write!(f, "`{name}` has shape {got:?}, expected {expected:?}"),
            InferError::StateExhausted(what) => {
                write!(f, "state tensors do not match architecture: {what}")
            }
            InferError::Headroom { layer, taps } => write!(
                f,
                "layer `{layer}` has {taps} taps, too many for proven i32 headroom at 8 bits"
            ),
            InferError::Input(what) => write!(f, "bad input: {what}"),
        }
    }
}

impl std::error::Error for InferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InferError::Spec(e) => Some(e),
            InferError::Nn(e) => Some(e),
            InferError::Tensor(e) => Some(e),
            InferError::Quant(e) => Some(e),
            _ => None,
        }
    }
}
