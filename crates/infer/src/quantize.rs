//! Scale / zero-point extraction and i8 requantization primitives.
//!
//! The integer path must reproduce what quantization-aware training
//! simulated, so both grids mirror the Eq. 10 fake quantizer in
//! `cq-quant` exactly (see `DESIGN.md` §15 for the derivation):
//!
//! - **Activations** use the per-tensor zero-anchored grid: the observed
//!   range `[lo, hi]` is widened to include 0 (`lo' = min(lo, 0)`,
//!   `hi' = max(hi, 0)`), `step = (hi' - lo') / 255`, and the true code
//!   of a value is `round(v / step)` — the same projection
//!   `fake_quant_into` applies. Post-ReLU tensors (the only ones the
//!   training path quantizes) have `lo = 0`, so widening is a no-op
//!   there and the grid is bit-identical to training. Codes are stored
//!   as `i8` offset by the zero point `zp = cmin + 128`; real zeros map
//!   exactly to stored code `-zp`, which is also the convolution padding
//!   byte.
//! - **Weights** use the same per-tensor zero-anchored grid over the raw
//!   range (weights are not widened — the fake quantizer does not widen
//!   either, and padding never applies to weights). A constant tensor is
//!   represented exactly (`step = |v|`, all true codes `±1`), matching
//!   the fake quantizer's constant-tensor no-op.
//! - All grid projections use the shared round-half-away-from-zero rule
//!   pinned by [`cq_quant::intmath`], so the integer path and the
//!   fake-quant training path round identically.
//!
//! With true codes `ca = stored_a + za` and `cw = stored_w + zw`, the
//! dequantized product telescopes into one integer expression per
//! output element:
//!
//! ```text
//! Σ_k (sa·ca)(sw·cw) = sa·sw·( dot + za·wsum[o] + zw·asum[j] + K·za·zw )
//! ```
//!
//! where `dot` is the i8×i8→i32 GEMM over stored codes, `wsum[o]` the
//! per-row stored-code sum (precomputed here), and `asum[j]` the
//! per-column stored-code sum (computed at run time). Batch norm is
//! *not* folded into the weights before requantization — that would
//! change the weight grid away from the one training simulated; instead
//! `gamma/sqrt(var+eps)` folds into the per-channel rescale that
//! follows the integer MAC (see `model.rs`). The classic weight-space
//! fold is kept as [`fold_batch_norm`] for reference and testing.

use cq_quant::intmath::round_half_away;

/// Batch-norm epsilon used when folding running statistics into a
/// preceding linear/conv layer's rescale. Pinned to the `cq_nn`
/// batch-norm default (a test cross-checks the fold against a real
/// `BatchNorm2d` in eval mode, so drift in either constant is caught).
pub const BN_EPS: f32 = 1e-5;

/// Number of representable steps on the 8-bit grid.
const I8_STEPS: f32 = 255.0;

/// An activation tensor quantized to i8 codes on a zero-anchored grid.
#[derive(Debug, Clone)]
pub struct ActQuant {
    /// Stored i8 codes, same layout as the source slice.
    pub codes: Vec<i8>,
    /// Grid step (dequantize as `step * (code + zp)`).
    pub step: f32,
    /// Zero point: real 0.0 maps exactly to stored code `-zp`.
    pub zp: i32,
}

/// Quantizes an activation slice to i8 on a zero-extended, zero-anchored
/// grid.
///
/// Non-finite values are ignored during range calibration; a constant or
/// empty slice yields `step = 1.0` and codes of `-zp` (all zeros after
/// dequantization).
pub fn quantize_activations(data: &[f32]) -> ActQuant {
    let mut lo = 0.0f32;
    let mut hi = 0.0f32;
    for &v in data {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let range = hi - lo;
    let step = if range > 0.0 { range / I8_STEPS } else { 1.0 };
    let zp = round_half_away(lo / step) as i32 + 128;
    let codes = data
        .iter()
        .map(|&v| (round_half_away(v / step) as i32 - zp).clamp(-128, 127) as i8)
        .collect();
    ActQuant { codes, step, zp }
}

/// A weight matrix quantized to i8 on a per-tensor zero-anchored grid.
#[derive(Debug, Clone)]
pub struct WeightQuant {
    /// Stored i8 codes, `[rows, cols]` row-major.
    pub codes: Vec<i8>,
    /// Grid step (dequantize as `step * (code + zp)`).
    pub step: f32,
    /// Zero point: true code = stored code + `zp`.
    pub zp: i32,
    /// Per-row stored-code sum `Σ_k codes[o,k]`, the precomputed
    /// zero-point correction factor.
    pub wsum: Vec<i32>,
}

/// Quantizes a `[rows, cols]` weight matrix on the per-tensor
/// zero-anchored grid the fake quantizer uses: `step = (max - min)/255`,
/// true code `round(w/step)`, dequantized value `step · code` — exactly
/// the Eq. 10 projection, so integer weights match quantization-aware
/// training bit for bit.
///
/// A constant tensor (zero dynamic range) is represented exactly with
/// `step = |v|` and all true codes `sign(v)`; an all-zero or empty
/// tensor yields `step = 1.0`, `zp = 0`, zero codes.
pub fn quantize_weights(w: &[f32], rows: usize, cols: usize) -> WeightQuant {
    debug_assert_eq!(w.len(), rows * cols);
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in w {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let mut wsum = vec![0i32; rows];
    if w.is_empty() || !(hi - lo).is_finite() || hi - lo <= 0.0 {
        // Constant (or empty / non-finite-range) tensor: represent the
        // single value exactly, mirroring the fake quantizer's no-op.
        let v = w.first().copied().unwrap_or(0.0);
        let (step, zp) = if v == 0.0 || !v.is_finite() {
            (1.0, 0)
        } else {
            (v.abs(), v.signum() as i32)
        };
        return WeightQuant {
            codes: vec![0i8; w.len()],
            step,
            zp,
            wsum,
        };
    }
    let step = (hi - lo) / I8_STEPS;
    let true_codes: Vec<i32> = w
        .iter()
        .map(|&v| round_half_away(v / step) as i32)
        .collect();
    // cq-allow(no-unwrap): true_codes is non-empty — the empty case returned above
    let cmin = *true_codes.iter().min().expect("non-empty codes");
    let zp = cmin + 128;
    let mut codes = vec![0i8; w.len()];
    for (o, row) in true_codes.chunks(cols).enumerate() {
        let mut sum = 0i32;
        for (c, &tc) in row.iter().enumerate() {
            let s = (tc - zp).clamp(-128, 127);
            codes[o * cols + c] = s as i8;
            sum += s;
        }
        wsum[o] = sum;
    }
    WeightQuant {
        codes,
        step,
        zp,
        wsum,
    }
}

/// Folds batch-norm running statistics into a preceding `[rows, cols]`
/// weight matrix and its bias, in place.
///
/// With `g[o] = gamma[o] / sqrt(var[o] + eps)`:
/// `w'[o, :] = g[o] * w[o, :]` and `b'[o] = beta[o] + g[o] * (b[o] - mean[o])`,
/// which reproduces eval-mode batch norm exactly.
///
/// This is the classic *weight-space* fold. The integer conversion in
/// `model.rs` deliberately folds into the post-MAC rescale instead, so
/// that the weight quantization grid stays the one quantization-aware
/// training simulated; this function remains the reference formulation
/// (and pins [`BN_EPS`] against the `cq_nn` default via its test).
#[allow(clippy::too_many_arguments)] // mirrors the BN parameter list 1:1
pub fn fold_batch_norm(
    w: &mut [f32],
    bias: &mut [f32],
    rows: usize,
    cols: usize,
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(bias.len(), rows);
    for o in 0..rows {
        let g = gamma[o] / (var[o] + BN_EPS).sqrt();
        for v in &mut w[o * cols..(o + 1) * cols] {
            *v *= g;
        }
        bias[o] = beta[o] + g * (bias[o] - mean[o]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_quant::{fake_quant_into, Precision, QuantMode};

    #[test]
    fn activations_round_trip_within_half_step() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32) * 0.037 - 3.1).collect();
        let q = quantize_activations(&data);
        for (&v, &c) in data.iter().zip(&q.codes) {
            let deq = q.step * (c as i32 + q.zp) as f32;
            assert!(
                (deq - v).abs() <= 0.5 * q.step + 1e-6,
                "v={v} deq={deq} step={}",
                q.step
            );
        }
    }

    #[test]
    fn real_zero_quantizes_exactly() {
        let data = [-1.5f32, 0.0, 2.5, 0.0, 7.0];
        let q = quantize_activations(&data);
        for (&v, &c) in data.iter().zip(&q.codes) {
            if v == 0.0 {
                assert_eq!(c as i32, -q.zp);
                assert_eq!(q.step * (c as i32 + q.zp) as f32, 0.0);
            }
        }
    }

    #[test]
    fn zero_point_always_representable_as_i8() {
        // All-positive and all-negative ranges stress the zero extension.
        for data in [
            vec![0.5f32, 1.0, 100.0],
            vec![-0.5f32, -1.0, -100.0],
            vec![0.0f32; 4],
            vec![],
        ] {
            let q = quantize_activations(&data);
            assert!((-128..=127).contains(&(-q.zp)), "zp={} data={data:?}", q.zp);
        }
    }

    #[test]
    fn constant_slice_is_identity_zero() {
        let q = quantize_activations(&[0.0; 8]);
        assert_eq!(q.step, 1.0);
        assert!(q.codes.iter().all(|&c| c as i32 == -q.zp));
    }

    #[test]
    fn activation_grid_matches_fake_quant_on_relu_range() {
        // A tensor containing 0 (every post-ReLU tensor does) dequantizes
        // bit-identically to the training-path fake quantizer.
        let data: Vec<f32> = (0..512).map(|i| ((i * 37) % 101) as f32 * 0.021).collect();
        let q = quantize_activations(&data);
        let mut want = data.clone();
        fake_quant_into(&mut want, Precision::Bits(8), QuantMode::Round);
        for ((&v, &c), &fq) in data.iter().zip(&q.codes).zip(&want) {
            let deq = q.step * (c as i32 + q.zp) as f32;
            assert_eq!(deq.to_bits(), fq.to_bits(), "v={v}");
        }
    }

    #[test]
    fn weights_round_trip_within_half_step_and_wsum_matches() {
        let w: Vec<f32> = (0..24).map(|i| (i as f32) * 0.11 - 1.2).collect();
        let q = quantize_weights(&w, 4, 6);
        let lo = w.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = w.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!((q.step - (hi - lo) / 255.0).abs() < 1e-9);
        for o in 0..4 {
            let mut sum = 0i32;
            for c in 0..6 {
                let code = q.codes[o * 6 + c] as i32;
                sum += code;
                let deq = q.step * (code + q.zp) as f32;
                assert!((deq - w[o * 6 + c]).abs() <= 0.5 * q.step + 1e-6);
            }
            assert_eq!(sum, q.wsum[o]);
        }
    }

    #[test]
    fn weight_grid_matches_fake_quant_bitwise() {
        // The integer weight grid must be the very grid quantization-aware
        // training simulated: dequantized codes reproduce `fake_quant`
        // bit for bit.
        let w: Vec<f32> = (0..96)
            .map(|i| ((i * 73) % 191) as f32 * 0.013 - 1.17)
            .collect();
        let q = quantize_weights(&w, 8, 12);
        let mut want = w.clone();
        fake_quant_into(&mut want, Precision::Bits(8), QuantMode::Round);
        for ((&v, &c), &fq) in w.iter().zip(&q.codes).zip(&want) {
            let deq = q.step * (c as i32 + q.zp) as f32;
            assert_eq!(deq.to_bits(), fq.to_bits(), "v={v}");
        }
    }

    #[test]
    fn constant_weight_tensor_is_exact() {
        for v in [0.0f32, 0.7, -0.3] {
            let w = vec![v; 6];
            let q = quantize_weights(&w, 2, 3);
            for &c in &q.codes {
                assert_eq!(q.step * (c as i32 + q.zp) as f32, v, "v={v}");
            }
            assert_eq!(q.wsum, vec![0, 0]);
        }
    }

    #[test]
    fn requantizer_obeys_shared_rounding_contract() {
        // Anchors at ±127.5 give range exactly 255, so step is exactly 1.0
        // and the stored code of the probe is its half-away rounding
        // (cmin = −128 makes zp = 0). The +128 contract case exceeds the
        // stored window and must clamp to 127.
        for &(x, want) in cq_quant::intmath::ROUND_HALF_AWAY_CASES {
            let w = [x, 127.5f32, -127.5];
            let q = quantize_weights(&w, 1, 3);
            assert_eq!(q.step, 1.0);
            assert_eq!(q.zp, 0);
            let expect = (want as i32 - q.zp).clamp(-128, 127);
            assert_eq!(q.codes[0] as i32, expect, "x={x}");
        }
    }
}
