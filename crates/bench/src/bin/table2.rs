//! Table 2: linear evaluation on the ImageNet-like config, ResNet-18/34
//! (reuses the cached Table 1 encoders).

use cq_bench::{fmt_acc, linear_probe, pretrain_simclr_cached, Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_eval::Table;
use cq_models::Arch;
use cq_quant::PrecisionSet;

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::ImagenetLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let mut table = Table::new(
        "Table 2: Linear evaluation (ImageNet-like)",
        &["Network", "SimCLR", "CQ-C", "CQ-A"],
    );
    for arch in [Arch::ResNet18, Arch::ResNet34] {
        let arch_tag = if arch == Arch::ResNet18 { "r18" } else { "r34" };
        let mut cells = vec![arch.name().to_string()];
        let methods: [(&str, Pipeline, Option<PrecisionSet>); 3] = [
            ("simclr", Pipeline::Baseline, None),
            (
                "cq-c",
                Pipeline::CqC,
                Some(PrecisionSet::range(8, 16).expect("valid")),
            ),
            (
                "cq-a",
                Pipeline::CqA,
                Some(PrecisionSet::range(6, 16).expect("valid")),
            ),
        ];
        for (name, pipeline, pset) in methods {
            let tag = format!("in-{arch_tag}-{name}-{scale_tag}");
            let (mut enc, _) = pretrain_simclr_cached(&tag, arch, pipeline, pset, &proto, &train)
                .expect("pretraining failed");
            let acc = linear_probe(&mut enc, &train, &test, &proto).expect("linear eval failed");
            cells.push(fmt_acc(acc));
            eprintln!("  {arch} {name}: linear done");
        }
        table.row_owned(cells);
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("table2.csv"));
}
