//! Checkpoint inspector: prints the architecture, parameter inventory and
//! feature statistics of a saved encoder (`.cqen` file).
//!
//! ```text
//! cargo run --release -p cq-bench --bin inspect -- target/cq-cache/<tag>.cqen
//! ```

use cq_models::Encoder;
use cq_nn::ForwardCtx;
use cq_tensor::Tensor;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: inspect <checkpoint.cqen>");
        std::process::exit(2);
    });
    let f = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut enc = Encoder::load(std::io::BufReader::new(f)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    println!("checkpoint : {path}");
    println!("encoder    : {enc:?}");
    println!(
        "parameters : {} tensors, {} scalars",
        enc.params().len(),
        enc.num_params()
    );
    let mut total = 0usize;
    for (_, name, t) in enc.params().iter() {
        total += t.len();
        println!(
            "  {:<28} {:>10?} | {:>8} | rms {:.4}",
            name,
            t.dims(),
            t.len(),
            (t.sq_norm() / t.len().max(1) as f32).sqrt()
        );
    }
    println!("total scalars: {total}");
    // probe with a deterministic input
    let x = Tensor::full(&[2, 3, 16, 16], 0.5);
    match enc.forward(&x, &ForwardCtx::eval()) {
        Ok(out) => println!(
            "probe forward ok: features {:?} (norm {:.3}), projection {:?}",
            out.features.dims(),
            out.features.norm(),
            out.projection.dims()
        ),
        Err(e) => println!("probe forward failed (input size may differ): {e}"),
    }
}
