//! Checkpoint inspector: prints the architecture, parameter inventory and
//! feature statistics of a saved encoder (`.cqen` file), or the header,
//! parameter counts, step counter and history summary of a full training
//! checkpoint (`.ckpt`, CQTS format — see `cq_core::TrainState`).
//!
//! ```text
//! cargo run --release -p cq-bench --bin inspect -- target/cq-cache/<tag>.cqen
//! cargo run --release -p cq-bench --bin inspect -- pilot.ckpt
//! ```
//!
//! The format is sniffed from the file magic, not the extension.

use cq_core::TrainState;
use cq_models::Encoder;
use cq_nn::ForwardCtx;
use cq_tensor::Tensor;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: inspect <checkpoint.cqen|checkpoint.ckpt>");
        std::process::exit(2);
    });
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    if bytes.starts_with(&TrainState::MAGIC) {
        inspect_train_state(&path, &bytes);
    } else {
        inspect_encoder(&path, &bytes);
    }
}

/// Prints the CQTS header, tensor inventory counts and training history
/// of a full training checkpoint.
fn inspect_train_state(path: &str, bytes: &[u8]) {
    let st = TrainState::read(bytes).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    println!("checkpoint : {path} (CQTS v{})", st.version);
    println!("method     : {}", TrainState::method_name(st.method_tag));
    match st.pipeline() {
        Some(p) => println!("pipeline   : {p}"),
        None => println!("pipeline   : unknown tag {}", st.pipeline_tag),
    }
    println!("seed       : {}", st.seed);
    println!("batch size : {}", st.batch_size);
    println!(
        "progress   : {} epochs done, {} steps taken",
        st.epochs_done, st.steps_taken
    );
    let scalars: usize = st.params.iter().map(|(_, _, t)| t.len()).sum();
    println!(
        "parameters : {} tensors, {scalars} scalars",
        st.params.len()
    );
    println!(
        "state      : {} BatchNorm tensors, {} momentum buffers",
        st.state.len(),
        st.velocity.len()
    );
    match &st.target {
        Some((p, s)) => println!(
            "target net : {} tensors, {} state tensors (BYOL)",
            p.len(),
            s.len()
        ),
        None => println!("target net : none"),
    }
    let h = &st.history;
    println!(
        "history    : {} steps, {} exploded ({:.1}%)",
        h.steps,
        h.exploded_steps,
        100.0 * h.explosion_rate()
    );
    for (i, (l, g)) in h.epoch_losses.iter().zip(&h.epoch_grad_norms).enumerate() {
        println!("  epoch {i:>3}: loss {l:>10.5}  grad-norm {g:>10.5}");
    }
}

/// Classic `.cqen` encoder inspection with a deterministic forward probe.
fn inspect_encoder(path: &str, bytes: &[u8]) {
    let mut enc = Encoder::load(bytes).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    println!("checkpoint : {path}");
    println!("encoder    : {enc:?}");
    println!(
        "parameters : {} tensors, {} scalars",
        enc.params().len(),
        enc.num_params()
    );
    let mut total = 0usize;
    for (_, name, t) in enc.params().iter() {
        total += t.len();
        println!(
            "  {:<28} {:>10?} | {:>8} | rms {:.4}",
            name,
            t.dims(),
            t.len(),
            (t.sq_norm() / t.len().max(1) as f32).sqrt()
        );
    }
    println!("total scalars: {total}");
    // probe with a deterministic input
    let x = Tensor::full(&[2, 3, 16, 16], 0.5);
    match enc.forward(&x, &ForwardCtx::eval()) {
        Ok(out) => println!(
            "probe forward ok: features {:?} (norm {:.3}), projection {:?}",
            out.features.dims(),
            out.features.norm(),
            out.projection.dims()
        ),
        Err(e) => println!("probe forward failed (input size may differ): {e}"),
    }
}
