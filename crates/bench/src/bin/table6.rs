//! Table 6: CQ-C vs vanilla BYOL on the CIFAR-like config
//! (ResNet-18/34 + MobileNetV2), fine-tuning grid, precision set 6-16.

use cq_bench::{finetune_grid, fmt_acc, pretrain_byol_cached, Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_eval::Table;
use cq_models::Arch;
use cq_quant::PrecisionSet;

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let mut table = Table::new(
        "Table 6: CQ-C vs BYOL (CIFAR-like, fine-tuning, precision set 6-16)",
        &[
            "Network",
            "Method",
            "FP 10%",
            "FP 1%",
            "4-bit 10%",
            "4-bit 1%",
        ],
    );
    for (arch, at) in [
        (Arch::ResNet18, "r18"),
        (Arch::ResNet34, "r34"),
        (Arch::MobileNetV2, "mnv2"),
    ] {
        for (name, pipeline, pset) in [
            ("BYOL", Pipeline::Baseline, None),
            (
                "CQ-C",
                Pipeline::CqC,
                Some(PrecisionSet::range(6, 16).expect("valid")),
            ),
        ] {
            let tag = format!("byol-{at}-{}-{scale_tag}", name.to_lowercase());
            let (enc, _) = pretrain_byol_cached(&tag, arch, pipeline, pset, &proto, &train)
                .expect("BYOL pretraining failed");
            let grid = finetune_grid(&enc, &train, &test, &proto).expect("fine-tuning failed");
            table.row_owned(vec![
                arch.name().into(),
                name.into(),
                fmt_acc(grid.fp10),
                fmt_acc(grid.fp1),
                fmt_acc(grid.q10),
                fmt_acc(grid.q1),
            ]);
            eprintln!("  {arch} {name}: done");
        }
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("table6.csv"));
}
