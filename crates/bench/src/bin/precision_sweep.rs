//! Precision-set sweep (§4.1 of the paper lists 4-16 / 6-16 / 8-16 as
//! candidates): CQ-C on ResNet-18, CIFAR-like config, one row per set.
//! Complements Table 8's observation that more diverse precision sets
//! help.

use cq_bench::{
    finetune_grid, fmt_acc, linear_probe, pretrain_simclr_cached, Protocol, Regime, Scale,
};
use cq_core::Pipeline;
use cq_eval::Table;
use cq_models::Arch;
use cq_quant::PrecisionSet;

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let mut table = Table::new(
        "Precision-set sweep: CQ-C on ResNet-18 (CIFAR-like)",
        &[
            "Precision Set",
            "Diversity",
            "FP 10%",
            "FP 1%",
            "4-bit 10%",
            "4-bit 1%",
            "Linear",
        ],
    );
    for (lo, hi) in [(4u8, 16u8), (6, 16), (8, 16)] {
        let pset = PrecisionSet::range(lo, hi).expect("valid");
        let diversity = pset.diversity();
        let tag = if (lo, hi) == (6, 16) {
            format!("ci-r18-cq-c-{scale_tag}") // shared with Table 4
        } else {
            format!("psweep-r18-{lo}-{hi}-{scale_tag}")
        };
        let (mut enc, _) = pretrain_simclr_cached(
            &tag,
            Arch::ResNet18,
            Pipeline::CqC,
            Some(pset),
            &proto,
            &train,
        )
        .expect("pretraining failed");
        let grid = finetune_grid(&enc, &train, &test, &proto).expect("fine-tuning failed");
        let lin = linear_probe(&mut enc, &train, &test, &proto).expect("linear eval failed");
        table.row_owned(vec![
            format!("{lo}-{hi}"),
            diversity.to_string(),
            fmt_acc(grid.fp10),
            fmt_acc(grid.fp1),
            fmt_acc(grid.q10),
            fmt_acc(grid.q1),
            fmt_acc(lin),
        ]);
        eprintln!("  {lo}-{hi}: done");
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("precision_sweep.csv"));
}
