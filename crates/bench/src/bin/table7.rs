//! Table 7: ablation of the CQ variants (CQ-A / CQ-B / CQ-C, precision
//! set 6-16) against SimCLR on the CIFAR-like config, ResNet-34/74 +
//! MobileNetV2. Also reports the gradient-explosion rate the paper
//! observed for CQ-B.

use cq_bench::{finetune_grid, fmt_acc, pretrain_simclr_cached, Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_eval::Table;
use cq_models::Arch;
use cq_quant::PrecisionSet;

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };
    let pset = PrecisionSet::range(6, 16).expect("valid");

    let mut table = Table::new(
        "Table 7: CQ variant ablation (CIFAR-like, precision set 6-16)",
        &[
            "Network",
            "Method",
            "FP 10%",
            "FP 1%",
            "4-bit 10%",
            "4-bit 1%",
            "Exploded steps",
        ],
    );
    for (arch, at) in [
        (Arch::ResNet34, "r34"),
        (Arch::ResNet74, "r74"),
        (Arch::MobileNetV2, "mnv2"),
    ] {
        for (name, pipeline) in [
            ("SimCLR", Pipeline::Baseline),
            ("CQ-A", Pipeline::CqA),
            ("CQ-B", Pipeline::CqB),
            ("CQ-C", Pipeline::CqC),
        ] {
            // SimCLR and CQ-C share tags (and caches) with Table 4.
            let tag = format!("ci-{at}-{}-{scale_tag}", name.to_lowercase());
            let pset_arg = (pipeline != Pipeline::Baseline).then(|| pset.clone());
            let (enc, expl) =
                pretrain_simclr_cached(&tag, arch, pipeline, pset_arg, &proto, &train)
                    .expect("pretraining failed");
            let grid = finetune_grid(&enc, &train, &test, &proto).expect("fine-tuning failed");
            table.row_owned(vec![
                arch.name().into(),
                name.into(),
                fmt_acc(grid.fp10),
                fmt_acc(grid.fp1),
                fmt_acc(grid.q10),
                fmt_acc(grid.q1),
                format!("{:.1}%", 100.0 * expl),
            ]);
            eprintln!(
                "  {arch} {name}: done (explosion rate {:.1}%)",
                100.0 * expl
            );
        }
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("table7.csv"));
}
